//! Pluggable message transports.
//!
//! The shared runtime layer — sharded mailboxes, [`crate::buf::Buf`]
//! payloads, byte accounting, schedule hooks, crash liveness — is
//! backend-agnostic. A [`Transport`] only decides how a sent payload reaches
//! the destination rank's mailbox:
//!
//! * [`LocalTransport`] (the default): every rank is a thread of this
//!   process; delivery is a refcount bump into the destination's in-memory
//!   mailbox. Zero-copy, zero serialization.
//! * the `socket` module's `SocketTransport`: every rank is its own OS
//!   process; delivery frames the payload onto a UNIX-domain socket (see
//!   [`crate::wire`]) and the peer's reader thread enqueues it into the
//!   mailbox it hosts.
//!
//! Receives never go through the transport: matching always happens against
//! the mailbox the calling process hosts, so `take`/`scan` semantics (and
//! therefore per-channel FIFO, visibility delays, and poison draining) are
//! identical on every backend.

use crate::comm::{ChannelKey, Mailbox, Payload};
use crate::netfault::WireFault;
use std::time::{Duration, Instant};

/// A message transport connecting the ranks of one world.
///
/// Sends are *buffered* on every backend: `deliver` must never block on the
/// destination making progress.
pub(crate) trait Transport: Send + Sync {
    /// Number of ranks the transport connects.
    fn size(&self) -> usize;

    /// Deliver `payload` on channel `key` (`(source world rank, ctx, tag)`)
    /// into `dst_world`'s mailbox. `delay` is an injected in-flight
    /// visibility delay from the schedule hooks (`None` = matchable on
    /// arrival).
    fn deliver(&self, dst_world: usize, key: ChannelKey, payload: Payload, delay: Option<Duration>);

    /// [`Transport::deliver`] carrying an injected [`WireFault`] for this
    /// message. Backends with a real wire (the socket mesh) execute the
    /// fault literally; in-process backends ignore it — the send path has
    /// already mirrored fatal wire faults as the sender's death before
    /// calling this, and a torn write has no in-process meaning.
    fn deliver_faulted(
        &self,
        dst_world: usize,
        key: ChannelKey,
        payload: Payload,
        delay: Option<Duration>,
        fault: WireFault,
    ) {
        let _ = fault;
        self.deliver(dst_world, key, payload, delay);
    }

    /// Whether ranks live in separate OS processes joined by a real wire.
    /// The send path uses this to decide whether an injected [`WireFault`]
    /// can be executed literally or must be mirrored in-process.
    fn is_interprocess(&self) -> bool {
        false
    }

    /// The mailbox this process hosts for `world_rank`.
    ///
    /// # Panics
    /// If this process does not host the rank (receives are always local).
    fn mailbox(&self, world_rank: usize) -> &Mailbox;

    /// Propagate an injected crash of `src_world`: wake every receiver
    /// parked on a mailbox this process hosts (so blocked waits observe the
    /// poisoned world) and notify remote peers, if the backend has any.
    fn announce_crash(&self, src_world: usize);

    /// Whether one-sided RMA windows work on this backend. Windows mutate
    /// remote ranks' buffers and traffic counters through shared memory, so
    /// only transports whose ranks share an address space can support them.
    fn supports_rma(&self) -> bool {
        true
    }
}

/// The default in-process transport: one mailbox per rank, delivery is a
/// queue push under the destination shard's lock.
pub(crate) struct LocalTransport {
    mailboxes: Vec<Mailbox>,
}

impl LocalTransport {
    pub(crate) fn new(p: usize) -> Self {
        LocalTransport {
            mailboxes: (0..p).map(|_| Mailbox::default()).collect(),
        }
    }
}

impl Transport for LocalTransport {
    fn size(&self) -> usize {
        self.mailboxes.len()
    }

    fn deliver(
        &self,
        dst_world: usize,
        key: ChannelKey,
        payload: Payload,
        delay: Option<Duration>,
    ) {
        let visible_at = delay.map(|d| Instant::now() + d);
        self.mailboxes[dst_world].deliver(key, payload, visible_at);
    }

    fn mailbox(&self, world_rank: usize) -> &Mailbox {
        &self.mailboxes[world_rank]
    }

    fn announce_crash(&self, _src_world: usize) {
        for mbox in &self.mailboxes {
            mbox.wake();
        }
    }
}
