//! Network-fault injection hook points for the socket transport.
//!
//! [`crate::hooks::SchedHooks`] perturbs the *schedule* — message
//! visibility, stalls, rank skews — without ever touching the bytes on the
//! wire. This module is the hard-failure counterpart at the *transport*
//! level: a [`NetFaults`] implementation armed on a world decides, per
//! outbound frame and per connection attempt, whether the wire itself
//! misbehaves — partial writes, mid-frame connection resets, hung (silent
//! but alive) ranks, and refused or delayed dials.
//!
//! The decisions are consulted in the shared send path
//! (`comm::push_message_inner`), once per non-self-send message, so the
//! decision stream is keyed by program-ordered per-`(src, dst)` frame
//! sequence numbers and replays exactly under a fixed seed on *both*
//! backends. The effect is backend-specific:
//!
//! * on the **socket** backend the fault is executed literally by the
//!   destination peer's writer thread: a [`WireFault::Torn`] write splits
//!   the frame around a stall (the peer's `read_full` loop reassembles it —
//!   torn writes are benign and must change nothing observable), a
//!   [`WireFault::Reset`] writes a prefix and shuts the stream down (the
//!   peer observes a mid-frame EOF), and a [`WireFault::Hang`] silences the
//!   rank entirely — data *and* heartbeats — until the failure detector
//!   declares it dead;
//! * on the **local** backend there is no wire, so the two fatal faults
//!   ([`WireFault::Reset`], [`WireFault::Hang`]) are mirrored as the
//!   sender's death at the same program-ordered send — the observable
//!   outcome the socket world converges to once the peers detect the fault
//!   — and torn writes are no-ops. This keeps the crashed-rank roster of a
//!   fault-tolerant driver identical across backends, which is what the
//!   chaos conformance suite pins.
//!
//! Connection faults ([`NetFaults::connect_fault`]) are consulted by the
//! socket mesh dialer per attempt; a refused attempt burns one retry of the
//! bounded backoff schedule without sleeping, so a persistently refusing
//! plan degrades into a *fast* typed [`crate::XmpiError::LaunchFailed`]
//! instead of a long hang.
//!
//! Arming mirrors [`crate::hooks::with_hooks`]: [`with_net_faults`] arms a
//! thread-local slot that every world launched inside the closure picks up,
//! including worlds launched deep inside factorization drivers and the
//! replayed test body of a socket-backend child process.

use std::cell::RefCell;
use std::sync::Arc;
use std::time::Duration;

/// What happens to one outbound frame on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireFault {
    /// Write the frame normally.
    Deliver,
    /// Partial write: put `prefix` bytes on the wire, stall, then write the
    /// rest. The receiver's read loop reassembles the frame, so a torn
    /// write perturbs timing only — payload bytes, matching order, and byte
    /// counts are unchanged (the property the strict chaos conformance
    /// modes assert).
    Torn {
        /// Bytes written before the stall (`1..frame_len`).
        prefix: usize,
        /// How long the writer stalls mid-frame.
        stall: Duration,
    },
    /// Connection reset mid-frame: write `prefix` bytes, then shut the
    /// stream down. The peer observes an EOF inside a header or body and
    /// classifies this rank as dead ([`crate::XmpiError::Truncated`] →
    /// `RankDead`), never panicking and never double-counting the torn
    /// frame's bytes.
    Reset {
        /// Bytes written before the stream is shut down (`0..frame_len`).
        prefix: usize,
    },
    /// The sending rank stalls silently: from this frame on it transmits
    /// nothing — no data, no heartbeats — while its process stays alive.
    /// Only the heartbeat failure detector can classify this (a hung rank
    /// never closes its streams), which is exactly what the detector's CI
    /// gate demonstrates.
    Hang,
}

/// What happens to one dial attempt of the mesh handshake.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnectFault {
    /// Attempt the connection normally.
    Allow,
    /// Hold the dialer back before attempting (a slow-to-route connect).
    Delay(Duration),
    /// The attempt is refused outright (connection refused without a
    /// listener ever being consulted). Burns one bounded retry.
    Refuse,
}

/// Transport-level fault injection callbacks. All methods default to
/// fault-free so an implementation only overrides the surfaces it wants to
/// break.
///
/// Implementations must be deterministic functions of their own state and
/// the arguments — the `xharness` chaos plan derives every decision from a
/// seed and a per-`(src, dst)` frame sequence number, so a failing seed
/// replays its exact fault pattern (see `xharness::NetChaos`).
pub trait NetFaults: Send + Sync {
    /// Fate of the next frame from world rank `src` to world rank `dst`;
    /// `frame_len` is its full on-wire size (header + body bytes).
    ///
    /// Consulted once per non-self-send message in program order on the
    /// sender's thread, on every backend — heartbeat and control frames are
    /// transport-internal and never consulted, so the decision stream is
    /// identical across backends up to the first fatal fault.
    fn wire_fault(&self, src: usize, dst: usize, frame_len: usize) -> WireFault {
        let _ = (src, dst, frame_len);
        WireFault::Deliver
    }

    /// Fate of dial `attempt` (0-based) from rank `src` to rank `dst`'s
    /// mesh listener.
    fn connect_fault(&self, src: usize, dst: usize, attempt: u64) -> ConnectFault {
        let _ = (src, dst, attempt);
        ConnectFault::Allow
    }
}

// Thread-local ambient fault plan, mirroring `hooks::ARMED`: `with_net_faults`
// arms the slot, `Shared::build`/`build_with` (called on the same thread)
// install the plan into the world they construct.
thread_local! {
    static ARMED: RefCell<Option<Arc<dyn NetFaults>>> = const { RefCell::new(None) };
}

/// Install `faults` on every world launched by `f` on this thread — the way
/// to chaos-test an existing driver (e.g. `factor::conflux_lu_ft`) that
/// launches its worlds internally. Composes with
/// [`crate::hooks::with_hooks`]: arm both to perturb the schedule *and*
/// break the wire.
///
/// # Panics
/// If network faults are already armed on this thread (nested arming is
/// ambiguous).
pub fn with_net_faults<R>(faults: Arc<dyn NetFaults>, f: impl FnOnce() -> R) -> R {
    ARMED.with(|slot| {
        let mut s = slot.borrow_mut();
        assert!(
            s.is_none(),
            "xmpi::netfault::with_net_faults: network faults already armed on this thread"
        );
        *s = Some(faults);
    });
    // Disarm even if `f` panics so the thread stays reusable.
    struct Disarm;
    impl Drop for Disarm {
        fn drop(&mut self) {
            ARMED.with(|slot| slot.borrow_mut().take());
        }
    }
    let _disarm = Disarm;
    f()
}

/// The network-fault plan armed on this thread, if any (checked by
/// `Shared::build`).
pub(crate) fn armed() -> Option<Arc<dyn NetFaults>> {
    ARMED.with(|slot| slot.borrow().clone())
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl NetFaults for Nop {}

    #[test]
    fn defaults_are_fault_free() {
        let n = Nop;
        assert_eq!(n.wire_fault(0, 1, 128), WireFault::Deliver);
        assert_eq!(n.connect_fault(1, 0, 3), ConnectFault::Allow);
    }

    #[test]
    fn with_net_faults_arms_and_disarms() {
        assert!(armed().is_none());
        let out = with_net_faults(Arc::new(Nop), || {
            assert!(armed().is_some());
            7
        });
        assert_eq!(out, 7);
        assert!(armed().is_none());
    }

    #[test]
    fn with_net_faults_disarms_on_panic() {
        let r = std::panic::catch_unwind(|| {
            with_net_faults(Arc::new(Nop), || panic!("boom"));
        });
        assert!(r.is_err());
        assert!(armed().is_none());
    }

    #[test]
    #[should_panic(expected = "already armed")]
    fn nested_arming_is_rejected() {
        with_net_faults(Arc::new(Nop), || {
            with_net_faults(Arc::new(Nop), || {});
        });
    }
}
