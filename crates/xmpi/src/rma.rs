//! One-sided communication (MPI-3 RMA substitute).
//!
//! The paper's implementation uses MPI one-sided operations for
//! runtime-dependent communication ("for runtime-dependent communication
//! (e.g., pivot index distribution) we use MPI one-sided", §8). This module
//! provides the same abstraction on the simulated machine: a [`Window`]
//! exposes a per-rank buffer; [`Window::put`] and [`Window::get`] access a
//! remote rank's buffer directly, with every transferred byte counted like
//! a message; [`Window::fence`] separates access epochs (a barrier, as in
//! `MPI_Win_fence` active-target synchronization).

use crate::comm::Comm;
use parking_lot::{Condvar, Mutex, RwLock};
use std::collections::HashMap;
use std::sync::Arc;

type Buffers = Arc<Vec<RwLock<Vec<f64>>>>;

/// Registry of live windows, keyed by (context, window id); lives in the
/// world's shared state so all ranks of a communicator can rendezvous on
/// the same buffers.
#[derive(Default)]
pub(crate) struct WindowRegistry {
    map: Mutex<HashMap<(u64, u64), (Buffers, usize)>>,
    created: Condvar,
}

impl WindowRegistry {
    /// Rendezvous: the first caller allocates, the rest attach. `refcount`
    /// tracks attachments so the entry is dropped when the last rank frees.
    fn attach(&self, key: (u64, u64), nranks: usize, local_len: usize) -> Buffers {
        let mut map = self.map.lock();
        if let Some((buf, rc)) = map.get_mut(&key) {
            *rc += 1;
            let buf = buf.clone();
            if *rc == nranks {
                self.created.notify_all();
            }
            return buf;
        }
        let buf: Buffers = Arc::new(
            (0..nranks)
                .map(|_| RwLock::new(vec![0.0; local_len]))
                .collect(),
        );
        map.insert(key, (buf.clone(), 1));
        buf
    }

    fn detach(&self, key: (u64, u64)) {
        let mut map = self.map.lock();
        if let Some((_, rc)) = map.get_mut(&key) {
            *rc -= 1;
            if *rc == 0 {
                map.remove(&key);
            }
        }
    }
}

/// A one-sided communication window over a communicator: every rank
/// exposes `local_len` elements.
pub struct Window<'c> {
    comm: &'c Comm,
    buffers: Buffers,
    key: (u64, u64),
    local_len: usize,
}

impl Comm {
    /// Collectively create an RMA window exposing `local_len` elements per
    /// rank, identified by `wid` (distinct concurrent windows on the same
    /// communicator need distinct ids). All ranks must call with the same
    /// arguments; returns after every rank has attached.
    pub fn window(&self, wid: u64, local_len: usize) -> Window<'_> {
        let key = (self.ctx_id(), wid);
        let buffers = self.registry().attach(key, self.size(), local_len);
        // Creation is collective in MPI; synchronize so no rank touches the
        // window before everyone exists.
        self.barrier();
        Window {
            comm: self,
            buffers,
            key,
            local_len,
        }
    }
}

impl Window<'_> {
    /// Elements exposed per rank.
    pub fn local_len(&self) -> usize {
        self.local_len
    }

    /// Write into this rank's own exposed buffer (no traffic).
    pub fn local_write(&self, offset: usize, data: &[f64]) {
        let mut buf = self.buffers[self.comm.rank()].write();
        buf[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Read this rank's own exposed buffer (no traffic).
    pub fn local_read(&self, offset: usize, len: usize) -> Vec<f64> {
        self.buffers[self.comm.rank()].read()[offset..offset + len].to_vec()
    }

    /// One-sided put: write `data` into `dst`'s buffer at `offset`. Counts
    /// as `8·len` bytes sent by this rank and received by `dst`.
    ///
    /// # Panics
    /// If the target range overruns the window.
    pub fn put(&self, dst: usize, offset: usize, data: &[f64]) {
        assert!(offset + data.len() <= self.local_len, "put overruns window");
        let dst_world = self.comm.world_rank_of(dst);
        self.comm.account_rma(dst_world, (8 * data.len()) as u64);
        let mut buf = self.buffers[dst].write();
        buf[offset..offset + data.len()].copy_from_slice(data);
    }

    /// One-sided get: read `len` elements from `src`'s buffer at `offset`.
    /// Counts as `8·len` bytes sent by `src` and received by this rank.
    ///
    /// # Panics
    /// If the source range overruns the window.
    pub fn get(&self, src: usize, offset: usize, len: usize) -> Vec<f64> {
        assert!(offset + len <= self.local_len, "get overruns window");
        let src_world = self.comm.world_rank_of(src);
        self.comm.account_rma_from(src_world, (8 * len) as u64);
        self.buffers[src].read()[offset..offset + len].to_vec()
    }

    /// One-sided accumulate: `dst[offset..] += data` (MPI_Accumulate with
    /// MPI_SUM). Element-wise atomic under the window's per-rank lock.
    pub fn accumulate(&self, dst: usize, offset: usize, data: &[f64]) {
        assert!(
            offset + data.len() <= self.local_len,
            "accumulate overruns window"
        );
        let dst_world = self.comm.world_rank_of(dst);
        self.comm.account_rma(dst_world, (8 * data.len()) as u64);
        let mut buf = self.buffers[dst].write();
        for (b, &d) in buf[offset..offset + data.len()].iter_mut().zip(data) {
            *b += d;
        }
    }

    /// Fence: close the current access epoch (all prior puts/gets by all
    /// ranks are complete afterwards). A barrier, as in active-target
    /// `MPI_Win_fence`.
    pub fn fence(&self) {
        self.comm.barrier();
    }
}

impl Drop for Window<'_> {
    fn drop(&mut self) {
        self.comm.registry().detach(self.key);
    }
}

#[cfg(test)]
mod tests {
    use crate::world::run;

    #[test]
    fn put_then_fence_then_read() {
        let out = run(4, |c| {
            let win = c.window(1, 4);
            // Everyone puts its rank into slot `rank` of rank 0's buffer.
            win.put(0, c.rank(), &[c.rank() as f64]);
            win.fence();
            if c.rank() == 0 {
                win.local_read(0, 4)
            } else {
                vec![]
            }
        });
        assert_eq!(out.results[0], vec![0.0, 1.0, 2.0, 3.0]);
        // 3 remote puts of 8 bytes (rank 0's own put is local? no: put to
        // self still accounted) => at least 3*8 bytes counted.
        assert!(out.stats.total_bytes_sent() >= 24);
    }

    #[test]
    fn get_reads_remote_state() {
        let out = run(3, |c| {
            let win = c.window(2, 2);
            win.local_write(0, &[c.rank() as f64 * 10.0, 1.0]);
            win.fence();
            // Everyone reads rank 2's buffer.
            win.get(2, 0, 2)
        });
        for r in &out.results {
            assert_eq!(r, &vec![20.0, 1.0]);
        }
    }

    #[test]
    fn accumulate_sums_contributions() {
        let out = run(5, |c| {
            let win = c.window(3, 1);
            win.accumulate(0, 0, &[(c.rank() + 1) as f64]);
            win.fence();
            if c.rank() == 0 {
                win.local_read(0, 1)[0]
            } else {
                -1.0
            }
        });
        assert_eq!(out.results[0], 15.0);
    }

    #[test]
    fn pivot_distribution_pattern() {
        // The paper's use case: a designated rank publishes pivot indices;
        // everyone fetches them one-sidedly instead of participating in a
        // collective.
        let out = run(4, |c| {
            let win = c.window(4, 8);
            if c.rank() == 1 {
                win.local_write(0, &[5.0, 2.0, 7.0, 0.0, 1.0, 3.0, 6.0, 4.0]);
            }
            win.fence();
            let pivots = win.get(1, 0, 8);
            pivots.iter().map(|&x| x as usize).collect::<Vec<_>>()
        });
        for r in &out.results {
            assert_eq!(r, &vec![5, 2, 7, 0, 1, 3, 6, 4]);
        }
    }

    #[test]
    fn separate_windows_are_isolated() {
        run(2, |c| {
            let w1 = c.window(10, 2);
            let w2 = c.window(11, 2);
            w1.local_write(0, &[1.0, 1.0]);
            w2.local_write(0, &[2.0, 2.0]);
            w1.fence();
            w2.fence();
            assert_eq!(w1.get(c.rank(), 0, 2), vec![1.0, 1.0]);
            assert_eq!(w2.get(c.rank(), 0, 2), vec![2.0, 2.0]);
        });
    }

    #[test]
    #[should_panic(expected = "overruns window")]
    fn out_of_range_put_panics() {
        run(2, |c| {
            let win = c.window(12, 2);
            win.put(0, 1, &[1.0, 2.0]);
        });
    }
}
