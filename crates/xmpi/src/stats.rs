//! Per-rank communication counters — the Score-P substitute.
//!
//! Counters live in shared memory and are updated by the transport on every
//! send and receive, attributed to the *phase* the rank has currently
//! declared (see [`crate::Comm::set_phase`]). Phases give the per-routine
//! breakdown used to regenerate Table 1 of the paper.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Live counters for a single rank (shared, updated by the transport).
#[derive(Default)]
pub(crate) struct Counters {
    pub bytes_sent: AtomicU64,
    pub bytes_recv: AtomicU64,
    pub msgs_sent: AtomicU64,
    pub msgs_recv: AtomicU64,
    /// Phase-name → (bytes sent, bytes received) while that phase was active.
    pub per_phase: Mutex<HashMap<String, (u64, u64)>>,
    /// Currently active phase label for this rank.
    pub phase: Mutex<String>,
}

impl Counters {
    pub(crate) fn record_send(&self, bytes: u64) {
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        let phase = self.phase.lock().clone();
        self.per_phase.lock().entry(phase).or_default().0 += bytes;
    }

    pub(crate) fn record_recv(&self, bytes: u64) {
        self.bytes_recv.fetch_add(bytes, Ordering::Relaxed);
        self.msgs_recv.fetch_add(1, Ordering::Relaxed);
        let phase = self.phase.lock().clone();
        self.per_phase.lock().entry(phase).or_default().1 += bytes;
    }

    pub(crate) fn snapshot(&self) -> RankStats {
        RankStats {
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            msgs_recv: self.msgs_recv.load(Ordering::Relaxed),
            per_phase: self.per_phase.lock().clone(),
        }
    }
}

/// Immutable snapshot of one rank's traffic after a world has finished.
#[derive(Debug, Clone, Default)]
pub struct RankStats {
    /// Total bytes this rank sent.
    pub bytes_sent: u64,
    /// Total bytes this rank received.
    pub bytes_recv: u64,
    /// Number of messages sent.
    pub msgs_sent: u64,
    /// Number of messages received.
    pub msgs_recv: u64,
    /// Per-phase (sent, received) byte breakdown.
    pub per_phase: HashMap<String, (u64, u64)>,
}

impl RankStats {
    /// Total traffic through this rank (sent + received) — the quantity the
    /// paper plots as "communication volume per node".
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_recv
    }
}

/// Snapshot of all ranks' traffic for a finished world.
#[derive(Debug, Clone, Default)]
pub struct WorldStats {
    /// One entry per rank, indexed by rank id.
    pub ranks: Vec<RankStats>,
}

impl WorldStats {
    /// Sum of bytes sent over all ranks (equals total bytes received: every
    /// byte sent inside the world is received inside the world).
    pub fn total_bytes_sent(&self) -> u64 {
        self.ranks.iter().map(|r| r.bytes_sent).sum()
    }

    /// Sum of bytes received over all ranks.
    pub fn total_bytes_recv(&self) -> u64 {
        self.ranks.iter().map(|r| r.bytes_recv).sum()
    }

    /// Largest per-rank traffic (sent + received) — the load-bound rank.
    pub fn max_rank_bytes(&self) -> u64 {
        self.ranks.iter().map(|r| r.total_bytes()).max().unwrap_or(0)
    }

    /// Mean per-rank traffic (sent + received).
    pub fn avg_rank_bytes(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks.iter().map(|r| r.total_bytes()).sum::<u64>() as f64 / self.ranks.len() as f64
    }

    /// Total messages sent across the world.
    pub fn total_msgs(&self) -> u64 {
        self.ranks.iter().map(|r| r.msgs_sent).sum()
    }

    /// Aggregate (sent, received) bytes per phase across all ranks.
    pub fn phase_totals(&self) -> HashMap<String, (u64, u64)> {
        let mut out: HashMap<String, (u64, u64)> = HashMap::new();
        for r in &self.ranks {
            for (k, (s, v)) in &r.per_phase {
                let e = out.entry(k.clone()).or_default();
                e.0 += s;
                e.1 += v;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = Counters::default();
        *c.phase.lock() = "a".to_string();
        c.record_send(100);
        c.record_recv(40);
        *c.phase.lock() = "b".to_string();
        c.record_send(1);
        let s = c.snapshot();
        assert_eq!(s.bytes_sent, 101);
        assert_eq!(s.bytes_recv, 40);
        assert_eq!(s.msgs_sent, 2);
        assert_eq!(s.msgs_recv, 1);
        assert_eq!(s.per_phase["a"], (100, 40));
        assert_eq!(s.per_phase["b"], (1, 0));
        assert_eq!(s.total_bytes(), 141);
    }

    #[test]
    fn world_stats_aggregates() {
        let mk = |s, r| RankStats { bytes_sent: s, bytes_recv: r, ..Default::default() };
        let w = WorldStats { ranks: vec![mk(10, 20), mk(30, 40)] };
        assert_eq!(w.total_bytes_sent(), 40);
        assert_eq!(w.total_bytes_recv(), 60);
        assert_eq!(w.max_rank_bytes(), 70);
        assert!((w.avg_rank_bytes() - 50.0).abs() < 1e-12);
    }
}
