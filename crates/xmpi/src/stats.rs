//! Per-rank communication counters — the Score-P substitute.
//!
//! Counters live in shared memory and are updated by the transport on every
//! send and receive, attributed to the *phase* the rank has currently
//! declared (see [`crate::Comm::set_phase`]) and to the collective kind in
//! progress (see [`CollKind`]). Phases give the per-routine breakdown used
//! to regenerate Table 1 of the paper; collective kinds give the
//! per-primitive breakdown a Score-P profile would show per MPI call site.
//!
//! The record path is lock-free: the active phase is an index into a
//! preallocated slab of atomic slots, so `record_send`/`record_recv` are a
//! handful of relaxed `fetch_add`s. Only `Counters::set_phase` (cold, a
//! few calls per factorization step) takes a lock, to intern the label.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Maximum distinct phase labels per rank. The factorization schedules use
/// fewer than ten; the slab is preallocated so the record path can index it
/// without locking.
pub const MAX_PHASES: usize = 64;

/// The kind of communication primitive a byte was moved by.
///
/// Every send/receive is attributed to exactly one kind: plain
/// point-to-point traffic is [`CollKind::P2p`]; traffic inside a collective
/// is attributed to the *outermost* collective call (an `allreduce` that
/// internally broadcasts still counts as `Allreduce`, matching how a
/// profiler attributes to the user's call site); one-sided traffic is
/// [`CollKind::Rma`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CollKind {
    /// Plain point-to-point message (outside any collective).
    P2p,
    /// Dissemination barrier.
    Barrier,
    /// Binomial-tree broadcast.
    Bcast,
    /// Binomial-tree reduction.
    Reduce,
    /// Recursive-doubling (or reduce+bcast) all-reduce.
    Allreduce,
    /// Fan-in gather.
    Gather,
    /// Fan-out scatter.
    Scatter,
    /// Ring all-gather.
    Allgather,
    /// One-sided put/get/accumulate.
    Rma,
}

impl CollKind {
    /// Number of kinds (size of per-kind counter slabs).
    pub const COUNT: usize = 9;

    /// All kinds, in slab order.
    pub const ALL: [CollKind; CollKind::COUNT] = [
        CollKind::P2p,
        CollKind::Barrier,
        CollKind::Bcast,
        CollKind::Reduce,
        CollKind::Allreduce,
        CollKind::Gather,
        CollKind::Scatter,
        CollKind::Allgather,
        CollKind::Rma,
    ];

    /// Slab index of this kind.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Kind at slab index `i`.
    ///
    /// # Panics
    /// If `i >= CollKind::COUNT`.
    pub fn from_index(i: usize) -> CollKind {
        CollKind::ALL[i]
    }

    /// Stable lowercase name (used in reports and exported profiles).
    pub fn name(self) -> &'static str {
        match self {
            CollKind::P2p => "p2p",
            CollKind::Barrier => "barrier",
            CollKind::Bcast => "bcast",
            CollKind::Reduce => "reduce",
            CollKind::Allreduce => "allreduce",
            CollKind::Gather => "gather",
            CollKind::Scatter => "scatter",
            CollKind::Allgather => "allgather",
            CollKind::Rma => "rma",
        }
    }
}

/// One atomic (sent, received, msgs) cell of a per-kind slab.
#[derive(Default)]
struct CollCell {
    sent: AtomicU64,
    recv: AtomicU64,
    msgs_sent: AtomicU64,
    msgs_recv: AtomicU64,
}

/// Live counters for a single rank (shared, updated by the transport).
pub(crate) struct Counters {
    pub bytes_sent: AtomicU64,
    pub bytes_recv: AtomicU64,
    pub msgs_sent: AtomicU64,
    pub msgs_recv: AtomicU64,
    /// Slab index of the currently active phase (slot 0 = the unnamed "").
    current: AtomicUsize,
    /// Slab index of the collective kind in progress (0 = none → p2p).
    in_coll: AtomicUsize,
    /// Interned phase labels; `labels[i]` names slab slot `i`. Locked only
    /// by [`Counters::set_phase`] and [`Counters::snapshot`] (cold paths).
    labels: Mutex<Vec<String>>,
    /// Per-phase bytes sent, indexed by interned label.
    phase_sent: [AtomicU64; MAX_PHASES],
    /// Per-phase bytes received, indexed by interned label.
    phase_recv: [AtomicU64; MAX_PHASES],
    /// Per-collective-kind traffic.
    coll: [CollCell; CollKind::COUNT],
}

impl Default for Counters {
    fn default() -> Self {
        Counters {
            bytes_sent: AtomicU64::new(0),
            bytes_recv: AtomicU64::new(0),
            msgs_sent: AtomicU64::new(0),
            msgs_recv: AtomicU64::new(0),
            current: AtomicUsize::new(0),
            in_coll: AtomicUsize::new(0),
            labels: Mutex::new(vec![String::new()]),
            phase_sent: [const { AtomicU64::new(0) }; MAX_PHASES],
            phase_recv: [const { AtomicU64::new(0) }; MAX_PHASES],
            coll: [const {
                CollCell {
                    sent: AtomicU64::new(0),
                    recv: AtomicU64::new(0),
                    msgs_sent: AtomicU64::new(0),
                    msgs_recv: AtomicU64::new(0),
                }
            }; CollKind::COUNT],
        }
    }
}

impl Counters {
    /// Lock-free record of a send: totals, active phase slot, active
    /// collective kind.
    pub(crate) fn record_send(&self, bytes: u64) {
        self.record_send_as(bytes, self.in_coll.load(Ordering::Relaxed));
    }

    /// Lock-free record of a receive.
    pub(crate) fn record_recv(&self, bytes: u64) {
        self.record_recv_as(bytes, self.in_coll.load(Ordering::Relaxed));
    }

    /// Record a send attributed to an explicit kind (RMA bypasses the
    /// in-collective marker: the acting rank may be inside an unrelated
    /// collective on another code path).
    pub(crate) fn record_send_kind(&self, bytes: u64, kind: CollKind) {
        self.record_send_as(bytes, kind.index());
    }

    /// Record a receive attributed to an explicit kind.
    pub(crate) fn record_recv_kind(&self, bytes: u64, kind: CollKind) {
        self.record_recv_as(bytes, kind.index());
    }

    fn record_send_as(&self, bytes: u64, kind_idx: usize) {
        self.bytes_sent.fetch_add(bytes, Ordering::Relaxed);
        self.msgs_sent.fetch_add(1, Ordering::Relaxed);
        self.phase_sent[self.current.load(Ordering::Relaxed)].fetch_add(bytes, Ordering::Relaxed);
        let cell = &self.coll[kind_idx];
        cell.sent.fetch_add(bytes, Ordering::Relaxed);
        cell.msgs_sent.fetch_add(1, Ordering::Relaxed);
    }

    fn record_recv_as(&self, bytes: u64, kind_idx: usize) {
        self.bytes_recv.fetch_add(bytes, Ordering::Relaxed);
        self.msgs_recv.fetch_add(1, Ordering::Relaxed);
        self.phase_recv[self.current.load(Ordering::Relaxed)].fetch_add(bytes, Ordering::Relaxed);
        let cell = &self.coll[kind_idx];
        cell.recv.fetch_add(bytes, Ordering::Relaxed);
        cell.msgs_recv.fetch_add(1, Ordering::Relaxed);
    }

    /// Switch the active phase, interning `name` into the label slab. Cold
    /// path: called a few times per factorization step, never per message.
    ///
    /// # Panics
    /// If more than [`MAX_PHASES`] distinct labels are used.
    pub(crate) fn set_phase(&self, name: &str) {
        let mut labels = self.labels.lock();
        let idx = match labels.iter().position(|l| l == name) {
            Some(i) => i,
            None => {
                assert!(
                    labels.len() < MAX_PHASES,
                    "too many distinct phase labels (max {MAX_PHASES})"
                );
                labels.push(name.to_string());
                labels.len() - 1
            }
        };
        self.current.store(idx, Ordering::Relaxed);
    }

    /// Mark entry into a collective of `kind`; returns the previous marker
    /// for [`Counters::exit_coll`]. Attribution goes to the *outermost*
    /// collective: nested entry keeps the outer kind.
    pub(crate) fn enter_coll(&self, kind: CollKind) -> usize {
        let prev = self.in_coll.load(Ordering::Relaxed);
        if prev == 0 {
            self.in_coll.store(kind.index(), Ordering::Relaxed);
        }
        prev
    }

    /// Restore the marker saved by [`Counters::enter_coll`].
    pub(crate) fn exit_coll(&self, prev: usize) {
        self.in_coll.store(prev, Ordering::Relaxed);
    }

    /// Is a collective currently in progress (and which)?
    pub(crate) fn current_coll(&self) -> CollKind {
        CollKind::from_index(self.in_coll.load(Ordering::Relaxed))
    }

    pub(crate) fn snapshot(&self) -> RankStats {
        let labels = self.labels.lock().clone();
        let mut per_phase = HashMap::new();
        for (i, label) in labels.iter().enumerate() {
            let s = self.phase_sent[i].load(Ordering::Relaxed);
            let r = self.phase_recv[i].load(Ordering::Relaxed);
            if s != 0 || r != 0 {
                per_phase.insert(label.clone(), (s, r));
            }
        }
        let mut per_coll = Vec::new();
        for kind in CollKind::ALL {
            let cell = &self.coll[kind.index()];
            let counts = CollCounts {
                bytes_sent: cell.sent.load(Ordering::Relaxed),
                bytes_recv: cell.recv.load(Ordering::Relaxed),
                msgs_sent: cell.msgs_sent.load(Ordering::Relaxed),
                msgs_recv: cell.msgs_recv.load(Ordering::Relaxed),
            };
            if counts.bytes_sent != 0
                || counts.bytes_recv != 0
                || counts.msgs_sent != 0
                || counts.msgs_recv != 0
            {
                per_coll.push((kind, counts));
            }
        }
        RankStats {
            bytes_sent: self.bytes_sent.load(Ordering::Relaxed),
            bytes_recv: self.bytes_recv.load(Ordering::Relaxed),
            msgs_sent: self.msgs_sent.load(Ordering::Relaxed),
            msgs_recv: self.msgs_recv.load(Ordering::Relaxed),
            per_phase,
            per_coll,
        }
    }
}

/// Per-collective-kind traffic totals.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CollCounts {
    /// Bytes sent inside this kind of primitive.
    pub bytes_sent: u64,
    /// Bytes received inside this kind of primitive.
    pub bytes_recv: u64,
    /// Messages sent.
    pub msgs_sent: u64,
    /// Messages received.
    pub msgs_recv: u64,
}

/// Immutable snapshot of one rank's traffic after a world has finished.
#[derive(Debug, Clone, Default)]
pub struct RankStats {
    /// Total bytes this rank sent.
    pub bytes_sent: u64,
    /// Total bytes this rank received.
    pub bytes_recv: u64,
    /// Number of messages sent.
    pub msgs_sent: u64,
    /// Number of messages received.
    pub msgs_recv: u64,
    /// Per-phase (sent, received) byte breakdown.
    pub per_phase: HashMap<String, (u64, u64)>,
    /// Per-collective-kind breakdown (only kinds with traffic), in
    /// [`CollKind::ALL`] order. The sent totals sum to `bytes_sent`, the
    /// received totals to `bytes_recv` — every byte has exactly one kind.
    pub per_coll: Vec<(CollKind, CollCounts)>,
}

impl RankStats {
    /// Total traffic through this rank (sent + received) — the quantity the
    /// paper plots as "communication volume per node".
    pub fn total_bytes(&self) -> u64 {
        self.bytes_sent + self.bytes_recv
    }

    /// Traffic of a specific collective kind (zeros if unused).
    pub fn coll(&self, kind: CollKind) -> CollCounts {
        self.per_coll
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, c)| *c)
            .unwrap_or_default()
    }
}

/// Snapshot of all ranks' traffic for a finished world.
#[derive(Debug, Clone, Default)]
pub struct WorldStats {
    /// One entry per rank, indexed by rank id.
    pub ranks: Vec<RankStats>,
}

impl WorldStats {
    /// Sum of bytes sent over all ranks (equals total bytes received: every
    /// byte sent inside the world is received inside the world).
    pub fn total_bytes_sent(&self) -> u64 {
        self.ranks.iter().map(|r| r.bytes_sent).sum()
    }

    /// Sum of bytes received over all ranks.
    pub fn total_bytes_recv(&self) -> u64 {
        self.ranks.iter().map(|r| r.bytes_recv).sum()
    }

    /// Largest per-rank traffic (sent + received) — the load-bound rank.
    pub fn max_rank_bytes(&self) -> u64 {
        self.ranks
            .iter()
            .map(|r| r.total_bytes())
            .max()
            .unwrap_or(0)
    }

    /// Mean per-rank traffic (sent + received).
    pub fn avg_rank_bytes(&self) -> f64 {
        if self.ranks.is_empty() {
            return 0.0;
        }
        self.ranks.iter().map(|r| r.total_bytes()).sum::<u64>() as f64 / self.ranks.len() as f64
    }

    /// Total messages sent across the world.
    pub fn total_msgs(&self) -> u64 {
        self.ranks.iter().map(|r| r.msgs_sent).sum()
    }

    /// Aggregate (sent, received) bytes per phase across all ranks.
    pub fn phase_totals(&self) -> HashMap<String, (u64, u64)> {
        let mut out: HashMap<String, (u64, u64)> = HashMap::new();
        for r in &self.ranks {
            for (k, (s, v)) in &r.per_phase {
                let e = out.entry(k.clone()).or_default();
                e.0 += s;
                e.1 += v;
            }
        }
        out
    }

    /// Aggregate per-collective-kind traffic across all ranks, in
    /// [`CollKind::ALL`] order (only kinds with traffic).
    pub fn coll_totals(&self) -> Vec<(CollKind, CollCounts)> {
        let mut slab = [CollCounts::default(); CollKind::COUNT];
        for r in &self.ranks {
            for (kind, c) in &r.per_coll {
                let cell = &mut slab[kind.index()];
                cell.bytes_sent += c.bytes_sent;
                cell.bytes_recv += c.bytes_recv;
                cell.msgs_sent += c.msgs_sent;
                cell.msgs_recv += c.msgs_recv;
            }
        }
        CollKind::ALL
            .into_iter()
            .filter(|k| {
                let c = slab[k.index()];
                c.bytes_sent != 0 || c.bytes_recv != 0 || c.msgs_sent != 0 || c.msgs_recv != 0
            })
            .map(|k| (k, slab[k.index()]))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let c = Counters::default();
        c.set_phase("a");
        c.record_send(100);
        c.record_recv(40);
        c.set_phase("b");
        c.record_send(1);
        let s = c.snapshot();
        assert_eq!(s.bytes_sent, 101);
        assert_eq!(s.bytes_recv, 40);
        assert_eq!(s.msgs_sent, 2);
        assert_eq!(s.msgs_recv, 1);
        assert_eq!(s.per_phase["a"], (100, 40));
        assert_eq!(s.per_phase["b"], (1, 0));
        assert_eq!(s.total_bytes(), 141);
    }

    #[test]
    fn phase_interning_reuses_slots() {
        let c = Counters::default();
        c.set_phase("x");
        c.record_send(5);
        c.set_phase("y");
        c.record_send(7);
        c.set_phase("x");
        c.record_send(11);
        let s = c.snapshot();
        assert_eq!(s.per_phase["x"], (16, 0));
        assert_eq!(s.per_phase["y"], (7, 0));
        assert_eq!(s.per_phase.len(), 2);
    }

    #[test]
    fn collective_attribution_tracks_outermost_kind() {
        let c = Counters::default();
        c.record_send(8); // plain p2p
        let outer = c.enter_coll(CollKind::Allreduce);
        c.record_send(16);
        // Nested collective (allreduce falling back to bcast) keeps the
        // outer attribution.
        let inner = c.enter_coll(CollKind::Bcast);
        assert_eq!(c.current_coll(), CollKind::Allreduce);
        c.record_send(32);
        c.exit_coll(inner);
        c.exit_coll(outer);
        assert_eq!(c.current_coll(), CollKind::P2p);
        c.record_recv(4);

        let s = c.snapshot();
        assert_eq!(s.coll(CollKind::P2p).bytes_sent, 8);
        assert_eq!(s.coll(CollKind::Allreduce).bytes_sent, 48);
        assert_eq!(s.coll(CollKind::Bcast), CollCounts::default());
        assert_eq!(s.coll(CollKind::P2p).bytes_recv, 4);
        // Every byte has exactly one kind.
        let sum: u64 = s.per_coll.iter().map(|(_, c)| c.bytes_sent).sum();
        assert_eq!(sum, s.bytes_sent);
    }

    #[test]
    fn rma_kind_bypasses_collective_marker() {
        let c = Counters::default();
        let prev = c.enter_coll(CollKind::Barrier);
        c.record_send_kind(64, CollKind::Rma);
        c.exit_coll(prev);
        let s = c.snapshot();
        assert_eq!(s.coll(CollKind::Rma).bytes_sent, 64);
        assert_eq!(s.coll(CollKind::Barrier), CollCounts::default());
    }

    #[test]
    fn world_stats_aggregates() {
        let mk = |s, r| RankStats {
            bytes_sent: s,
            bytes_recv: r,
            ..Default::default()
        };
        let w = WorldStats {
            ranks: vec![mk(10, 20), mk(30, 40)],
        };
        assert_eq!(w.total_bytes_sent(), 40);
        assert_eq!(w.total_bytes_recv(), 60);
        assert_eq!(w.max_rank_bytes(), 70);
        assert!((w.avg_rank_bytes() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn coll_totals_aggregate_across_ranks() {
        let mk = |sent| RankStats {
            per_coll: vec![(
                CollKind::Bcast,
                CollCounts {
                    bytes_sent: sent,
                    ..Default::default()
                },
            )],
            ..Default::default()
        };
        let w = WorldStats {
            ranks: vec![mk(100), mk(50)],
        };
        let totals = w.coll_totals();
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].0, CollKind::Bcast);
        assert_eq!(totals[0].1.bytes_sent, 150);
    }
}
