//! World launcher: spawns one OS thread per rank and collects results and
//! traffic statistics.

use crate::comm::{Comm, Shared};
use crate::hooks::{self, SchedHooks};
use crate::stats::WorldStats;
use crate::trace::{self, Recorder, TraceConfig, WorldTrace};
use std::sync::Arc;

/// Results of a finished world: each rank's return value plus the traffic
/// snapshot.
pub struct WorldResult<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank communication statistics.
    pub stats: WorldStats,
}

/// Results of a finished *traced* world: [`WorldResult`] plus the event
/// trace.
pub struct TracedResult<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank communication statistics.
    pub stats: WorldStats,
    /// The recorded event trace.
    pub trace: WorldTrace,
}

/// Run an SPMD function on `p` ranks (one thread each) and wait for all of
/// them.
///
/// The closure receives this rank's world [`Comm`]. If any rank panics the
/// panic is propagated to the caller after the world is torn down.
///
/// If [`crate::trace::capture`] is armed on the calling thread the world is
/// recorded and its trace stashed with the capture, and if
/// [`crate::hooks::with_hooks`] is armed the schedule-perturbation hooks are
/// installed on the world; otherwise no recorder or hooks exist and the
/// transport pays no tracing or perturbation cost.
///
/// # Panics
/// If `p == 0`, or if any rank panics.
pub fn run<R, F>(p: usize, f: F) -> WorldResult<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    if let Some(cfg) = trace::capture_config() {
        let out = run_traced(p, &cfg, f);
        trace::capture_stash(out.trace);
        return WorldResult {
            results: out.results,
            stats: out.stats,
        };
    }
    let (results, stats, _) = launch(Shared::build(p, None, hooks::armed()), f);
    WorldResult { results, stats }
}

/// [`run`] with explicit schedule-perturbation hooks installed on the world
/// (see [`crate::hooks`]). Equivalent to arming the hooks with
/// [`crate::hooks::with_hooks`] around a [`run`] call, for callers that own
/// the launch site.
///
/// # Panics
/// If `p == 0`, or if any rank panics.
pub fn run_hooked<R, F>(p: usize, hooks: Arc<dyn SchedHooks>, f: F) -> WorldResult<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    let (results, stats, _) = launch(Shared::build(p, None, Some(hooks)), f);
    WorldResult { results, stats }
}

/// [`run`] with event tracing enabled: every rank records sends, receive
/// waits, collectives, and phase markers (see [`crate::trace`]). Hooks armed
/// via [`crate::hooks::with_hooks`] are installed on the world, so a run can
/// be perturbed *and* traced (how the invariant checkers observe a
/// fault-injected schedule).
///
/// # Panics
/// If `p == 0`, or if any rank panics.
pub fn run_traced<R, F>(p: usize, cfg: &TraceConfig, f: F) -> TracedResult<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    run_traced_with(p, cfg, hooks::armed(), f)
}

/// [`run_traced`] with explicit schedule-perturbation hooks installed on the
/// world, for callers that own the launch site.
///
/// # Panics
/// If `p == 0`, or if any rank panics.
pub fn run_traced_hooked<R, F>(
    p: usize,
    cfg: &TraceConfig,
    hooks: Arc<dyn SchedHooks>,
    f: F,
) -> TracedResult<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    run_traced_with(p, cfg, Some(hooks), f)
}

fn run_traced_with<R, F>(
    p: usize,
    cfg: &TraceConfig,
    hooks: Option<Arc<dyn SchedHooks>>,
    f: F,
) -> TracedResult<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    let shared = Shared::build(p, Some(Recorder::new(p, cfg)), hooks);
    let (results, stats, shared) = launch(shared, f);
    let shared = Arc::into_inner(shared)
        .expect("traced world: shared state must be exclusively owned after join");
    let trace = shared
        .trace
        .expect("traced world carries a recorder")
        .finish();
    TracedResult {
        results,
        stats,
        trace,
    }
}

fn launch<R, F>(shared: Arc<Shared>, f: F) -> (Vec<R>, WorldStats, Arc<Shared>)
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    let p = shared.mailboxes.len();
    assert!(p > 0, "world must have at least one rank");

    let results: Vec<R> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..p)
            .map(|rank| {
                let shared = shared.clone();
                let f = &f;
                s.spawn(move || {
                    let comm = Comm::world(shared, rank);
                    f(&comm)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    });

    let stats = WorldStats {
        ranks: shared.counters.iter().map(|c| c.snapshot()).collect(),
    };
    (results, stats, shared)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = run(1, |c| {
            assert_eq!(c.size(), 1);
            42
        });
        assert_eq!(out.results, vec![42]);
        assert_eq!(out.stats.total_bytes_sent(), 0);
    }

    #[test]
    fn ranks_are_distinct_and_ordered() {
        let out = run(7, |c| c.rank());
        assert_eq!(out.results, (0..7).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn rank_panic_propagates() {
        run(3, |c| {
            if c.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn traced_world_records_messaging_events() {
        use crate::trace::Event;
        use crate::CollKind;
        let out = run_traced(2, &TraceConfig::default(), |c| {
            c.set_phase("talk");
            if c.rank() == 0 {
                c.send_f64(1, 3, &[1.0, 2.0]);
            } else {
                c.recv_f64(0, 3);
            }
            c.barrier();
        });
        assert_eq!(out.trace.num_ranks(), 2);
        assert!(!out.trace.truncated());
        let r0 = &out.trace.ranks[0].events;
        let r1 = &out.trace.ranks[1].events;
        // Rank 0: phase marker, then the user send (p2p kind), then barrier.
        assert!(matches!(r0[0], Event::Phase { .. }));
        assert!(r0.iter().any(|e| matches!(
            *e,
            Event::Send {
                peer: 1,
                tag: 3,
                bytes: 16,
                kind: CollKind::P2p,
                ..
            }
        )));
        assert!(r0.iter().any(|e| matches!(
            *e,
            Event::CollEnter {
                kind: CollKind::Barrier,
                ..
            }
        )));
        // Rank 1: a post/done pair for the user receive.
        let post = r1
            .iter()
            .find_map(|e| match *e {
                Event::RecvPost {
                    t, peer: 0, tag: 3, ..
                } => Some(t),
                _ => None,
            })
            .expect("recv post recorded");
        let done = r1
            .iter()
            .find_map(|e| match *e {
                Event::RecvDone {
                    t,
                    peer: 0,
                    tag: 3,
                    bytes: 16,
                    ..
                } => Some(t),
                _ => None,
            })
            .expect("recv done recorded");
        assert!(done >= post);
        // Timestamps are monotone per rank (rank-local writers only here).
        for evs in [r0, r1] {
            for w in evs.windows(2) {
                assert!(w[1].t() >= w[0].t());
            }
        }
        // Barrier traffic is attributed to the barrier, the user message to
        // p2p, and kinds partition the totals.
        let r0s = &out.stats.ranks[0];
        assert_eq!(r0s.coll(CollKind::P2p).bytes_sent, 16);
        // Barrier messages are zero-byte; they still count as messages.
        assert!(r0s.coll(CollKind::Barrier).msgs_sent > 0);
        let kind_sum: u64 = r0s.per_coll.iter().map(|(_, c)| c.bytes_sent).sum();
        assert_eq!(kind_sum, r0s.bytes_sent);
    }

    #[test]
    fn untraced_world_records_nothing() {
        let out = run(2, |c| c.barrier());
        // Same stats as ever (barrier messages are zero-byte); there is
        // simply no trace to consult.
        assert!(out.stats.total_msgs() > 0);
    }

    #[test]
    fn capture_traces_nested_runs() {
        let (total, traces) = crate::trace::capture(TraceConfig::default(), || {
            let out = run(3, |c| {
                let mut v = vec![c.rank() as f64];
                c.allreduce_sum(&mut v);
                v[0]
            });
            out.results[0]
        });
        assert_eq!(total, 3.0);
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].num_ranks(), 3);
        assert!(traces[0].num_events() > 0);
    }

    #[test]
    fn stats_account_for_all_traffic() {
        let out = run(4, |c| {
            // Everyone sends rank-many elements to rank 0.
            if c.rank() != 0 {
                c.send_f64(0, 0, &vec![0.0; c.rank()]);
            } else {
                for src in 1..4 {
                    c.recv_f64(src, 0);
                }
            }
        });
        // 1+2+3 = 6 elements = 48 bytes.
        assert_eq!(out.stats.total_bytes_sent(), 48);
        assert_eq!(out.stats.total_bytes_recv(), 48);
        assert_eq!(out.stats.ranks[0].bytes_recv, 48);
        assert_eq!(out.stats.ranks[3].bytes_sent, 24);
    }
}
