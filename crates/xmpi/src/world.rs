//! World launcher: spawns one OS thread per rank and collects results and
//! traffic statistics.

use crate::comm::{Comm, Shared};
use crate::error::XmpiError;
use crate::hooks::{self, SchedHooks};
use crate::liveness::{CrashUnwind, PoisonUnwind};
use crate::stats::WorldStats;
use crate::trace::{self, Recorder, TraceConfig, WorldTrace};
use std::sync::Arc;

/// Results of a finished world: each rank's return value plus the traffic
/// snapshot.
pub struct WorldResult<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank communication statistics.
    pub stats: WorldStats,
}

/// Results of a world that may have suffered injected rank crashes (see
/// [`run_ft`]): per-rank outcomes instead of bare values.
pub struct FtResult<R> {
    /// Per-rank outcomes, indexed by rank. A crashed rank is
    /// `Err(XmpiError::RankDead)` *naming itself*; a survivor whose blocking
    /// operation was cut short carries the error it observed
    /// (`RankDead { peer }` or `WorldPoisoned`).
    pub results: Vec<Result<R, XmpiError>>,
    /// Per-rank communication statistics (crashed ranks keep whatever they
    /// had counted before dying — a crashed send was never counted).
    pub stats: WorldStats,
    /// World ranks that crashed, ascending. Empty means every rank ran to
    /// completion and every entry of `results` is `Ok`.
    pub crashed: Vec<usize>,
}

/// Results of a finished *traced* world: [`WorldResult`] plus the event
/// trace.
pub struct TracedResult<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank communication statistics.
    pub stats: WorldStats,
    /// The recorded event trace.
    pub trace: WorldTrace,
}

/// Run an SPMD function on `p` ranks (one thread each) and wait for all of
/// them.
///
/// The closure receives this rank's world [`Comm`]. If any rank panics the
/// panic is propagated to the caller after the world is torn down.
///
/// If [`crate::trace::capture`] is armed on the calling thread the world is
/// recorded and its trace stashed with the capture, and if
/// [`crate::hooks::with_hooks`] is armed the schedule-perturbation hooks are
/// installed on the world; otherwise no recorder or hooks exist and the
/// transport pays no tracing or perturbation cost.
///
/// # Panics
/// If `p == 0`, or if any rank panics.
pub fn run<R, F>(p: usize, f: F) -> WorldResult<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    if let Some(cfg) = trace::capture_config() {
        let out = run_traced(p, &cfg, f);
        trace::capture_stash(out.trace);
        return WorldResult {
            results: out.results,
            stats: out.stats,
        };
    }
    let (results, stats, _) = launch(Shared::build(p, None, hooks::armed()), f);
    WorldResult { results, stats }
}

/// [`run`] with explicit schedule-perturbation hooks installed on the world
/// (see [`crate::hooks`]). Equivalent to arming the hooks with
/// [`crate::hooks::with_hooks`] around a [`run`] call, for callers that own
/// the launch site.
///
/// # Panics
/// If `p == 0`, or if any rank panics.
pub fn run_hooked<R, F>(p: usize, hooks: Arc<dyn SchedHooks>, f: F) -> WorldResult<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    let (results, stats, _) = launch(Shared::build(p, None, Some(hooks)), f);
    WorldResult { results, stats }
}

/// [`run`] with event tracing enabled: every rank records sends, receive
/// waits, collectives, and phase markers (see [`crate::trace`]). Hooks armed
/// via [`crate::hooks::with_hooks`] are installed on the world, so a run can
/// be perturbed *and* traced (how the invariant checkers observe a
/// fault-injected schedule).
///
/// # Panics
/// If `p == 0`, or if any rank panics.
pub fn run_traced<R, F>(p: usize, cfg: &TraceConfig, f: F) -> TracedResult<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    run_traced_with(p, cfg, hooks::armed(), f)
}

/// [`run_traced`] with explicit schedule-perturbation hooks installed on the
/// world, for callers that own the launch site.
///
/// # Panics
/// If `p == 0`, or if any rank panics.
pub fn run_traced_hooked<R, F>(
    p: usize,
    cfg: &TraceConfig,
    hooks: Arc<dyn SchedHooks>,
    f: F,
) -> TracedResult<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    run_traced_with(p, cfg, Some(hooks), f)
}

fn run_traced_with<R, F>(
    p: usize,
    cfg: &TraceConfig,
    hooks: Option<Arc<dyn SchedHooks>>,
    f: F,
) -> TracedResult<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    let shared = Shared::build(p, Some(Recorder::new(p, cfg)), hooks);
    let (results, stats, shared) = launch(shared, f);
    let shared = Arc::into_inner(shared)
        .expect("traced world: shared state must be exclusively owned after join");
    let trace = shared
        .trace
        .expect("traced world carries a recorder")
        .finish();
    TracedResult {
        results,
        stats,
        trace,
    }
}

/// [`run`] for worlds that may suffer injected rank crashes: per-rank
/// outcomes instead of a propagated panic.
///
/// The crashing rank unwinds with an internal sentinel that the join point
/// maps to `Err(XmpiError::RankDead)` naming the rank itself; survivors cut
/// short by the poisoned world carry the precise error their blocking
/// operation observed. A *genuine* panic (an assertion failure, an
/// out-of-range send) is still re-raised unchanged — only the two fault
/// sentinels are absorbed, so bugs stay loud under fault injection.
///
/// Composes with [`crate::trace::capture`] and [`crate::hooks::with_hooks`]
/// exactly like [`run`], which is how a fault-tolerant driver replays a
/// seeded crash schedule under tracing.
///
/// # Panics
/// If `p == 0`, or if any rank panics with a non-sentinel payload.
pub fn run_ft<R, F>(p: usize, f: F) -> FtResult<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    if let Some(cfg) = trace::capture_config() {
        let shared = Shared::build(p, Some(Recorder::new(p, &cfg)), hooks::armed());
        let (results, stats, shared) = launch_ft(shared, f);
        let crashed = shared.liveness.dead_ranks();
        let shared = Arc::into_inner(shared)
            .expect("traced world: shared state must be exclusively owned after join");
        let trace = shared
            .trace
            .expect("traced world carries a recorder")
            .finish();
        trace::capture_stash(trace);
        return FtResult {
            results,
            stats,
            crashed,
        };
    }
    let (results, stats, shared) = launch_ft(Shared::build(p, None, hooks::armed()), f);
    let crashed = shared.liveness.dead_ranks();
    FtResult {
        results,
        stats,
        crashed,
    }
}

/// Join-point core: spawn the ranks and map each join outcome. The two fault
/// sentinels ([`CrashUnwind`], [`PoisonUnwind`]) become typed `Err` values;
/// anything else is a real bug and is re-raised.
fn launch_ft<R, F>(
    shared: Arc<Shared>,
    f: F,
) -> (Vec<Result<R, XmpiError>>, WorldStats, Arc<Shared>)
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    let p = shared.transport.size();
    assert!(p > 0, "world must have at least one rank");

    let results: Vec<Result<R, XmpiError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..p)
            .map(|rank| {
                let shared = shared.clone();
                let f = &f;
                s.spawn(move || {
                    let comm = Comm::world(shared, rank);
                    f(&comm)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => Ok(r),
                Err(payload) => {
                    let payload = match payload.downcast::<CrashUnwind>() {
                        Ok(c) => return Err(XmpiError::RankDead { rank: c.rank }),
                        Err(other) => other,
                    };
                    match payload.downcast::<PoisonUnwind>() {
                        Ok(p) => Err(p.0),
                        Err(other) => std::panic::resume_unwind(other),
                    }
                }
            })
            .collect()
    });

    let stats = WorldStats {
        ranks: shared.counters.iter().map(|c| c.snapshot()).collect(),
    };
    (results, stats, shared)
}

/// Infallible launch used by [`run`] and friends: a fault sentinel reaching
/// this join point means crash injection was armed on a world launched
/// without [`run_ft`] — fail loudly with a pointer at the right entry point
/// instead of hanging or silently dropping a rank.
fn launch<R, F>(shared: Arc<Shared>, f: F) -> (Vec<R>, WorldStats, Arc<Shared>)
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    let (results, stats, shared) = launch_ft(shared, f);
    let results = results
        .into_iter()
        .enumerate()
        .map(|(rank, r)| match r {
            Ok(v) => v,
            Err(e) => panic!(
                "rank {rank} failed under fault injection: {e}; \
                 launch the world with xmpi::run_ft to handle rank crashes"
            ),
        })
        .collect();
    (results, stats, shared)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = run(1, |c| {
            assert_eq!(c.size(), 1);
            42
        });
        assert_eq!(out.results, vec![42]);
        assert_eq!(out.stats.total_bytes_sent(), 0);
    }

    #[test]
    fn ranks_are_distinct_and_ordered() {
        let out = run(7, |c| c.rank());
        assert_eq!(out.results, (0..7).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn rank_panic_propagates() {
        run(3, |c| {
            if c.rank() == 1 {
                panic!("boom");
            }
        });
    }

    /// Kills `victim` at its first send attempt.
    struct CrashVictim {
        victim: usize,
    }
    impl SchedHooks for CrashVictim {
        fn crash_fate(&self, src: usize, _: usize, _: u64, _: u64) -> crate::hooks::CrashFate {
            if src == self.victim {
                crate::hooks::CrashFate::Crash
            } else {
                crate::hooks::CrashFate::Survive
            }
        }
    }

    #[test]
    fn run_ft_maps_crash_to_typed_errors() {
        let out = hooks::with_hooks(Arc::new(CrashVictim { victim: 0 }), || {
            run_ft(2, |c| {
                if c.rank() == 0 {
                    c.send_f64(1, 0, &[1.0]);
                    0.0
                } else {
                    c.recv_f64(0, 0)[0]
                }
            })
        });
        assert_eq!(out.crashed, vec![0]);
        // The victim names itself; the survivor blocked on the dead peer.
        assert_eq!(out.results[0], Err(XmpiError::RankDead { rank: 0 }));
        assert_eq!(out.results[1], Err(XmpiError::RankDead { rank: 0 }));
    }

    #[test]
    fn run_ft_without_faults_is_all_ok() {
        let out = run_ft(3, |c| {
            let mut v = vec![c.rank() as f64];
            c.allreduce_sum(&mut v);
            v[0]
        });
        assert!(out.crashed.is_empty());
        for r in out.results {
            assert_eq!(r, Ok(3.0));
        }
    }

    #[test]
    fn run_ft_still_propagates_real_panics() {
        let r = std::panic::catch_unwind(|| {
            run_ft(2, |c| {
                if c.rank() == 1 {
                    panic!("genuine bug");
                }
            });
        });
        assert!(r.is_err());
    }

    #[test]
    #[should_panic(expected = "fault injection")]
    fn plain_run_rejects_crash_injection_loudly() {
        hooks::with_hooks(Arc::new(CrashVictim { victim: 0 }), || {
            run(2, |c| {
                if c.rank() == 0 {
                    c.send_f64(1, 0, &[1.0]);
                } else {
                    c.recv_f64(0, 0);
                }
            });
        });
    }

    #[test]
    fn delivered_messages_survive_poisoning() {
        // Rank 0 sends its payload and *then* crashes; rank 1 must still be
        // able to consume the already-delivered message before observing the
        // death on its second receive.
        struct CrashOnSecondSend(std::sync::atomic::AtomicUsize);
        impl SchedHooks for CrashOnSecondSend {
            fn crash_fate(&self, src: usize, _: usize, _: u64, _: u64) -> crate::hooks::CrashFate {
                use std::sync::atomic::Ordering;
                if src == 0 && self.0.fetch_add(1, Ordering::SeqCst) == 1 {
                    crate::hooks::CrashFate::Crash
                } else {
                    crate::hooks::CrashFate::Survive
                }
            }
        }
        let out = hooks::with_hooks(
            Arc::new(CrashOnSecondSend(std::sync::atomic::AtomicUsize::new(0))),
            || {
                run_ft(2, |c| {
                    if c.rank() == 0 {
                        c.send_f64(1, 0, &[7.0]);
                        c.send_f64(1, 1, &[8.0]); // dies here
                        vec![]
                    } else {
                        let first = c.try_recv_f64(0, 0).expect("delivered before crash");
                        let second = c.try_recv_f64(0, 1);
                        assert_eq!(second, Err(XmpiError::RankDead { rank: 0 }));
                        first
                    }
                })
            },
        );
        assert_eq!(out.crashed, vec![0]);
        assert_eq!(out.results[1], Ok(vec![7.0]));
    }

    #[test]
    fn traced_world_records_messaging_events() {
        use crate::trace::Event;
        use crate::CollKind;
        let out = run_traced(2, &TraceConfig::default(), |c| {
            c.set_phase("talk");
            if c.rank() == 0 {
                c.send_f64(1, 3, &[1.0, 2.0]);
            } else {
                c.recv_f64(0, 3);
            }
            c.barrier();
        });
        assert_eq!(out.trace.num_ranks(), 2);
        assert!(!out.trace.truncated());
        let r0 = &out.trace.ranks[0].events;
        let r1 = &out.trace.ranks[1].events;
        // Rank 0: phase marker, then the user send (p2p kind), then barrier.
        assert!(matches!(r0[0], Event::Phase { .. }));
        assert!(r0.iter().any(|e| matches!(
            *e,
            Event::Send {
                peer: 1,
                tag: 3,
                bytes: 16,
                kind: CollKind::P2p,
                ..
            }
        )));
        assert!(r0.iter().any(|e| matches!(
            *e,
            Event::CollEnter {
                kind: CollKind::Barrier,
                ..
            }
        )));
        // Rank 1: a post/done pair for the user receive.
        let post = r1
            .iter()
            .find_map(|e| match *e {
                Event::RecvPost {
                    t, peer: 0, tag: 3, ..
                } => Some(t),
                _ => None,
            })
            .expect("recv post recorded");
        let done = r1
            .iter()
            .find_map(|e| match *e {
                Event::RecvDone {
                    t,
                    peer: 0,
                    tag: 3,
                    bytes: 16,
                    ..
                } => Some(t),
                _ => None,
            })
            .expect("recv done recorded");
        assert!(done >= post);
        // Timestamps are monotone per rank (rank-local writers only here).
        for evs in [r0, r1] {
            for w in evs.windows(2) {
                assert!(w[1].t() >= w[0].t());
            }
        }
        // Barrier traffic is attributed to the barrier, the user message to
        // p2p, and kinds partition the totals.
        let r0s = &out.stats.ranks[0];
        assert_eq!(r0s.coll(CollKind::P2p).bytes_sent, 16);
        // Barrier messages are zero-byte; they still count as messages.
        assert!(r0s.coll(CollKind::Barrier).msgs_sent > 0);
        let kind_sum: u64 = r0s.per_coll.iter().map(|(_, c)| c.bytes_sent).sum();
        assert_eq!(kind_sum, r0s.bytes_sent);
    }

    #[test]
    fn untraced_world_records_nothing() {
        let out = run(2, |c| c.barrier());
        // Same stats as ever (barrier messages are zero-byte); there is
        // simply no trace to consult.
        assert!(out.stats.total_msgs() > 0);
    }

    #[test]
    fn capture_traces_nested_runs() {
        let (total, traces) = crate::trace::capture(TraceConfig::default(), || {
            let out = run(3, |c| {
                let mut v = vec![c.rank() as f64];
                c.allreduce_sum(&mut v);
                v[0]
            });
            out.results[0]
        });
        assert_eq!(total, 3.0);
        assert_eq!(traces.len(), 1);
        assert_eq!(traces[0].num_ranks(), 3);
        assert!(traces[0].num_events() > 0);
    }

    #[test]
    fn stats_account_for_all_traffic() {
        let out = run(4, |c| {
            // Everyone sends rank-many elements to rank 0.
            if c.rank() != 0 {
                c.send_f64(0, 0, &vec![0.0; c.rank()]);
            } else {
                for src in 1..4 {
                    c.recv_f64(src, 0);
                }
            }
        });
        // 1+2+3 = 6 elements = 48 bytes.
        assert_eq!(out.stats.total_bytes_sent(), 48);
        assert_eq!(out.stats.total_bytes_recv(), 48);
        assert_eq!(out.stats.ranks[0].bytes_recv, 48);
        assert_eq!(out.stats.ranks[3].bytes_sent, 24);
    }
}
