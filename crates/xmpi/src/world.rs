//! World launcher: spawns one OS thread per rank and collects results and
//! traffic statistics.

use crate::comm::{Comm, Shared};
use crate::stats::WorldStats;

/// Results of a finished world: each rank's return value plus the traffic
/// snapshot.
pub struct WorldResult<R> {
    /// Per-rank return values, indexed by rank.
    pub results: Vec<R>,
    /// Per-rank communication statistics.
    pub stats: WorldStats,
}

/// Run an SPMD function on `p` ranks (one thread each) and wait for all of
/// them.
///
/// The closure receives this rank's world [`Comm`]. If any rank panics the
/// panic is propagated to the caller after the world is torn down.
///
/// # Panics
/// If `p == 0`, or if any rank panics.
pub fn run<R, F>(p: usize, f: F) -> WorldResult<R>
where
    R: Send,
    F: Fn(&Comm) -> R + Sync,
{
    assert!(p > 0, "world must have at least one rank");
    let shared = Shared::new(p);

    let results: Vec<R> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..p)
            .map(|rank| {
                let shared = shared.clone();
                let f = &f;
                s.spawn(move || {
                    let comm = Comm::world(shared, rank);
                    f(&comm)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    });

    let stats = WorldStats { ranks: shared.counters.iter().map(|c| c.snapshot()).collect() };
    WorldResult { results, stats }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_rank_world() {
        let out = run(1, |c| {
            assert_eq!(c.size(), 1);
            42
        });
        assert_eq!(out.results, vec![42]);
        assert_eq!(out.stats.total_bytes_sent(), 0);
    }

    #[test]
    fn ranks_are_distinct_and_ordered() {
        let out = run(7, |c| c.rank());
        assert_eq!(out.results, (0..7).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn rank_panic_propagates() {
        run(3, |c| {
            if c.rank() == 1 {
                panic!("boom");
            }
        });
    }

    #[test]
    fn stats_account_for_all_traffic() {
        let out = run(4, |c| {
            // Everyone sends rank-many elements to rank 0.
            if c.rank() != 0 {
                c.send_f64(0, 0, &vec![0.0; c.rank()]);
            } else {
                for src in 1..4 {
                    c.recv_f64(src, 0);
                }
            }
        });
        // 1+2+3 = 6 elements = 48 bytes.
        assert_eq!(out.stats.total_bytes_sent(), 48);
        assert_eq!(out.stats.total_bytes_recv(), 48);
        assert_eq!(out.stats.ranks[0].bytes_recv, 48);
        assert_eq!(out.stats.ranks[3].bytes_sent, 24);
    }
}
