//! Shared immutable buffers — the storage behind zero-copy [`Payload`]s.
//!
//! A [`Buf`] wraps its elements in an [`Arc`], so cloning one (what a send
//! enqueues, what a broadcast forwards down its tree) is a refcount bump, not
//! a deep copy. Receivers read through [`Deref`] as `&[T]` without copying;
//! [`Buf::into_vec`] converts to owned storage and only pays for a copy when
//! the buffer is genuinely still shared (a uniquely-held `Buf` unwraps its
//! allocation for free).
//!
//! The inner type is `Arc<Vec<T>>` rather than `Arc<[T]>` deliberately:
//! a slice Arc stores its elements inline, so converting back to a `Vec`
//! *always* copies, while `Arc::try_unwrap` on a boxed `Vec` hands the
//! original allocation back whenever the refcount is 1 — which is exactly
//! the "convert to owned storage only when the consumer actually mutates a
//! shared buffer" contract the transport wants.
//!
//! [`Payload`]: crate::Payload

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-clonable, immutable, shared buffer of `T`.
///
/// ```
/// use xmpi::Buf;
///
/// let b: Buf<f64> = vec![1.0, 2.0, 3.0].into();
/// let c = b.clone(); // refcount bump, no copy
/// assert_eq!(&*c, &[1.0, 2.0, 3.0]);
/// drop(b);
/// let owned: Vec<f64> = c.into_vec(); // unique again: reclaims the Vec
/// assert_eq!(owned, vec![1.0, 2.0, 3.0]);
/// ```
pub struct Buf<T> {
    inner: Arc<Vec<T>>,
}

impl<T> Buf<T> {
    /// Number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Is the buffer empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }
}

impl<T: Clone> Buf<T> {
    /// Share a borrowed slice (one copy — the last one the transport makes).
    pub fn from_slice(data: &[T]) -> Self {
        Buf {
            inner: Arc::new(data.to_vec()),
        }
    }

    /// Convert to owned storage. Free when this handle is the last one
    /// (reclaims the original allocation); copies only if the buffer is
    /// still shared — e.g. by an in-flight message further down a
    /// broadcast tree.
    pub fn into_vec(self) -> Vec<T> {
        match Arc::try_unwrap(self.inner) {
            Ok(v) => v,
            Err(shared) => (*shared).clone(),
        }
    }

    /// Copy out to an owned `Vec` without consuming the handle.
    pub fn to_vec(&self) -> Vec<T> {
        (*self.inner).clone()
    }

    /// Copy-on-write mutable access: clones the storage only if shared.
    /// Crate-internal — payloads are immutable on the wire; the one
    /// legitimate writer is the fault-injection corruption hook, which must
    /// not scribble on copies other ranks are still about to receive.
    pub(crate) fn make_mut(&mut self) -> &mut Vec<T> {
        Arc::make_mut(&mut self.inner)
    }
}

impl<T> Clone for Buf<T> {
    /// Refcount bump; never copies the elements.
    #[inline]
    fn clone(&self) -> Self {
        Buf {
            inner: Arc::clone(&self.inner),
        }
    }
}

impl<T> Deref for Buf<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.inner.as_slice()
    }
}

impl<T> From<Vec<T>> for Buf<T> {
    /// Wrap an owned `Vec` without copying.
    #[inline]
    fn from(v: Vec<T>) -> Self {
        Buf { inner: Arc::new(v) }
    }
}

impl<T: fmt::Debug> fmt::Debug for Buf<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.as_slice().fmt(f)
    }
}

impl<T: PartialEq> PartialEq for Buf<T> {
    fn eq(&self, other: &Self) -> bool {
        self.inner.as_slice() == other.inner.as_slice()
    }
}

impl<T: PartialEq> PartialEq<[T]> for Buf<T> {
    fn eq(&self, other: &[T]) -> bool {
        self.inner.as_slice() == other
    }
}

impl<T: PartialEq> PartialEq<Vec<T>> for Buf<T> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.inner.as_slice() == other.as_slice()
    }
}

impl<T: PartialEq, const N: usize> PartialEq<[T; N]> for Buf<T> {
    fn eq(&self, other: &[T; N]) -> bool {
        self.inner.as_slice() == other.as_slice()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clone_shares_storage() {
        let a: Buf<f64> = vec![1.0, 2.0].into();
        let b = a.clone();
        assert_eq!(a.as_ptr(), b.as_ptr(), "clone must not copy");
        assert_eq!(b, [1.0, 2.0]);
    }

    #[test]
    fn into_vec_reclaims_unique_allocation() {
        let v = vec![3.0; 128];
        let ptr = v.as_ptr();
        let b: Buf<f64> = v.into();
        let back = b.into_vec();
        assert_eq!(back.as_ptr(), ptr, "unique Buf must hand back its Vec");
    }

    #[test]
    fn into_vec_copies_when_shared() {
        let b: Buf<f64> = vec![4.0, 5.0].into();
        let keep = b.clone();
        let owned = b.into_vec();
        assert_ne!(owned.as_ptr(), keep.as_ptr(), "shared Buf must copy out");
        assert_eq!(owned, vec![4.0, 5.0]);
        assert_eq!(keep, [4.0, 5.0]);
    }

    #[test]
    fn make_mut_is_copy_on_write() {
        let mut a: Buf<f64> = vec![1.0, 2.0].into();
        let b = a.clone();
        a.make_mut()[0] = 9.0;
        assert_eq!(a, [9.0, 2.0]);
        assert_eq!(b, [1.0, 2.0], "shared copy must be unaffected");
        // Unique: mutate in place, no second allocation.
        let ptr = a.as_ptr();
        a.make_mut()[1] = 8.0;
        assert_eq!(a.as_ptr(), ptr);
    }
}
