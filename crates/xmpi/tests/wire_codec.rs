//! Property tests of the socket wire codec: payload frames must round-trip
//! bit-exactly through arbitrarily chunked reads and writes (a UNIX socket
//! never promises to move a frame in one syscall), and every malformed
//! header must come back as a typed [`XmpiError::Truncated`] — never a
//! panic, never a silent mis-parse.

use proptest::prelude::*;
use std::io::{self, Read, Write};
use xmpi::wire::{
    frame_payload, payload_frame, read_frame, write_frame, Frame, FrameKind, HEADER_LEN,
    MAX_BODY_LEN,
};
use xmpi::{Payload, XmpiError};

/// Writer that accepts at most `chunk` bytes per call — forces
/// `write_frame` through partial-write boundaries.
struct ChunkWriter {
    out: Vec<u8>,
    chunk: usize,
}

impl Write for ChunkWriter {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = buf.len().min(self.chunk);
        self.out.extend_from_slice(&buf[..n]);
        Ok(n)
    }
    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

/// Reader that yields at most `chunk` bytes per call — forces `read_frame`
/// through split-read boundaries (header and body straddling reads).
struct ChunkReader<'a> {
    data: &'a [u8],
    pos: usize,
    chunk: usize,
}

impl Read for ChunkReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = buf.len().min(self.chunk).min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

fn chunked_roundtrip(frame: &Frame, write_chunk: usize, read_chunk: usize) -> Frame {
    let mut w = ChunkWriter {
        out: Vec::new(),
        chunk: write_chunk,
    };
    write_frame(&mut w, frame).expect("chunked write");
    let mut r = ChunkReader {
        data: &w.out,
        pos: 0,
        chunk: read_chunk,
    };
    let got = read_frame(&mut r)
        .expect("well-formed frame")
        .expect("not EOF");
    assert_eq!(r.pos, w.out.len(), "frame must consume its bytes exactly");
    got
}

/// Deterministic f64 bit patterns (includes NaNs, infinities, subnormals —
/// whatever the splitmix stream lands on) so round-trips are checked on the
/// raw bit level, not through float equality.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    #[test]
    fn f64_frames_roundtrip_through_chunked_io(
        len in 0usize..600,
        seed in 0u64..10_000,
        write_chunk in 1usize..97,
        read_chunk in 1usize..97,
        ctx in 0u64..1_000_000,
        tag in 0u64..1_000_000,
        delay_ns in 0u64..1_000_000_000,
    ) {
        let vals: Vec<f64> = (0..len as u64).map(|i| f64::from_bits(mix(seed ^ i))).collect();
        let bits: Vec<u64> = vals.iter().map(|x| x.to_bits()).collect();
        let f = payload_frame(7, ctx, tag, delay_ns, &Payload::from(vals));
        let g = chunked_roundtrip(&f, write_chunk, read_chunk);
        prop_assert_eq!(g.kind, FrameKind::MsgF64);
        prop_assert_eq!((g.src, g.ctx, g.tag, g.delay_ns), (7, ctx, tag, delay_ns));
        let Payload::F64(buf) = frame_payload(&g).expect("payload decodes") else {
            panic!("wrong payload kind");
        };
        let got_bits: Vec<u64> = buf.iter().map(|x| x.to_bits()).collect();
        prop_assert_eq!(got_bits, bits);
    }

    #[test]
    fn u64_frames_roundtrip_through_chunked_io(
        len in 0usize..600,
        seed in 0u64..10_000,
        write_chunk in 1usize..97,
        read_chunk in 1usize..97,
    ) {
        let vals: Vec<u64> = (0..len as u64).map(|i| mix(seed ^ i)).collect();
        let expect = vals.clone();
        let f = payload_frame(3, 11, 22, 0, &Payload::from(vals));
        let g = chunked_roundtrip(&f, write_chunk, read_chunk);
        prop_assert_eq!(g.kind, FrameKind::MsgU64);
        let Payload::U64(buf) = frame_payload(&g).expect("payload decodes") else {
            panic!("wrong payload kind");
        };
        prop_assert_eq!(buf.to_vec(), expect);
    }

    #[test]
    fn truncated_streams_are_typed_errors(
        len in 0usize..40,
        cut_pick in 1usize..4096,
    ) {
        // A stream that ends mid-frame — at any byte of the header or the
        // body — must surface as `XmpiError::Truncated`, not hang or panic.
        let vals: Vec<f64> = (0..len).map(|i| i as f64).collect();
        let f = payload_frame(1, 2, 3, 0, &Payload::from(vals));
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &f).expect("vec write");
        let cut = 1 + cut_pick % (bytes.len() - 1);
        let mut r = ChunkReader { data: &bytes[..cut], pos: 0, chunk: 13 };
        prop_assert!(matches!(read_frame(&mut r), Err(XmpiError::Truncated { .. })));
    }

    #[test]
    fn corrupt_headers_are_rejected(
        magic_byte in 0usize..4,
        flip in 1u8..=255,
        bad_kind_pick in 0u8..250,
    ) {
        let f = payload_frame(0, 0, 0, 0, &Payload::from(vec![1.0, 2.0]));
        let mut bytes = Vec::new();
        write_frame(&mut bytes, &f).expect("vec write");

        // Any corrupted magic byte.
        let mut corrupt = bytes.clone();
        corrupt[magic_byte] ^= flip;
        let mut r: &[u8] = &corrupt;
        prop_assert!(matches!(read_frame(&mut r), Err(XmpiError::Truncated { .. })));

        // Any kind byte outside the protocol (1..=7 are valid kinds).
        let bad_kind = if bad_kind_pick < 8 { 0 } else { bad_kind_pick };
        let mut corrupt = bytes.clone();
        corrupt[4] = bad_kind;
        let mut r: &[u8] = &corrupt;
        prop_assert!(matches!(read_frame(&mut r), Err(XmpiError::Truncated { .. })));
    }
}

#[test]
fn empty_payload_frames_roundtrip() {
    for payload in [
        Payload::from(Vec::<f64>::new()),
        Payload::from(Vec::<u64>::new()),
    ] {
        let f = payload_frame(0, 5, 6, 0, &payload);
        assert!(f.body.is_empty());
        let g = chunked_roundtrip(&f, 1, 1);
        assert_eq!(frame_payload(&g).expect("decodes").bytes(), 0);
    }
}

#[test]
fn huge_payload_frames_roundtrip() {
    // A panel-sized payload (4 MiB) through deliberately misaligned chunks.
    let n = 1 << 19;
    let vals: Vec<f64> = (0..n).map(|i| i as f64 * 0.5).collect();
    let f = payload_frame(2, 9, 9, 0, &Payload::from(vals));
    let g = chunked_roundtrip(&f, 4093, 8191);
    let Payload::F64(buf) = frame_payload(&g).expect("decodes") else {
        panic!("wrong payload kind");
    };
    assert_eq!(buf.len(), n);
    assert_eq!(buf[n - 1], (n - 1) as f64 * 0.5);
}

#[test]
fn oversized_length_is_rejected_before_allocating() {
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &Frame::control(FrameKind::Fin, 0)).expect("vec write");
    // Patch the length field to an absurd value; the reader must reject the
    // header instead of trying to allocate the body.
    bytes[33..41].copy_from_slice(&(MAX_BODY_LEN + 1).to_le_bytes());
    let mut r: &[u8] = &bytes;
    assert!(matches!(
        read_frame(&mut r),
        Err(XmpiError::Truncated { .. })
    ));
}

#[test]
fn ragged_message_length_is_rejected() {
    // Message bodies are 8-byte elements; a length of 12 is corruption.
    let mut bytes = Vec::new();
    let mut f = Frame::control(FrameKind::MsgF64, 1);
    f.body = vec![0u8; 16];
    write_frame(&mut bytes, &f).expect("vec write");
    bytes[33..41].copy_from_slice(&12u64.to_le_bytes());
    let mut r: &[u8] = &bytes;
    assert!(matches!(
        read_frame(&mut r),
        Err(XmpiError::Truncated { .. })
    ));
}

#[test]
fn header_len_matches_layout() {
    // The fixed header is magic + kind + src + ctx + tag + delay + len.
    assert_eq!(HEADER_LEN, 41);
}

#[test]
fn decoded_payload_reclaims_without_copy() {
    // The socket receive path: a frame arrives, `frame_payload` rebuilds the
    // payload, the consumer calls `into_vec`. The rebuilt `Buf` must be
    // unique (refcount 1) so the reclaim is allocation hand-back, not a
    // copy — the same zero-copy completion the in-process transport gives a
    // sole consumer.
    let f = payload_frame(0, 1, 2, 0, &Payload::from(vec![2.5f64; 512]));
    let Payload::F64(buf) = frame_payload(&f).expect("decodes") else {
        panic!("wrong payload kind");
    };
    let ptr = buf.as_ptr();
    let owned = buf.into_vec();
    assert_eq!(
        owned.as_ptr(),
        ptr,
        "decoded Buf must be unique so into_vec reclaims the allocation"
    );

    let f = payload_frame(0, 1, 2, 0, &Payload::from(vec![7u64; 512]));
    let Payload::U64(buf) = frame_payload(&f).expect("decodes") else {
        panic!("wrong payload kind");
    };
    let ptr = buf.as_ptr();
    let owned = buf.into_vec();
    assert_eq!(owned.as_ptr(), ptr);
}

#[test]
fn ping_frames_roundtrip() {
    let f = Frame::control(FrameKind::Ping, 5);
    let g = chunked_roundtrip(&f, 7, 3);
    assert_eq!(g.kind, FrameKind::Ping);
    assert_eq!(g.src, 5);
    assert!(g.body.is_empty());
}

#[test]
fn mid_header_and_mid_body_eofs_are_typed_and_lossless() {
    // The two reset shapes the chaos layer injects: a stream cut inside the
    // fixed header, and one cut inside an f64 body. Both must come back as
    // `XmpiError::Truncated` (mapped to a dead peer by the socket reader),
    // and a complete frame *preceding* the cut must still decode — the torn
    // frame's bytes are dropped, never double-counted into an earlier or
    // later payload.
    let whole = payload_frame(1, 0, 9, 0, &Payload::from(vec![4.0f64, 5.0]));
    let torn = payload_frame(1, 0, 9, 0, &Payload::from(vec![6.0f64, 7.0, 8.0]));
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &whole).expect("vec write");
    let whole_len = bytes.len();
    write_frame(&mut bytes, &torn).expect("vec write");

    for cut in [whole_len + 11, whole_len + HEADER_LEN + 13] {
        let mut r: &[u8] = &bytes[..cut];
        let first = read_frame(&mut r)
            .expect("first frame intact")
            .expect("not EOF");
        let Payload::F64(b) = frame_payload(&first).expect("decodes") else {
            panic!("wrong payload kind");
        };
        assert_eq!(&b[..], &[4.0, 5.0], "preceding frame survives the cut");
        assert!(
            matches!(read_frame(&mut r), Err(XmpiError::Truncated { .. })),
            "cut at byte {cut} must be a typed mid-frame EOF"
        );
    }
}
