//! The deadlock-detection timeout is configurable through
//! `CONFLUX_RECV_TIMEOUT_MS`. This file is its own test process and holds
//! exactly one test, so setting the variable here cannot race another test;
//! the runtime parses and caches the value on first use.

use std::time::{Duration, Instant};
use xmpi::WaitPolicy;

#[test]
fn recv_timeout_env_is_honoured() {
    std::env::set_var("CONFLUX_RECV_TIMEOUT_MS", "150");
    let t0 = Instant::now();
    let out = xmpi::run(2, |c| {
        if c.rank() == 1 {
            // Wait on a message nobody ever sends: the default policy's
            // per-attempt timeout comes from the environment knob.
            let req = c.irecv(0, 99);
            let err = req
                .wait_timeout(WaitPolicy {
                    retries: 1,
                    ..WaitPolicy::default()
                })
                .expect_err("no sender: the wait must time out");
            // The diagnostics still name the stuck channel coordinates.
            (err.src as u64, err.tag, err.attempts as u64)
        } else {
            (0, 0, 0)
        }
    });
    let elapsed = t0.elapsed();
    assert_eq!(out.results[1], (0, 99, 2));
    assert!(
        elapsed < Duration::from_secs(30),
        "a 150 ms configured timeout must not wait out the 120 s default (took {elapsed:?})"
    );
}
