//! Wire-level chaos on the real socket mesh: every test here arms an
//! [`xharness::NetChaos`] plan (or breaks the launch configuration
//! outright) around worlds of real child processes, and checks the three
//! robustness contracts of the transport:
//!
//! * **torn frames are invisible** — a frame written in two pieces around
//!   a stall is reassembled by the reader; results, message counts, and
//!   byte ledgers match a fault-free run exactly;
//! * **fatal wire faults are typed** — a mid-frame connection reset or a
//!   silently hung rank becomes `RankDead` (via mid-frame-EOF
//!   classification or the heartbeat failure detector), never a panic and
//!   never an indefinite hang;
//! * **launch faults degrade** — refused dials and unspawnable children
//!   exhaust a bounded backoff schedule and surface
//!   [`XmpiError::LaunchFailed`] from every rank, with the world torn
//!   down, in seconds.
//!
//! The suite pins small deadlines through the `XMPI_*` environment knobs
//! (set once per process, inherited by the child ranks, and re-applied by
//! each child as it replays the test body).

use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

use xharness::{ConnectPlan, HangPlan, NetChaos, NetChaosConfig, ResetPlan};
use xmpi::XmpiError;

/// The socket backend re-executing the current test.
macro_rules! socket_backend {
    () => {
        xmpi::launch::socket_backend_for_test(xmpi::test_path!())
    };
}

/// Pin fast failure-detection deadlines, once per process (parent *and*
/// each re-executed child): a 10-dial connect budget (~0.8 s of backoff),
/// a 3 s handshake accept window, 50 ms heartbeats with suspicion at
/// 2.5 s. Every test calls this first, so the knobs are set before any
/// socket code caches them.
fn chaos_env() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        std::env::set_var("XMPI_CONNECT_RETRIES", "10");
        std::env::set_var("XMPI_HANDSHAKE_TIMEOUT_MS", "3000");
        std::env::set_var("XMPI_HEARTBEAT_MS", "50");
        std::env::set_var("XMPI_SUSPECT_MS", "2500");
    });
}

/// Torn writes must be observably benign: with every frame torn (prefix +
/// stall + suffix), results and the full byte ledger match the fault-free
/// socket run bit for bit — and no byte is dropped or double-counted.
#[test]
fn torn_frames_are_reassembled_exactly() {
    chaos_env();
    let program = |c: &xmpi::Comm| {
        let peer = 1 - c.rank();
        c.send_f64(peer, 3, &[c.rank() as f64 + 0.25; 7]);
        let got = c.recv_f64(peer, 3);
        let mut acc = vec![got.iter().sum::<f64>()];
        c.allreduce_sum(&mut acc);
        acc[0]
    };
    let clean = xmpi::with_backend(socket_backend!(), || xmpi::launch::run(2, program));
    let chaos = Arc::new(NetChaos::new(NetChaosConfig {
        seed: 5,
        torn_prob: 1.0,
        max_stall_us: 300,
    }));
    let torn = xmpi::with_backend(socket_backend!(), || {
        xharness::run_chaos(&chaos, || xmpi::launch::run(2, program))
    });
    assert_eq!(torn.results, clean.results);
    for (rank, (a, b)) in clean.stats.ranks.iter().zip(&torn.stats.ranks).enumerate() {
        assert_eq!(a.bytes_sent, b.bytes_sent, "rank {rank} sent drifted");
        assert_eq!(a.bytes_recv, b.bytes_recv, "rank {rank} recv drifted");
        assert_eq!(a.msgs_recv, b.msgs_recv, "rank {rank} msg count drifted");
    }
}

/// A planned mid-frame reset: rank 1's fifth payload frame to rank 0 is
/// cut short and the stream's write half closed. Rank 0 must classify the
/// mid-frame EOF as rank 1's death, keep every message delivered *before*
/// the cut consumable, count exactly those messages' bytes (the torn-off
/// frame contributes nothing — no partial delivery, no double count), and
/// the world must report `crashed == [1]`.
#[test]
fn mid_frame_reset_is_typed_and_lossless() {
    chaos_env();
    let chaos = Arc::new(
        NetChaos::new(NetChaosConfig {
            seed: 11,
            torn_prob: 0.0,
            max_stall_us: 1,
        })
        .with_reset(ResetPlan {
            src: 1,
            dst: 0,
            on_frame: 4,
        }),
    );
    let out = xmpi::with_backend(socket_backend!(), || {
        xharness::run_chaos(&chaos, || {
            xmpi::launch::run_ft(2, |c| {
                if c.rank() == 1 {
                    for i in 0..10u64 {
                        c.send_f64(0, i, &[i as f64]);
                    }
                    // The ack never comes: the reset kills this rank first,
                    // and the poisoned world fails this receive fast.
                    c.recv_f64(0, 99)[0]
                } else {
                    let mut got = 0u64;
                    for i in 0..10u64 {
                        match c.try_recv_f64(1, i) {
                            Ok(v) => {
                                assert_eq!(v, vec![i as f64]);
                                got += 1;
                            }
                            Err(_) => break,
                        }
                    }
                    got as f64
                }
            })
        })
    });
    assert_eq!(out.crashed, vec![1], "reset must surface as rank 1's death");
    // Frames 0..=3 were fully written before the cut; frame 4 died on the
    // wire; 5..=9 were dropped by the broken stream.
    assert_eq!(out.results[0], Ok(4.0));
    assert!(out.results[1].is_err(), "the reset rank cannot finish");
    assert_eq!(out.stats.ranks[0].msgs_recv, 4, "delivered-message count");
    assert_eq!(out.stats.ranks[0].bytes_recv, 4 * 8, "no torn-frame bytes");
}

/// A rank that goes silent without closing anything — no data, no `Fin`,
/// no heartbeats, process still alive — is only detectable by the failure
/// detector. With 50 ms heartbeats and 2.5 s suspicion, the survivors
/// must classify it dead and the whole world must wind down in seconds,
/// not block until the 120 s receive timeout.
#[test]
fn hung_rank_is_detected_by_heartbeat() {
    chaos_env();
    let chaos = Arc::new(
        NetChaos::new(NetChaosConfig {
            seed: 17,
            torn_prob: 0.0,
            max_stall_us: 1,
        })
        .with_hang(HangPlan {
            victim: 1,
            after_frames: 2,
        }),
    );
    let started = Instant::now();
    let out = xmpi::with_backend(socket_backend!(), || {
        xharness::run_chaos(&chaos, || {
            xmpi::launch::run_ft(2, |c| {
                if c.rank() == 1 {
                    for i in 0..5u64 {
                        c.send_f64(0, i, &[i as f64]);
                    }
                    // Unreachable ack: the hang latches at frame 2, and the
                    // gossiped death verdict fails this receive fast.
                    c.recv_f64(0, 99)[0]
                } else {
                    let mut got = 0u64;
                    for i in 0..5u64 {
                        match c.try_recv_f64(1, i) {
                            Ok(_) => got += 1,
                            Err(_) => break,
                        }
                    }
                    got as f64
                }
            })
        })
    });
    let elapsed = started.elapsed();
    assert_eq!(out.crashed, vec![1], "hung rank must be declared dead");
    assert_eq!(out.results[0], Ok(2.0), "frames before the hang delivered");
    assert!(out.results[1].is_err());
    assert!(
        elapsed < Duration::from_secs(60),
        "hang detection took {elapsed:?} — the failure detector did not fire \
         (a blocked receive would ride the 120 s timeout instead)"
    );
}

/// A listener that refuses more dials than the retry budget: the dialing
/// rank must exhaust its capped backoff schedule and every rank must
/// surface a typed `LaunchFailed` — no panic, no indefinite hang, and the
/// whole failure within the pinned handshake deadline.
#[test]
fn persistent_connect_refusal_is_typed() {
    chaos_env();
    let chaos = Arc::new(
        NetChaos::new(NetChaosConfig {
            seed: 23,
            torn_prob: 0.0,
            max_stall_us: 1,
        })
        .with_connect(ConnectPlan {
            dst: 0,
            refuse_first: u64::MAX,
            delay_us: 0,
        }),
    );
    let started = Instant::now();
    let out = xmpi::with_backend(socket_backend!(), || {
        xharness::run_chaos(&chaos, || xmpi::launch::run_ft(2, |c| c.rank() as u64))
    });
    let elapsed = started.elapsed();
    for (rank, res) in out.results.iter().enumerate() {
        assert!(
            matches!(res, Err(XmpiError::LaunchFailed { .. })),
            "rank {rank}: expected LaunchFailed, got {res:?}"
        );
    }
    assert!(
        out.crashed.is_empty(),
        "a world that never formed has no crashed ranks to restart"
    );
    assert!(
        elapsed < Duration::from_secs(60),
        "launch failure took {elapsed:?} — backoff or handshake deadline unbounded"
    );
}

/// Transient refusals inside the retry budget: three refused dials and a
/// delayed fourth must be absorbed by the backoff schedule — the mesh
/// converges and the program completes normally.
#[test]
fn flaky_connects_recover_within_budget() {
    chaos_env();
    let chaos = Arc::new(
        NetChaos::new(NetChaosConfig {
            seed: 29,
            torn_prob: 0.0,
            max_stall_us: 1,
        })
        .with_connect(ConnectPlan {
            dst: 0,
            refuse_first: 3,
            delay_us: 400,
        }),
    );
    let out = xmpi::with_backend(socket_backend!(), || {
        xharness::run_chaos(&chaos, || {
            xmpi::launch::run(2, |c| {
                let mut v = vec![(c.rank() + 1) as f64];
                c.allreduce_sum(&mut v);
                v[0]
            })
        })
    });
    assert_eq!(out.results, vec![3.0, 3.0]);
}

/// A child binary that cannot be spawned at all: the supervisor must burn
/// its bounded spawn retries and degrade to all-rank `LaunchFailed` with
/// an *empty* crashed roster (nothing to restart — a fault-tolerant
/// driver must see a typed error, not loop respawning the unspawnable).
#[test]
fn unspawnable_child_degrades_to_typed_launch_failure() {
    chaos_env();
    let backend = xmpi::Backend::Socket(xmpi::SocketCfg {
        exe: "/nonexistent/xmpi-no-such-binary".into(),
        args: vec![],
    });
    let started = Instant::now();
    let out = xmpi::with_backend(backend, || xmpi::launch::run_ft(2, |c| c.rank() as u64));
    let elapsed = started.elapsed();
    for (rank, res) in out.results.iter().enumerate() {
        assert!(
            matches!(res, Err(XmpiError::LaunchFailed { .. })),
            "rank {rank}: expected LaunchFailed, got {res:?}"
        );
    }
    assert!(out.crashed.is_empty());
    assert!(
        elapsed < Duration::from_secs(30),
        "spawn failure took {elapsed:?} — the retry schedule is unbounded"
    );
}
