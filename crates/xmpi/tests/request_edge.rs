//! Edge-case tests for the nonblocking request machinery: completion
//! caching, empty batches, interleaved collective requests, and the
//! retry/timeout policy under injected message drops.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;
use xmpi::{run, run_hooked, wait_all, Payload, Request, SchedHooks, SendFate, WaitPolicy};

/// `test()` before the message exists is `false` and must not consume
/// anything; after success it is sticky (the done cache), and the final
/// `wait` returns the cached payload — with the receive accounted exactly
/// once.
#[test]
fn test_caches_completion_for_wait() {
    let out = run(2, |c| {
        if c.rank() == 0 {
            let ready = c.recv_u64(1, 1);
            assert_eq!(ready, vec![7]);
            c.send_f64(1, 2, &[3.5, 4.5]);
            vec![]
        } else {
            let mut req = c.irecv(0, 2);
            assert!(!req.test(), "nothing sent yet");
            c.send_u64(0, 1, &[7]);
            while !req.test() {
                std::thread::yield_now();
            }
            // Sticky after success, and wait() must hand over the cached
            // payload without matching (there is no second message).
            assert!(req.test());
            assert!(req.test());
            req.wait_f64()
        }
    });
    assert_eq!(out.results[1], vec![3.5, 4.5]);
    // One 2-element f64 message: accounted once, not per test() poll.
    assert_eq!(out.stats.ranks[1].bytes_recv, 16);
}

/// `wait_all` over an empty batch is a no-op, not a hang or a panic.
#[test]
fn wait_all_over_empty_batch() {
    let out = run(1, |_c| {
        let reqs: Vec<Request> = Vec::new();
        wait_all(reqs).len()
    });
    assert_eq!(out.results[0], 0);
}

/// `wait_all` mixing completed sends and pending receives yields payloads
/// positionally, `None` for the sends.
#[test]
fn wait_all_mixes_sends_and_receives() {
    let out = run(2, |c| {
        if c.rank() == 0 {
            let reqs: Vec<Request> = vec![
                c.isend_f64(1, 0, &[1.0]).into(),
                c.irecv(1, 1).into(),
                c.isend_f64(1, 0, &[2.0]).into(),
            ];
            let done = wait_all(reqs);
            assert!(done[0].is_none());
            assert!(done[2].is_none());
            match &done[1] {
                Some(Payload::F64(v)) => v.to_vec(),
                other => panic!("expected f64 payload, got {other:?}"),
            }
        } else {
            c.send_f64(0, 1, &[9.0]);
            let a = c.recv_f64(0, 0);
            let b = c.recv_f64(0, 0);
            vec![a[0], b[0]]
        }
    });
    assert_eq!(out.results[0], vec![9.0]);
    assert_eq!(out.results[1], vec![1.0, 2.0]);
}

/// Two nonblocking broadcasts with *different roots* in flight at once,
/// completed in reverse post order on every rank — the sequence-number
/// tagging must keep the trees from stealing each other's messages.
#[test]
fn interleaved_ibcast_roots_complete_in_reverse() {
    let out = run(4, |c| {
        let from0 = c.ibcast_f64(0, 0, vec![10.0, f64::from(c.rank() as u32)]);
        let from1 = c.ibcast_f64(1, 1, vec![20.0, f64::from(c.rank() as u32)]);
        // Reverse completion order: the root-1 broadcast first.
        let b = from1.wait_f64();
        let a = from0.wait_f64();
        (a, b)
    });
    for r in 0..4 {
        let (a, b) = &out.results[r];
        assert_eq!(a, &vec![10.0, 0.0], "rank {r}: root-0 payload");
        assert_eq!(b, &vec![20.0, 1.0], "rank {r}: root-1 payload");
    }
}

/// `wait_timeout`: `Ok` when the message arrives within the policy, `Err`
/// carrying the attempt count and the number of unmatched messages pending
/// when nothing matches — and the cancelled channel stays intact for a
/// later blocking receive.
#[test]
fn wait_timeout_reports_attempts_and_pending() {
    let out = run(2, |c| {
        if c.rank() == 0 {
            // Decoy on tag 8 sits unmatched in rank 1's mailbox during the
            // timed-out wait on tag 9; tag 7 is the ordering handshake
            // (program order on this thread ⇒ mailbox order over there).
            c.send_f64(1, 8, &[1.0, 2.0, 3.0]);
            c.send_u64(1, 7, &[1]);
            let go = c.recv_u64(1, 1);
            assert_eq!(go, vec![2]);
            c.send_f64(1, 9, &[42.0]);
            vec![]
        } else {
            c.recv_u64(0, 7);
            let req = c.irecv(0, 9);
            let policy = WaitPolicy::timeout(Duration::from_millis(5)).with_retries(2);
            let err = req.wait_timeout(policy).unwrap_err();
            assert_eq!(err.src, 0);
            assert_eq!(err.tag, 9);
            assert_eq!(err.attempts, 3, "1 + retries attempts");
            assert_eq!(err.pending, 1, "the tag-8 decoy was pending");
            // Now let the message exist and take it with a fresh receive:
            // the timed-out request cancelled cleanly.
            c.send_u64(0, 1, &[2]);
            let late = c.recv_f64(0, 9);
            let decoy = c.recv_f64(0, 8);
            assert_eq!(decoy, vec![1.0, 2.0, 3.0]);
            late
        }
    });
    assert_eq!(out.results[1], vec![42.0]);
}

/// An already-matched request returns `Ok` from `wait_timeout` without
/// another matching attempt, even under a zero-duration policy.
#[test]
fn wait_timeout_on_completed_request_is_immediate() {
    let out = run(2, |c| {
        if c.rank() == 0 {
            c.send_f64(1, 4, &[8.0]);
            vec![]
        } else {
            let mut req = c.irecv(0, 4);
            while !req.test() {
                std::thread::yield_now();
            }
            let payload = req
                .wait_timeout(WaitPolicy::timeout(Duration::ZERO))
                .expect("cached completion cannot time out");
            match payload {
                Payload::F64(v) => v.into_vec(),
                other => panic!("expected f64, got {other:?}"),
            }
        }
    });
    assert_eq!(out.results[1], vec![8.0]);
}

/// Drops the first transmission of every message on the victim tag; the
/// simulated retransmission surfaces it `retransmit_after` later.
struct DropFirstOnTag {
    victim_tag: u64,
    retransmit_after: Duration,
    drops: AtomicUsize,
}

impl SchedHooks for DropFirstOnTag {
    fn send_fate(&self, _src: usize, _dst: usize, _ctx: u64, tag: u64, _bytes: u64) -> SendFate {
        if tag == self.victim_tag {
            self.drops.fetch_add(1, Ordering::Relaxed);
            SendFate::Drop {
                retransmit_after: self.retransmit_after,
            }
        } else {
            SendFate::Deliver
        }
    }
}

/// A `Drop`-fated message makes short-timeout attempts fail until the
/// retransmission lands; a retry-tolerant [`WaitPolicy`] rides it out and
/// completes with the payload intact.
#[test]
fn drop_fate_is_survived_by_retry_policy() {
    let hooks = Arc::new(DropFirstOnTag {
        victim_tag: 6,
        retransmit_after: Duration::from_millis(20),
        drops: AtomicUsize::new(0),
    });
    let out = run_hooked(2, hooks.clone(), |c| {
        if c.rank() == 0 {
            c.send_f64(1, 6, &[5.0, 6.0]);
            vec![]
        } else {
            let req = c.irecv(0, 6);
            // Each attempt is far shorter than the retransmission delay, so
            // only the retry loop can complete this.
            let policy = WaitPolicy::timeout(Duration::from_millis(2)).with_retries(50);
            match req.wait_timeout(policy).expect("retries outlast the drop") {
                Payload::F64(v) => v.into_vec(),
                other => panic!("expected f64, got {other:?}"),
            }
        }
    });
    assert_eq!(out.results[1], vec![5.0, 6.0]);
    assert_eq!(
        hooks.drops.load(Ordering::Relaxed),
        1,
        "one transmission dropped"
    );
    // Byte accounting is once per logical message, not per transmission.
    assert_eq!(out.stats.ranks[0].bytes_sent, 16);
    assert_eq!(out.stats.ranks[1].bytes_recv, 16);
}
