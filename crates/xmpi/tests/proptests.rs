//! Property-based tests of the runtime: collectives must agree with their
//! sequential definitions for arbitrary group sizes, roots and payloads,
//! and byte accounting must balance globally.

use proptest::prelude::*;
use xmpi::run;

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn bcast_delivers_root_payload(p in 1usize..10, root_pick in 0usize..10, len in 0usize..50, seed in 0u64..1000) {
        let root = root_pick % p;
        let payload: Vec<f64> = (0..len).map(|i| (seed as f64) + i as f64).collect();
        let expect = payload.clone();
        let out = run(p, move |c| {
            let mut buf = if c.rank() == root { payload.clone() } else { vec![] };
            c.bcast_f64(root, &mut buf);
            buf
        });
        for r in out.results {
            prop_assert_eq!(&r, &expect);
        }
    }

    #[test]
    fn reduce_equals_sequential_sum(p in 1usize..10, root_pick in 0usize..10, len in 1usize..20) {
        let root = root_pick % p;
        let out = run(p, move |c| {
            let mut buf: Vec<f64> = (0..len).map(|i| (c.rank() * 100 + i) as f64).collect();
            c.reduce_sum_f64(root, &mut buf);
            buf
        });
        for i in 0..len {
            let expect: f64 = (0..p).map(|r| (r * 100 + i) as f64).sum();
            prop_assert!((out.results[root][i] - expect).abs() < 1e-9);
        }
    }

    #[test]
    fn allreduce_equals_reduce_everywhere(p in 1usize..10, len in 1usize..20) {
        let out = run(p, move |c| {
            let mut buf: Vec<f64> = (0..len).map(|i| ((c.rank() + 1) * (i + 1)) as f64).collect();
            c.allreduce_sum(&mut buf);
            buf
        });
        for i in 0..len {
            let expect: f64 = (0..p).map(|r| ((r + 1) * (i + 1)) as f64).sum();
            for res in &out.results {
                prop_assert!((res[i] - expect).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn allgather_collects_everything_in_order(p in 1usize..9, base_len in 0usize..8) {
        let out = run(p, move |c| {
            let mine: Vec<f64> = (0..base_len + c.rank()).map(|i| (c.rank() * 1000 + i) as f64).collect();
            c.allgather_f64(&mine)
        });
        for res in &out.results {
            prop_assert_eq!(res.len(), p);
            for (src, piece) in res.iter().enumerate() {
                prop_assert_eq!(piece.len(), base_len + src);
                for (i, &x) in piece.iter().enumerate() {
                    prop_assert_eq!(x, (src * 1000 + i) as f64);
                }
            }
        }
    }

    #[test]
    fn bytes_sent_equal_bytes_received_globally(p in 2usize..8, len in 1usize..64, rounds in 1usize..4) {
        // Arbitrary ring traffic: global sent must equal global received.
        let out = run(p, move |c| {
            for round in 0..rounds {
                let dst = (c.rank() + 1) % c.size();
                let src = (c.rank() + c.size() - 1) % c.size();
                c.send_f64(dst, round as u64, &vec![0.5; len]);
                c.recv_f64(src, round as u64);
            }
        });
        prop_assert_eq!(out.stats.total_bytes_sent(), out.stats.total_bytes_recv());
        prop_assert_eq!(out.stats.total_bytes_sent() as usize, p * rounds * len * 8);
    }

    #[test]
    fn byte_accounting_balances_per_phase(p in 2usize..8, len in 1usize..48, phases in 1usize..5) {
        // Phased ring traffic with a barrier fencing each phase: every
        // byte of phase k is sent *and* received while both endpoints are
        // in phase k, so the per-phase ledgers must balance exactly, and
        // their totals must add up to the global ledgers.
        let out = run(p, move |c| {
            for ph in 0..phases {
                c.set_phase(&format!("ph{ph}"));
                let dst = (c.rank() + 1) % c.size();
                let src = (c.rank() + c.size() - 1) % c.size();
                c.send_f64(dst, ph as u64, &vec![1.0; len + ph]);
                c.recv_f64(src, ph as u64);
                c.barrier();
            }
        });
        let totals = out.stats.phase_totals();
        let mut sum_sent = 0u64;
        for ph in 0..phases {
            let &(sent, recv) = totals.get(&format!("ph{ph}")).expect("phase recorded");
            prop_assert_eq!(sent, recv, "phase ph{} unbalanced", ph);
            prop_assert_eq!(sent as usize, p * (len + ph) * 8);
            sum_sent += sent;
        }
        // Barrier messages are zero-byte, so the phase ledgers partition
        // the global byte count (slot "" stays empty: traffic starts after
        // the first set_phase).
        prop_assert_eq!(sum_sent, out.stats.total_bytes_sent());
        prop_assert_eq!(out.stats.total_bytes_sent(), out.stats.total_bytes_recv());
    }

    #[test]
    fn isend_wait_all_matches_blocking_sends(p in 2usize..8, len in 1usize..32, rounds in 1usize..4) {
        // The same ring program twice: `isend` + `wait_all` must deliver
        // the same payloads in the same per-(src, tag) order as blocking
        // `send_f64`, and move exactly the same bytes and messages.
        let program = move |c: &xmpi::Comm, nonblocking: bool| -> Vec<Vec<f64>> {
            let dst = (c.rank() + 1) % c.size();
            let src = (c.rank() + c.size() - 1) % c.size();
            let payload = |round: usize| -> Vec<f64> {
                (0..len).map(|i| (c.rank() * 1_000 + round * 100 + i) as f64).collect()
            };
            if nonblocking {
                let reqs: Vec<xmpi::Request> = (0..rounds)
                    .map(|round| c.isend_f64(dst, 9, &payload(round)).into())
                    .collect();
                xmpi::wait_all(reqs);
            } else {
                for round in 0..rounds {
                    c.send_f64(dst, 9, &payload(round));
                }
            }
            (0..rounds).map(|_| c.recv_f64(src, 9)).collect()
        };
        let nb = run(p, move |c| program(c, true));
        let bl = run(p, move |c| program(c, false));
        prop_assert_eq!(&nb.results, &bl.results);
        prop_assert_eq!(nb.stats.total_bytes_sent(), bl.stats.total_bytes_sent());
        prop_assert_eq!(nb.stats.total_msgs(), bl.stats.total_msgs());
    }

    #[test]
    fn byte_accounting_balances_under_nonblocking_traffic(p in 2usize..8, len in 1usize..48, phases in 1usize..4) {
        // Ring traffic driven entirely through requests: the receive is
        // posted before the send, send bytes are accounted at post time and
        // receive bytes at wait time, and every ledger must still balance
        // per phase and globally.
        let out = run(p, move |c| {
            for ph in 0..phases {
                c.set_phase(&format!("nb{ph}"));
                let dst = (c.rank() + 1) % c.size();
                let src = (c.rank() + c.size() - 1) % c.size();
                let recv = c.irecv(src, ph as u64);
                let send = c.isend_f64(dst, ph as u64, &vec![2.0; len + ph]);
                let got = recv.wait_f64();
                send.wait();
                assert_eq!(got.len(), len + ph);
                c.barrier();
            }
        });
        let totals = out.stats.phase_totals();
        let mut sum = 0u64;
        for ph in 0..phases {
            let &(sent, recv) = totals.get(&format!("nb{ph}")).expect("phase recorded");
            prop_assert_eq!(sent, recv, "phase nb{} unbalanced", ph);
            prop_assert_eq!(sent as usize, p * (len + ph) * 8);
            sum += sent;
        }
        prop_assert_eq!(sum, out.stats.total_bytes_sent());
        prop_assert_eq!(out.stats.total_bytes_sent(), out.stats.total_bytes_recv());
    }

    #[test]
    fn scatter_then_gather_round_trips(p in 1usize..9, len in 1usize..10, root_pick in 0usize..9) {
        let root = root_pick % p;
        let out = run(p, move |c| {
            let pieces = (c.rank() == root).then(|| {
                (0..p).map(|r| vec![r as f64; len]).collect::<Vec<_>>()
            });
            let mine = c.scatter_f64(root, pieces);
            c.gather_f64(root, &mine)
        });
        let gathered = out.results[root].as_ref().unwrap();
        for (r, piece) in gathered.iter().enumerate() {
            prop_assert_eq!(piece, &vec![r as f64; len]);
        }
    }
}
