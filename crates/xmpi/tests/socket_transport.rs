//! End-to-end tests of the multi-process socket backend: every test here
//! launches real child processes (re-executing this test binary filtered to
//! itself) joined by a UNIX-socket mesh, and checks that results, byte
//! accounting, subcommunicators, nonblocking requests, and the fault domain
//! behave exactly as on the in-process backend.

use xmpi::wire::encode_vec;
use xmpi::{Comm, XmpiError};

/// The socket backend re-executing the current test.
macro_rules! socket_backend {
    () => {
        xmpi::launch::socket_backend_for_test(xmpi::test_path!())
    };
}

#[test]
fn pingpong_over_sockets() {
    let out = xmpi::with_backend(socket_backend!(), || {
        xmpi::launch::run(2, |c| {
            if c.rank() == 0 {
                c.send_f64(1, 7, &[1.5, -0.0, 3.25]);
                c.send_u64(1, 8, &[10, 20, 30]);
                c.recv_f64(1, 9)
            } else {
                let f = c.recv_f64(0, 7);
                let u = c.recv_u64(0, 8);
                assert_eq!(u, vec![10, 20, 30]);
                let echoed: Vec<f64> = f.iter().map(|x| x * 2.0).collect();
                c.send_f64(0, 9, &echoed);
                f
            }
        })
    });
    assert_eq!(out.results[0], vec![3.0, 0.0, 6.5]);
    assert_eq!(out.results[1][0].to_bits(), 1.5f64.to_bits());
    assert_eq!(out.results[1][1].to_bits(), (-0.0f64).to_bits());
    // 3+3 elements one way, 3 back: every byte crossed a real socket.
    assert_eq!(out.stats.total_bytes_sent(), 9 * 8);
    assert_eq!(out.stats.total_bytes_recv(), 9 * 8);
}

#[test]
fn collectives_match_local_backend_exactly() {
    // The conformance property in miniature: the same SPMD program on
    // threads and on processes must produce bit-identical results and
    // identical per-rank, per-phase, per-collective byte ledgers.
    let program = |c: &Comm| -> (Vec<f64>, Vec<Vec<f64>>) {
        c.set_phase("bcast");
        let mut buf = if c.rank() == 1 {
            vec![0.125, 2.5, -7.75, 1.0 / 3.0]
        } else {
            vec![]
        };
        c.bcast_f64(1, &mut buf);
        c.set_phase("reduce");
        let mut acc: Vec<f64> = buf.iter().map(|x| x * (c.rank() + 1) as f64).collect();
        c.allreduce_sum(&mut acc);
        c.set_phase("gather");
        let mine = vec![c.rank() as f64; 3];
        let all = c.allgather_f64(&mine);
        c.barrier();
        (acc, all)
    };
    let local = xmpi::launch::run(4, program);
    let socket = xmpi::with_backend(socket_backend!(), || xmpi::launch::run(4, program));

    for (l, s) in local.results.iter().zip(&socket.results) {
        assert_eq!(
            encode_vec(l),
            encode_vec(s),
            "results must be bit-identical"
        );
    }
    for (rank, (l, s)) in local
        .stats
        .ranks
        .iter()
        .zip(&socket.stats.ranks)
        .enumerate()
    {
        assert_eq!(
            encode_vec(l),
            encode_vec(s),
            "rank {rank} traffic ledger diverged between backends"
        );
    }
}

#[test]
fn subcommunicators_over_sockets() {
    let grid = xmpi::Grid2::new(2, 2);
    let out = xmpi::with_backend(socket_backend!(), || {
        xmpi::launch::run(4, move |c| {
            let (i, j) = grid.coords(c.rank());
            // Row broadcast from column 0, then column sum.
            let row = c.subcomm(1, &grid.row_members(i));
            let mut buf = if j == 0 {
                vec![(10 * i) as f64]
            } else {
                vec![]
            };
            row.bcast_f64(0, &mut buf);
            let col = c.subcomm(2, &grid.col_members(j));
            let mut acc = vec![buf[0] + j as f64];
            col.allreduce_sum(&mut acc);
            acc[0]
        })
    });
    // Column j sums (0 + j) + (10 + j) over its two rows.
    assert_eq!(out.results, vec![10.0, 12.0, 10.0, 12.0]);
}

#[test]
fn nonblocking_requests_over_sockets() {
    let out = xmpi::with_backend(socket_backend!(), || {
        xmpi::launch::run(3, |c| {
            let dst = (c.rank() + 1) % c.size();
            let src = (c.rank() + c.size() - 1) % c.size();
            let recv = c.irecv(src, 4);
            let send = c.isend_f64(dst, 4, &[c.rank() as f64; 16]);
            let got = recv.wait_f64();
            send.wait();
            got.iter().sum::<f64>()
        })
    });
    assert_eq!(out.results, vec![32.0, 0.0, 16.0]);
}

#[test]
fn two_socket_worlds_in_one_test() {
    // A child targeting the second world must replay the first one locally
    // (deterministically) to reach its launch site with the right inputs.
    let first = xmpi::with_backend(socket_backend!(), || {
        xmpi::launch::run(2, |c| {
            let mut v = vec![(c.rank() + 3) as f64];
            c.allreduce_sum(&mut v);
            v[0]
        })
    });
    assert_eq!(first.results, vec![7.0, 7.0]);
    let offset = first.results[0];
    let second = xmpi::with_backend(socket_backend!(), || {
        xmpi::launch::run(2, move |c| {
            let mut v = vec![offset + c.rank() as f64];
            c.allreduce_sum(&mut v);
            v[0]
        })
    });
    assert_eq!(second.results, vec![15.0, 15.0]);
}

/// Kills rank 1 at its second send, deterministically, on any backend.
struct CrashSecondSend(std::sync::atomic::AtomicU32);

impl xmpi::SchedHooks for CrashSecondSend {
    fn crash_fate(&self, src: usize, _dst: usize, _ctx: u64, _tag: u64) -> xmpi::CrashFate {
        if src == 1 && self.0.fetch_add(1, std::sync::atomic::Ordering::SeqCst) == 1 {
            xmpi::CrashFate::Crash
        } else {
            xmpi::CrashFate::Survive
        }
    }
}

#[test]
fn injected_crash_surfaces_rank_dead() {
    // The hooks arm inside the closure, so the child process re-arms the
    // identical decision stream when it replays the test body.
    let out = xmpi::with_backend(socket_backend!(), || {
        xmpi::with_hooks(
            std::sync::Arc::new(CrashSecondSend(std::sync::atomic::AtomicU32::new(0))),
            || {
                xmpi::launch::run_ft(3, |c| {
                    // Everyone sends two rounds to rank 0; rank 1 dies at
                    // its second send.
                    for round in 0..2u64 {
                        if c.rank() != 0 {
                            c.send_f64(0, round, &[c.rank() as f64]);
                        } else {
                            for src in 1..3 {
                                let _ = c.try_recv_f64(src, round);
                            }
                        }
                    }
                    c.rank() as u64
                })
            },
        )
    });
    assert_eq!(out.crashed, vec![1]);
    assert!(matches!(
        out.results[1],
        Err(XmpiError::RankDead { rank: 1 })
    ));
    assert_eq!(out.results[2], Ok(2));
}

#[test]
fn hard_killed_child_is_rank_dead() {
    // Process-level fault: rank 2's child dies with no unwind, no Fin, no
    // shipped result — the real "node failure" the in-process backend can
    // only approximate. The parent must map it to RankDead; the peers see
    // EOF-without-Fin and keep working with each other.
    let out = xmpi::with_backend(socket_backend!(), || {
        xmpi::launch::run_ft(3, |c| {
            if c.rank() == 2 {
                // Wait for both survivors to finish their exchange before
                // dying, so their results are deterministic (a blocked
                // receive in a poisoned world fails fast by design). Only
                // ever reached inside a child process.
                assert!(xmpi::launch::is_child());
                let _ = c.recv_f64(0, 6);
                let _ = c.recv_f64(1, 6);
                std::process::abort();
            }
            // Ranks 0 and 1 only talk to each other and finish normally.
            let peer = 1 - c.rank();
            c.send_f64(peer, 5, &[c.rank() as f64 + 0.5]);
            let got = c.recv_f64(peer, 5)[0];
            c.send_f64(2, 6, &[1.0]);
            got
        })
    });
    assert_eq!(out.crashed, vec![2]);
    assert!(matches!(
        out.results[2],
        Err(XmpiError::RankDead { rank: 2 })
    ));
    assert_eq!(out.results[0], Ok(1.5));
    assert_eq!(out.results[1], Ok(0.5));
}

#[test]
fn rma_windows_refuse_socket_backend() {
    // One-sided windows mutate remote buffers through shared memory; the
    // socket backend cannot support them and must say so loudly instead of
    // silently misbehaving. The panic happens inside a child process, which
    // the parent re-raises as a child-panic error.
    let caught = std::panic::catch_unwind(|| {
        xmpi::with_backend(socket_backend!(), || {
            xmpi::launch::run(2, |c| {
                let win = c.window(1, 4);
                win.fence();
            })
        })
    });
    assert!(caught.is_err(), "RMA over sockets must fail loudly");
}
