//! Disjoint Access Array Programs (paper §2.2).
//!
//! A DAAP is a list of statements, each enclosed in a loop nest:
//!
//! ```text
//! for ψ¹ ∈ D¹, for ψ² ∈ D²(ψ¹), …:
//!     S:  A₀[φ₀(ψ)] ← f(A₁[φ₁(ψ)], …, A_m[φ_m(ψ)])
//! ```
//!
//! Each access-function vector `φⱼ` names, per array dimension, one of the
//! iteration variables. The *access dimension* `dim(Aⱼ(φⱼ))` is the number
//! of **distinct** iteration variables in `φⱼ` — the quantity driving the
//! data-reuse analysis (e.g. `A[k,k]` in LU's S1 has access dimension 1
//! although the array is 2-dimensional).

use std::collections::BTreeSet;

/// An array access: the array's name plus one iteration-variable name per
/// array dimension.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AccessFn {
    /// Array name.
    pub array: String,
    /// Iteration-variable name addressing each array dimension.
    pub index: Vec<String>,
}

impl AccessFn {
    /// Convenience constructor: `AccessFn::new("A", &["i", "k"])`.
    pub fn new(array: &str, index: &[&str]) -> Self {
        AccessFn {
            array: array.to_string(),
            index: index.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The access dimension: number of distinct iteration variables in the
    /// access-function vector (§2.2).
    pub fn access_dim(&self) -> usize {
        self.index.iter().collect::<BTreeSet<_>>().len()
    }

    /// The distinct iteration variables, in first-appearance order.
    pub fn distinct_vars(&self) -> Vec<&str> {
        let mut seen = Vec::new();
        for v in &self.index {
            if !seen.contains(&v.as_str()) {
                seen.push(v.as_str());
            }
        }
        seen
    }
}

/// One statement of a DAAP.
#[derive(Debug, Clone)]
pub struct Statement {
    /// Statement label (e.g. `"S2"`).
    pub name: String,
    /// Iteration variables of the enclosing loop nest, outermost first.
    pub loop_vars: Vec<String>,
    /// The output access `A₀[φ₀(ψ)]`.
    pub output: AccessFn,
    /// The input accesses `A₁[φ₁(ψ)] … A_m[φ_m(ψ)]`.
    pub inputs: Vec<AccessFn>,
}

impl Statement {
    /// Loop-nest depth `l`.
    pub fn depth(&self) -> usize {
        self.loop_vars.len()
    }

    /// Check the *disjoint access* property within this statement: no two
    /// input accesses may reference the same array with access functions
    /// that could alias (we require distinct arrays or provably different
    /// index vectors).
    pub fn check_disjoint(&self) -> bool {
        for (i, a) in self.inputs.iter().enumerate() {
            for b in self.inputs.iter().skip(i + 1) {
                if a.array == b.array && a.index == b.index {
                    return false;
                }
            }
        }
        true
    }
}

/// A whole DAAP: a sequence of statements (data dependencies between them
/// arise from shared arrays, handled by the §4 reuse analysis).
#[derive(Debug, Clone)]
pub struct Program {
    /// The statements, in program order.
    pub statements: Vec<Statement>,
}

/// The LU factorization DAAP of Figure 3 (no pivoting):
///
/// ```text
/// for k, for i > k:           S1: A[i,k] ← A[i,k] / A[k,k]
/// for k, for i > k, j > k:    S2: A[i,j] ← A[i,j] − A[i,k]·A[k,j]
/// ```
pub fn lu_program() -> Program {
    Program {
        statements: vec![
            Statement {
                name: "S1".into(),
                loop_vars: vec!["k".into(), "i".into()],
                output: AccessFn::new("A", &["i", "k"]),
                inputs: vec![
                    AccessFn::new("A", &["i", "k"]),
                    AccessFn::new("A", &["k", "k"]),
                ],
            },
            Statement {
                name: "S2".into(),
                loop_vars: vec!["k".into(), "i".into(), "j".into()],
                output: AccessFn::new("A", &["i", "j"]),
                inputs: vec![
                    AccessFn::new("A", &["i", "j"]),
                    AccessFn::new("A", &["i", "k"]),
                    AccessFn::new("A", &["k", "j"]),
                ],
            },
        ],
    }
}

/// The Cholesky factorization DAAP of Listing 1.
pub fn cholesky_program() -> Program {
    Program {
        statements: vec![
            Statement {
                name: "S1".into(),
                loop_vars: vec!["k".into()],
                output: AccessFn::new("L", &["k", "k"]),
                inputs: vec![AccessFn::new("L", &["k", "k"])],
            },
            Statement {
                name: "S2".into(),
                loop_vars: vec!["k".into(), "i".into()],
                output: AccessFn::new("L", &["i", "k"]),
                inputs: vec![
                    AccessFn::new("L", &["i", "k"]),
                    AccessFn::new("L", &["k", "k"]),
                ],
            },
            Statement {
                name: "S3".into(),
                loop_vars: vec!["k".into(), "i".into(), "j".into()],
                output: AccessFn::new("L", &["i", "j"]),
                inputs: vec![
                    AccessFn::new("L", &["i", "j"]),
                    AccessFn::new("L", &["i", "k"]),
                    AccessFn::new("L", &["j", "k"]),
                ],
            },
        ],
    }
}

/// Classic matrix multiplication `C[i,j] += A[i,k]·B[k,j]` — the motivating
/// kernel for X-partitioning (Kwasniewski et al., SC'19).
pub fn mmm_program() -> Program {
    Program {
        statements: vec![Statement {
            name: "S".into(),
            loop_vars: vec!["i".into(), "j".into(), "k".into()],
            output: AccessFn::new("C", &["i", "j"]),
            inputs: vec![
                AccessFn::new("C", &["i", "j"]),
                AccessFn::new("A", &["i", "k"]),
                AccessFn::new("B", &["k", "j"]),
            ],
        }],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn access_dimension_counts_distinct_variables() {
        // The paper's own example: A[k,k] has array dim 2, access dim 1.
        let a = AccessFn::new("A", &["k", "k"]);
        assert_eq!(a.index.len(), 2);
        assert_eq!(a.access_dim(), 1);
        assert_eq!(AccessFn::new("A", &["i", "k"]).access_dim(), 2);
        assert_eq!(AccessFn::new("T", &["i", "j", "k"]).access_dim(), 3);
    }

    #[test]
    fn lu_program_shape_matches_figure_3() {
        let p = lu_program();
        assert_eq!(p.statements.len(), 2);
        let s1 = &p.statements[0];
        assert_eq!(s1.depth(), 2);
        assert_eq!(s1.inputs[1].access_dim(), 1, "A[k,k] is the reuse source");
        let s2 = &p.statements[1];
        assert_eq!(s2.depth(), 3);
        assert!(s2.inputs.iter().all(|a| a.access_dim() == 2));
        assert!(s1.check_disjoint() && s2.check_disjoint());
    }

    #[test]
    fn cholesky_has_three_statements() {
        let p = cholesky_program();
        assert_eq!(p.statements.len(), 3);
        assert_eq!(p.statements[0].depth(), 1);
        assert_eq!(p.statements[2].depth(), 3);
    }

    #[test]
    fn disjointness_detects_aliasing() {
        let bad = Statement {
            name: "bad".into(),
            loop_vars: vec!["i".into()],
            output: AccessFn::new("A", &["i"]),
            inputs: vec![AccessFn::new("B", &["i"]), AccessFn::new("B", &["i"])],
        };
        assert!(!bad.check_disjoint());
    }

    #[test]
    fn distinct_vars_order_is_stable() {
        let a = AccessFn::new("A", &["k", "i", "k"]);
        assert_eq!(a.distinct_vars(), vec!["k", "i"]);
    }
}
