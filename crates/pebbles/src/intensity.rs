//! Computational intensity (paper §2.3.4) and the out-degree-one bound
//! (Lemma 6).
//!
//! The computational intensity `ρ` of a subcomputation is the ratio of
//! vertices computed to I/O performed; `Q ≥ |V|/ρ_max` (Lemma 1). Lemma 6
//! bounds `ρ` for cDAGs where every compute vertex consumes at least `u`
//! single-use inputs: `ρ ≤ 1/u`. LU's and Cholesky's division statements
//! have exactly this shape (each consumes the previous version of its own
//! output element, which is referenced nowhere else), giving `ρ_S1, ρ_S2 ≤ 1`.

use crate::cdag::Cdag;

/// Computational intensity of a subcomputation: vertices computed per I/O,
/// as bounded by its dominator-set size: `ρ = |H| / (X − M)` (Lemma 1's
/// per-subcomputation form).
pub fn intensity(h_size: usize, x: usize, m: usize) -> f64 {
    assert!(x > m, "X must exceed M");
    h_size as f64 / (x - m) as f64
}

/// Lemma 6: the minimum, over all compute vertices, of the number of
/// predecessors that are graph inputs with out-degree one. If the result is
/// `u ≥ 1`, the whole cDAG's computational intensity is at most `1/u`.
pub fn min_single_use_inputs(g: &Cdag) -> usize {
    g.compute_vertices()
        .into_iter()
        .map(|v| {
            g.preds[v]
                .iter()
                .filter(|&&p| g.preds[p].is_empty() && g.out_degree(p) == 1)
                .count()
        })
        .min()
        .unwrap_or(0)
}

/// The Lemma 6 intensity bound: `Some(1/u)` when every compute vertex has
/// `u ≥ 1` single-use input predecessors, `None` when the lemma does not
/// apply (`u = 0`).
pub fn lemma6_intensity_bound(g: &Cdag) -> Option<f64> {
    match min_single_use_inputs(g) {
        0 => None,
        u => Some(1.0 / u as f64),
    }
}

/// Lemma 1: `Q ≥ |V_compute| / ρ`.
pub fn io_from_intensity(n_compute: usize, rho: f64) -> f64 {
    n_compute as f64 / rho
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdag::Builder;

    /// Figure 5a: C[i,j] = f(A[i,j], b[j]) — each compute vertex has one
    /// single-use input (A[i,j]) and one shared input (b[j]), so u = 1.
    fn figure5a(n: usize) -> Cdag {
        let mut bld = Builder::new();
        for i in 0..n {
            for j in 0..n {
                bld.compute(("C", &[i, j]), &[("A", &[i, j]), ("b", &[j])]);
            }
        }
        bld.build()
    }

    /// Figure 5b: C[i,j] = f(a[i]·b[j]) — modelled as c[i,j] consuming
    /// fresh single-use inputs a'[i,j], b'[i,j] (the figure's point is two
    /// out-degree-1 inputs per compute vertex, u = 2).
    fn figure5b(n: usize) -> Cdag {
        let mut bld = Builder::new();
        for i in 0..n {
            for j in 0..n {
                bld.compute(
                    ("C", &[i, j]),
                    &[("a", &[i, j * 2]), ("b", &[i, j * 2 + 1])],
                );
            }
        }
        bld.build()
    }

    #[test]
    fn figure5a_has_u1() {
        let g = figure5a(4);
        assert_eq!(min_single_use_inputs(&g), 1);
        assert_eq!(lemma6_intensity_bound(&g), Some(1.0));
        // Q ≥ n (at least one load per compute vertex).
        assert!(io_from_intensity(16, 1.0) >= 16.0);
    }

    #[test]
    fn figure5b_has_u2() {
        let g = figure5b(3);
        assert_eq!(min_single_use_inputs(&g), 2);
        assert_eq!(lemma6_intensity_bound(&g), Some(0.5));
    }

    #[test]
    fn lu_s1_vertices_have_single_use_inputs() {
        // In the full LU cDAG u = 0 globally (S2 vertices reuse everything),
        // but the isolated S1 statement has u = 1: each division consumes
        // the previous version of A[i,k] which nothing else reads.
        let mut bld = Builder::new();
        let n = 4;
        let k = 0;
        for i in k + 1..n {
            bld.compute(("A", &[i, k]), &[("A", &[i, k]), ("A", &[k, k])]);
        }
        let g = bld.build();
        assert_eq!(min_single_use_inputs(&g), 1, "ρ_S1 ≤ 1 as in §6.1");
    }

    #[test]
    fn intensity_is_h_over_surplus() {
        assert!((intensity(300, 30, 10) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn mmm_lemma6_does_not_apply() {
        // Every MMM input has high out-degree; Lemma 6 gives nothing,
        // which is why the X-partition machinery is needed there.
        let g = crate::cdag::mmm_cdag(3);
        assert_eq!(lemma6_intensity_bound(&g), None);
    }
}
