//! From X-partition to schedule — the *constructive* claim of the paper's
//! framework ("X-partition provides powerful hints for obtaining parallel
//! schedules", §12).
//!
//! Given a valid X-partition, [`schedule_from_partition`] materializes a
//! legal red-blue pebbling: subcomputations execute in topological order;
//! for each subcomputation `H`, its dominator set is loaded (≤ X loads),
//! `H` is computed inside fast memory, and its minimum set is stored
//! (≤ X stores). The resulting cost is at most `s·2X` for an `s`-part
//! partition — the upper-bound counterpart of Lemma 2's
//! `s ≥ (Q + X − M)/(X − M)` lower-bound direction, and exactly how the
//! paper turns partitions into communication-avoiding schedules.
//!
//! The generated schedule needs `M ≥ X + |H|` red pebbles in the worst case
//! (inputs plus the whole subcomputation live simultaneously); callers pick
//! `X` accordingly, mirroring the `X₀ = 3M` relationship the optimization
//! derives.

use crate::cdag::{Cdag, NodeId};
use crate::game::Move;
use crate::xpart::{frontier_dominator, min_set};
use std::collections::HashSet;

/// Build a pebbling schedule from an X-partition (parts in any order; they
/// are topologically sorted internally).
///
/// Returns the move list, verifiable with [`crate::game::verify`] given
/// enough red pebbles (`max over parts of |Dom(H)| + |H|`).
///
/// # Panics
/// If `parts` is not a partition of the graph's vertices (checked loosely:
/// counts must match) or has cyclic inter-part dependencies.
pub fn schedule_from_partition(g: &Cdag, parts: &[Vec<NodeId>]) -> Vec<Move> {
    let total: usize = parts.iter().map(|p| p.len()).sum();
    assert_eq!(total, g.len(), "parts must cover every vertex exactly once");

    // Topologically order the parts by inter-part edges.
    let mut owner = vec![usize::MAX; g.len()];
    for (pi, part) in parts.iter().enumerate() {
        for &v in part {
            owner[v] = pi;
        }
    }
    let np = parts.len();
    let mut indeg = vec![0usize; np];
    let mut edges: HashSet<(usize, usize)> = HashSet::new();
    for v in 0..g.len() {
        for &s in &g.succs[v] {
            let (a, b) = (owner[v], owner[s]);
            if a != b && edges.insert((a, b)) {
                indeg[b] += 1;
            }
        }
    }
    let mut ready: Vec<usize> = (0..np).filter(|&p| indeg[p] == 0).collect();
    let mut order = Vec::with_capacity(np);
    while let Some(p) = ready.pop() {
        order.push(p);
        for &(a, b) in &edges {
            if a == p {
                indeg[b] -= 1;
                if indeg[b] == 0 {
                    ready.push(b);
                }
            }
        }
    }
    assert_eq!(order.len(), np, "cyclic dependencies between parts");

    // Emit moves: load Dom(H), compute H in topological order, store
    // Min(H), evict everything.
    let mut moves = Vec::new();
    let mut blue: HashSet<NodeId> = g.inputs().into_iter().collect();
    for &pi in &order {
        let part = &parts[pi];
        let hset: HashSet<NodeId> = part.iter().copied().collect();
        let dom = frontier_dominator(g, part);
        let mut red: HashSet<NodeId> = HashSet::new();
        for &d in &dom {
            debug_assert!(blue.contains(&d), "dominator {d} not in slow memory");
            moves.push(Move::Load(d));
            red.insert(d);
        }
        // Compute the part's non-input vertices in topological order.
        let topo = g.topo_order();
        for v in topo {
            if !hset.contains(&v) || g.preds[v].is_empty() {
                continue;
            }
            // Predecessors are either in the dominator (loaded) or earlier
            // vertices of this part (already computed red).
            moves.push(Move::Compute(v));
            red.insert(v);
        }
        // Store everything later parts (or the final result) will need:
        // vertices of H with a successor outside H, plus graph outputs.
        // (`Min(H)` bounds this set's analysis-relevant part; operationally
        // a vertex consumed both inside and outside H must persist too.)
        for &v in part {
            let escapes = g.succs[v].iter().any(|s| !hset.contains(s)) || g.succs[v].is_empty();
            if escapes && !g.preds[v].is_empty() && !blue.contains(&v) {
                moves.push(Move::Store(v));
                blue.insert(v);
            }
        }
        debug_assert!(min_set(g, part).len() <= part.len());
        for v in red {
            moves.push(Move::Evict(v));
        }
    }
    moves
}

/// Red-pebble requirement of the generated schedule: the largest
/// `|Dom(H)| + |H non-input|` over parts.
pub fn required_memory(g: &Cdag, parts: &[Vec<NodeId>]) -> usize {
    parts
        .iter()
        .map(|part| {
            let dom = frontier_dominator(g, part).len();
            let comp = part.iter().filter(|&&v| !g.preds[v].is_empty()).count();
            dom + comp
        })
        .max()
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdag::{lu_cdag, mmm_cdag};
    use crate::game::verify;
    use crate::xpart::check_x_partition;

    /// Slice a topological order into chunks of `k` vertices — always a
    /// valid partition (acyclic by construction).
    fn topo_chunks(g: &Cdag, k: usize) -> Vec<Vec<NodeId>> {
        g.topo_order().chunks(k).map(|c| c.to_vec()).collect()
    }

    #[test]
    fn partition_schedules_verify_for_lu() {
        let g = lu_cdag(5);
        for k in [4usize, 8, 16] {
            let parts = topo_chunks(&g, k);
            assert!(check_x_partition(&g, &parts, g.len()).is_ok());
            let moves = schedule_from_partition(&g, &parts);
            let m = required_memory(&g, &parts);
            let stats = verify(&g, &moves, m).unwrap_or_else(|e| panic!("k={k}: {e}"));
            assert!(stats.q > 0);
            assert!(stats.peak_red <= m);
        }
    }

    #[test]
    fn partition_schedules_verify_for_mmm() {
        let g = mmm_cdag(3);
        let parts = topo_chunks(&g, 9);
        let moves = schedule_from_partition(&g, &parts);
        let m = required_memory(&g, &parts);
        assert!(verify(&g, &moves, m).is_ok());
    }

    #[test]
    fn coarser_partitions_do_less_io() {
        // Fewer, larger subcomputations reuse more inside fast memory:
        // Lemma 2's s·X intuition, executed.
        let g = lu_cdag(6);
        let q_fine = {
            let parts = topo_chunks(&g, 2);
            let m = required_memory(&g, &parts);
            verify(&g, &schedule_from_partition(&g, &parts), m)
                .unwrap()
                .q
        };
        let q_coarse = {
            let parts = topo_chunks(&g, 24);
            let m = required_memory(&g, &parts);
            verify(&g, &schedule_from_partition(&g, &parts), m)
                .unwrap()
                .q
        };
        assert!(
            q_coarse < q_fine,
            "coarse {q_coarse} should beat fine {q_fine}"
        );
    }

    #[test]
    fn single_part_costs_inputs_plus_outputs() {
        let g = mmm_cdag(2);
        let parts = vec![(0..g.len()).collect::<Vec<_>>()];
        let m = required_memory(&g, &parts);
        let stats = verify(&g, &schedule_from_partition(&g, &parts), m).unwrap();
        assert_eq!(stats.loads, g.inputs().len());
        assert_eq!(stats.stores, g.outputs().len());
    }

    #[test]
    #[should_panic(expected = "cover every vertex")]
    fn incomplete_partition_is_rejected() {
        let g = lu_cdag(3);
        schedule_from_partition(&g, &[vec![0, 1]]);
    }
}
