//! The end-to-end derivation pipeline of the paper: from a [`Program`]
//! (DAAP form) to a parallel I/O lower bound, automatically.
//!
//! Per statement (§3): if an input access uses *all* loop variables, every
//! iteration consumes a fresh single-use vertex and Lemma 6 caps the
//! intensity at `ρ ≤ 1/u`; otherwise the access structure goes through the
//! Lemma 3 / KKT optimization to get `χ(X)`, `X₀` and `ρ(X₀)`.
//!
//! Across statements (§4): input reuse (Lemma 7) can only *reduce* the sum
//! of individual bounds, so a sound combined bound subtracts the reuse
//! overlap; output reuse (Lemma 8) cannot reduce a consumer's dominator
//! when every producer has `ρ ≤ 1` — the situation in LU and Cholesky,
//! where recomputation is never cheaper than a load. The pipeline applies
//! exactly these rules and reports which case fired.
//!
//! Parallelization (§5, Lemma 9) divides by `P`: intensity is a property of
//! the cDAG and `M` alone, so some rank computes `|V|/P` vertices at cost
//! `|V|/(P·ρ)`.

use crate::daap::{Program, Statement};
use crate::optimize::{chi, find_x0, Accesses};

/// How a statement's intensity bound was obtained.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RhoBound {
    /// Lemma 6: `u` single-use input accesses per iteration → `ρ ≤ 1/u`.
    SingleUse {
        /// Number of full-dimensional (single-use) input accesses.
        u: usize,
    },
    /// Lemma 3 + KKT: `ρ(X₀)` from the access-structure optimization.
    Kkt {
        /// The optimizing dominator budget.
        x0: f64,
        /// The intensity at `X₀`.
        rho: f64,
    },
}

impl RhoBound {
    /// The numeric intensity bound.
    pub fn rho(&self) -> f64 {
        match *self {
            RhoBound::SingleUse { u } => 1.0 / u as f64,
            RhoBound::Kkt { rho, .. } => rho,
        }
    }
}

/// Per-statement analysis result.
#[derive(Debug, Clone)]
pub struct StatementBound {
    /// Statement label.
    pub name: String,
    /// How the intensity was bounded.
    pub rho: RhoBound,
    /// Compute-vertex count `|V_S|` supplied by the caller.
    pub n_compute: f64,
    /// Sequential I/O bound `Q_S ≥ |V_S|/ρ`.
    pub q: f64,
}

/// A derived program bound.
#[derive(Debug, Clone)]
pub struct ProgramBound {
    /// Per-statement results in program order.
    pub statements: Vec<StatementBound>,
    /// Combined parallel bound per rank.
    pub q_parallel: f64,
    /// Statements whose bound is kept as-is although a high-intensity
    /// producer feeds them (the paper's treatment: these are the
    /// second-order terms, e.g. LU's `N²/(2P)` from S1, where the trailing
    /// update could in principle recompute the consumed values).
    pub second_order_caveats: Vec<String>,
}

/// Analyze one statement: choose Lemma 6 or the KKT path (§3).
pub fn analyze_statement(stmt: &Statement, n_compute: f64, m: f64) -> StatementBound {
    let l = stmt.depth();
    // Full-dimensional input accesses consume a fresh vertex per iteration.
    let u = stmt.inputs.iter().filter(|a| a.access_dim() == l).count();
    let rho = if u >= 1 {
        RhoBound::SingleUse { u }
    } else {
        // Map loop-variable names to indices and build the access structure.
        let var_idx = |v: &str| -> usize {
            stmt.loop_vars
                .iter()
                .position(|lv| lv == v)
                .unwrap_or_else(|| panic!("access variable {v} not a loop variable"))
        };
        let accesses: Accesses = stmt
            .inputs
            .iter()
            .map(|a| {
                let mut vars: Vec<usize> = a.distinct_vars().iter().map(|v| var_idx(v)).collect();
                vars.sort_unstable();
                vars
            })
            .collect();
        let chi_fn = move |x: f64| chi(&accesses, l, x);
        let (x0, rho) = find_x0(&chi_fn, m, 64.0 * m + 1024.0);
        RhoBound::Kkt { x0, rho }
    };
    StatementBound {
        name: stmt.name.clone(),
        rho,
        n_compute,
        q: n_compute / rho.rho(),
    }
}

/// Derive the parallel I/O lower bound of a whole program (§3–§5).
///
/// `counts[i]` is the number of compute vertices of statement `i` for the
/// problem size of interest. The per-statement bounds are summed, which is
/// sound here because (output reuse, Lemma 8) every producer statement in a
/// factorization has `ρ ≤ 1`, so recomputation can never undercut a
/// consumer's dominator — exactly the argument §6.1 makes for LU.
///
/// # Panics
/// If `counts.len() != program.statements.len()`.
pub fn derive_program_bound(prog: &Program, counts: &[f64], m: f64, p: usize) -> ProgramBound {
    assert_eq!(
        counts.len(),
        prog.statements.len(),
        "one count per statement"
    );
    let statements: Vec<StatementBound> = prog
        .statements
        .iter()
        .zip(counts)
        .map(|(s, &c)| analyze_statement(s, c, m))
        .collect();
    // Lemma 8 precondition check: when a producer with ρ ≤ 1 feeds a
    // consumer, the consumer's bound is exact (recomputation never beats a
    // load). When a *high-intensity* producer feeds a consumer (LU's S2
    // feeding S1's next panel), the paper keeps the consumer's bound as the
    // statement of its final result — it is the second-order term — and we
    // record the caveat rather than weakening the bound differently.
    let mut caveats = Vec::new();
    for (i, s) in prog.statements.iter().enumerate() {
        if statements[i].rho.rho() <= 1.0 + 1e-9 {
            continue;
        }
        let produces = &s.output.array;
        for (j, t) in prog.statements.iter().enumerate() {
            if j != i && t.inputs.iter().any(|a| &a.array == produces) {
                caveats.push(format!(
                    "{} (fed by high-intensity {}): kept per the paper's §6 treatment",
                    t.name, s.name
                ));
            }
        }
    }
    let q_total: f64 = statements.iter().map(|s| s.q).sum();
    ProgramBound {
        statements,
        q_parallel: q_total / p as f64,
        second_order_caveats: caveats,
    }
}

/// Lemma 7 composition: a sound combined bound when statements share input
/// arrays with nontrivial reuse: `Q ≥ Σ Q_i − Σ Reuse(A_j)`, never below
/// the largest individual bound.
pub fn combined_with_input_reuse(bounds: &[StatementBound], reuses: &[f64], p: usize) -> f64 {
    let total: f64 = bounds.iter().map(|s| s.q).sum();
    let reuse: f64 = reuses.iter().sum();
    let floor = bounds.iter().map(|s| s.q).fold(0.0, f64::max);
    ((total - reuse).max(floor)) / p as f64
}

/// Compute-vertex counts for the built-in LU program at size `n`
/// (`|V₁| = N(N−1)/2`, `|V₂| = N(N−1)(N−2)/3` — §6.1).
pub fn lu_counts(n: usize) -> Vec<f64> {
    let nf = n as f64;
    vec![nf * (nf - 1.0) / 2.0, nf * (nf - 1.0) * (nf - 2.0) / 3.0]
}

/// Counts for the built-in Cholesky program (`|V₁| = N`,
/// `|V₂| = N(N−1)/2`, `|V₃| = N(N−1)(N−2)/6` — §6.2).
pub fn cholesky_counts(n: usize) -> Vec<f64> {
    let nf = n as f64;
    vec![
        nf,
        nf * (nf - 1.0) / 2.0,
        nf * (nf - 1.0) * (nf - 2.0) / 6.0,
    ]
}

/// Counts for the built-in matrix-multiplication program (`N³`).
pub fn mmm_counts(n: usize) -> Vec<f64> {
    vec![(n as f64).powi(3)]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{cholesky_io_lower_bound, lu_io_lower_bound, mmm_io_lower_bound};
    use crate::daap::{cholesky_program, lu_program, mmm_program};

    #[test]
    fn lu_statement_classification_matches_section_6_1() {
        let prog = lu_program();
        let m = 1024.0;
        let s1 = analyze_statement(&prog.statements[0], 10.0, m);
        assert_eq!(s1.rho, RhoBound::SingleUse { u: 1 }, "S1 hits Lemma 6");
        let s2 = analyze_statement(&prog.statements[1], 10.0, m);
        match s2.rho {
            RhoBound::Kkt { x0, rho } => {
                assert!((x0 - 3.0 * m).abs() / (3.0 * m) < 0.05, "X₀ = 3M, got {x0}");
                let expect = m.sqrt() / 2.0;
                assert!((rho - expect).abs() / expect < 0.05, "ρ = √M/2, got {rho}");
            }
            other => panic!("S2 must take the KKT path, got {other:?}"),
        }
    }

    #[test]
    fn derived_lu_bound_matches_closed_form() {
        for (n, p, m) in [(4096usize, 64usize, 1e5), (16384, 512, 1e6)] {
            let derived = derive_program_bound(&lu_program(), &lu_counts(n), m, p);
            let closed = lu_io_lower_bound(n, p, m);
            let rel = (derived.q_parallel - closed).abs() / closed;
            assert!(
                rel < 0.02,
                "n={n}: derived {} vs closed {closed}",
                derived.q_parallel
            );
        }
    }

    #[test]
    fn derived_cholesky_bound_matches_closed_form() {
        let (n, p, m) = (8192usize, 128usize, 4e5);
        let derived = derive_program_bound(&cholesky_program(), &cholesky_counts(n), m, p);
        let closed = cholesky_io_lower_bound(n, p, m);
        let rel = (derived.q_parallel - closed).abs() / closed;
        assert!(
            rel < 0.02,
            "derived {} vs closed {closed}",
            derived.q_parallel
        );
    }

    #[test]
    fn derived_mmm_bound_matches_closed_form() {
        let (n, p, m) = (2048usize, 16usize, 65536.0);
        let derived = derive_program_bound(&mmm_program(), &mmm_counts(n), m, p);
        let closed = mmm_io_lower_bound(n, p, m);
        let rel = (derived.q_parallel - closed).abs() / closed;
        assert!(
            rel < 0.05,
            "derived {} vs closed {closed}",
            derived.q_parallel
        );
    }

    #[test]
    fn input_reuse_composition_never_drops_below_max() {
        let b = vec![
            StatementBound {
                name: "S".into(),
                rho: RhoBound::SingleUse { u: 1 },
                n_compute: 100.0,
                q: 100.0,
            },
            StatementBound {
                name: "T".into(),
                rho: RhoBound::SingleUse { u: 1 },
                n_compute: 60.0,
                q: 60.0,
            },
        ];
        // Massive claimed reuse cannot push the bound below max(Q_S, Q_T).
        assert_eq!(combined_with_input_reuse(&b, &[1000.0], 1), 100.0);
        assert_eq!(combined_with_input_reuse(&b, &[20.0], 1), 140.0);
        assert_eq!(combined_with_input_reuse(&b, &[20.0], 2), 70.0);
    }

    #[test]
    #[should_panic(expected = "one count per statement")]
    fn count_mismatch_is_rejected() {
        derive_program_bound(&lu_program(), &[1.0], 100.0, 1);
    }
}
