//! Executing DAAP programs into cDAGs — automatically.
//!
//! Table 3 of the paper lists, as a drawback of pebbling approaches, that
//! there is "no well-established method how to automatically translate code
//! to cDAGs". For the DAAP class this module provides exactly that: a
//! [`LoopNest`] attaches concrete (possibly triangular) bounds to a
//! [`Statement`]'s iteration variables, and [`build_cdag`] executes the
//! loop nest, materializing one vertex per element version — so the
//! hand-written builders in [`crate::cdag`] become *test oracles* for the
//! generic path rather than the only way in.

use crate::cdag::{Builder, Cdag};
use crate::daap::{Program, Statement};

/// One end of an iteration range, possibly depending on outer variables.
#[derive(Debug, Clone, Copy)]
pub enum Bound {
    /// A constant (typically 0 or the problem size `n`).
    Const(i64),
    /// `value of outer variable + offset` (e.g. `k+1`, `i+1`).
    VarPlus(usize, i64),
}

impl Bound {
    fn eval(&self, outer: &[i64]) -> i64 {
        match *self {
            Bound::Const(c) => c,
            Bound::VarPlus(v, off) => outer[v] + off,
        }
    }
}

/// Concrete bounds for one statement's loop nest: for each loop variable
/// (outermost first), a half-open range `[lo, hi)` whose ends may reference
/// outer variables by index.
#[derive(Debug, Clone)]
pub struct LoopNest {
    /// Per-variable `[lo, hi)` bounds, outermost first.
    pub ranges: Vec<(Bound, Bound)>,
}

impl LoopNest {
    /// Triangular-friendly constructor.
    pub fn new(ranges: Vec<(Bound, Bound)>) -> Self {
        LoopNest { ranges }
    }
}

/// Execute one statement's loop nest into the builder.
fn run_statement(b: &mut Builder, stmt: &Statement, nest: &LoopNest) {
    assert_eq!(
        nest.ranges.len(),
        stmt.loop_vars.len(),
        "one range per loop variable"
    );
    let var_index = |name: &str| -> usize {
        stmt.loop_vars
            .iter()
            .position(|v| v == name)
            .unwrap_or_else(|| panic!("access variable {name} not a loop variable"))
    };
    // Pre-resolve access variable indices.
    let out_idx: Vec<usize> = stmt.output.index.iter().map(|v| var_index(v)).collect();
    let in_idx: Vec<(String, Vec<usize>)> = stmt
        .inputs
        .iter()
        .map(|a| {
            (
                a.array.clone(),
                a.index.iter().map(|v| var_index(v)).collect(),
            )
        })
        .collect();

    let l = nest.ranges.len();
    let mut vals = vec![0i64; l];
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        b: &mut Builder,
        nest: &LoopNest,
        vals: &mut Vec<i64>,
        depth: usize,
        l: usize,
        out_arr: &str,
        out_idx: &[usize],
        in_idx: &[(String, Vec<usize>)],
    ) {
        if depth == l {
            let out: Vec<usize> = out_idx.iter().map(|&v| vals[v] as usize).collect();
            let ins: Vec<(String, Vec<usize>)> = in_idx
                .iter()
                .map(|(a, ix)| (a.clone(), ix.iter().map(|&v| vals[v] as usize).collect()))
                .collect();
            let ins_ref: Vec<(&str, &[usize])> = ins
                .iter()
                .map(|(a, ix)| (a.as_str(), ix.as_slice()))
                .collect();
            b.compute((out_arr, &out), &ins_ref);
            return;
        }
        let (lo, hi) = nest.ranges[depth];
        let (lo, hi) = (lo.eval(vals), hi.eval(vals));
        for x in lo..hi {
            vals[depth] = x;
            recurse(b, nest, vals, depth + 1, l, out_arr, out_idx, in_idx);
        }
    }
    recurse(
        b,
        nest,
        &mut vals,
        0,
        l,
        &stmt.output.array,
        &out_idx,
        &in_idx,
    );
}

/// Execute a whole program: statements run in program order for each value
/// of the shared outermost variable when `fused` nests are given per
/// statement. For the factorizations the statement nests share the
/// outermost `k` loop; this executor (like the paper's Listing 1) simply
/// interleaves by running, for each statement, its full nest — correct for
/// programs whose statements' dependencies are honored by program order
/// within each outer iteration.
///
/// `nests[i]` supplies statement `i`'s bounds. For interleaved outer loops
/// use [`build_cdag_interleaved`].
pub fn build_cdag(prog: &Program, nests: &[LoopNest]) -> Cdag {
    assert_eq!(prog.statements.len(), nests.len());
    let mut b = Builder::new();
    for (stmt, nest) in prog.statements.iter().zip(nests) {
        run_statement(&mut b, stmt, nest);
    }
    b.build()
}

/// Execute a program whose statements share the outermost loop variable
/// (the factorization shape: `for k { S1; S2; S3 }`): for each value of the
/// outer variable in `[0, outer_n)`, every statement runs its *inner* nest
/// (its remaining variables), in program order.
///
/// `inner_nests[i]` supplies statement `i`'s bounds for variables `1..`;
/// outer-variable references use index 0 as usual.
pub fn build_cdag_interleaved(prog: &Program, outer_n: usize, inner_nests: &[LoopNest]) -> Cdag {
    assert_eq!(prog.statements.len(), inner_nests.len());
    let mut b = Builder::new();
    for k in 0..outer_n as i64 {
        for (stmt, inner) in prog.statements.iter().zip(inner_nests) {
            // Prefix the fixed outer value.
            let mut ranges = vec![(Bound::Const(k), Bound::Const(k + 1))];
            ranges.extend(inner.ranges.iter().copied());
            run_statement(&mut b, stmt, &LoopNest::new(ranges));
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdag::{cholesky_cdag, lu_cdag, mmm_cdag};
    use crate::daap::{cholesky_program, lu_program, mmm_program};

    fn same_graph(a: &Cdag, b: &Cdag) -> bool {
        if a.len() != b.len() {
            return false;
        }
        // Labels are (array, indices, version) — a canonical identity; map
        // label -> preds' labels and compare as sets.
        use std::collections::{BTreeSet, HashMap};
        type Label = (String, Vec<usize>, usize);
        let sig = |g: &Cdag| -> HashMap<Label, BTreeSet<Label>> {
            (0..g.len())
                .map(|v| {
                    (
                        g.labels[v].clone(),
                        g.preds[v].iter().map(|&p| g.labels[p].clone()).collect(),
                    )
                })
                .collect()
        };
        sig(a) == sig(b)
    }

    #[test]
    fn generic_executor_reproduces_mmm() {
        let n = 4i64;
        let nest = LoopNest::new(vec![
            (Bound::Const(0), Bound::Const(n)),
            (Bound::Const(0), Bound::Const(n)),
            (Bound::Const(0), Bound::Const(n)),
        ]);
        let g = build_cdag(&mmm_program(), &[nest]);
        assert!(same_graph(&g, &mmm_cdag(n as usize)));
    }

    #[test]
    fn generic_executor_reproduces_lu() {
        let n = 5i64;
        // for k: S1 over i in (k, n); S2 over i in (k, n), j in (k, n).
        let s1 = LoopNest::new(vec![(Bound::VarPlus(0, 1), Bound::Const(n))]);
        let s2 = LoopNest::new(vec![
            (Bound::VarPlus(0, 1), Bound::Const(n)),
            (Bound::VarPlus(0, 1), Bound::Const(n)),
        ]);
        let g = build_cdag_interleaved(&lu_program(), n as usize, &[s1, s2]);
        assert!(same_graph(&g, &lu_cdag(n as usize)));
    }

    #[test]
    fn generic_executor_reproduces_cholesky() {
        let n = 5i64;
        // Listing 1: S1 (no inner vars); S2 over i in (k, n);
        // S3 over i in (k, n), j in (k, i].
        let s1 = LoopNest::new(vec![]);
        let s2 = LoopNest::new(vec![(Bound::VarPlus(0, 1), Bound::Const(n))]);
        let s3 = LoopNest::new(vec![
            (Bound::VarPlus(0, 1), Bound::Const(n)),
            (Bound::VarPlus(0, 1), Bound::VarPlus(1, 1)),
        ]);
        let g = build_cdag_interleaved(&cholesky_program(), n as usize, &[s1, s2, s3]);
        assert!(same_graph(&g, &cholesky_cdag(n as usize)));
    }

    #[test]
    fn triangular_bounds_evaluate_against_outer_vars() {
        // Σ over i in [0,4), j in [0, i): 0+1+2+3 = 6 compute vertices.
        use crate::daap::{AccessFn, Statement};
        let stmt = Statement {
            name: "S".into(),
            loop_vars: vec!["i".into(), "j".into()],
            output: AccessFn::new("C", &["i", "j"]),
            inputs: vec![AccessFn::new("A", &["i", "j"])],
        };
        let nest = LoopNest::new(vec![
            (Bound::Const(0), Bound::Const(4)),
            (Bound::Const(0), Bound::VarPlus(0, 0)),
        ]);
        let g = build_cdag(
            &Program {
                statements: vec![stmt],
            },
            &[nest],
        );
        assert_eq!(g.compute_vertices().len(), 6);
    }
}
