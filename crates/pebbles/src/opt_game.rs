//! Exact optimal red-blue pebbling for *tiny* cDAGs, by 0/1-weight Dijkstra
//! over game states.
//!
//! Computing optimal pebblings is PSPACE-complete in general (the paper
//! cites Liu 2018), so this is strictly a verification instrument: on
//! graphs of ≲ 20 vertices it pins the exact optimum `Q*` between the
//! analytic lower bound and the greedy scheduler's upper bound, turning the
//! "sandwich" tests from inequalities about two loose ends into a
//! three-point bracket.
//!
//! State = (red set, blue set, computed set) as bitmasks; moves follow the
//! game of §2.3.1: loads and stores cost 1, computes and evictions cost 0.
//! A 0/1 bucket queue explores states in nondecreasing I/O order, so the
//! first goal state reached is optimal.

use crate::cdag::Cdag;
use std::collections::{HashMap, VecDeque};

/// Exact minimum I/O `Q*` to pebble `g` with `m` red pebbles, ending with
/// every compute vertex computed and every output stored (the same
/// convention the greedy scheduler uses).
///
/// Returns `None` if the search exceeds `state_budget` explored states
/// (the graph is too large for exact search) — never a wrong answer.
///
/// # Panics
/// If the graph has more than 40 vertices (state encoding limit).
pub fn optimal_q(g: &Cdag, m: usize, state_budget: usize) -> Option<usize> {
    let n = g.len();
    assert!(n <= 40, "exact search limited to 40 vertices");
    let all_inputs: u64 = g.inputs().iter().fold(0, |acc, &v| acc | (1 << v));
    let compute_goal: u64 = g
        .compute_vertices()
        .iter()
        .fold(0, |acc, &v| acc | (1 << v));
    let output_goal: u64 = g
        .outputs()
        .into_iter()
        .filter(|&v| !g.preds[v].is_empty())
        .fold(0, |acc, v| acc | (1 << v));
    let pred_masks: Vec<u64> = (0..n)
        .map(|v| g.preds[v].iter().fold(0u64, |acc, &p| acc | (1 << p)))
        .collect();
    let succ_masks: Vec<u64> = (0..n)
        .map(|v| g.succs[v].iter().fold(0u64, |acc, &s| acc | (1 << s)))
        .collect();

    #[derive(Clone, Copy, PartialEq, Eq, Hash)]
    struct State {
        red: u64,
        blue: u64,
        computed: u64,
    }
    let start = State {
        red: 0,
        blue: all_inputs,
        computed: 0,
    };
    let is_goal = |s: &State| {
        s.computed & compute_goal == compute_goal && s.blue & output_goal == output_goal
    };

    // 0/1 Dijkstra: deque with 0-cost moves pushed front.
    let mut dist: HashMap<State, usize> = HashMap::new();
    let mut queue: VecDeque<(State, usize)> = VecDeque::new();
    dist.insert(start, 0);
    queue.push_back((start, 0));
    let mut explored = 0usize;

    while let Some((s, d)) = queue.pop_front() {
        if dist.get(&s).copied() != Some(d) {
            continue; // stale entry
        }
        if is_goal(&s) {
            return Some(d);
        }
        explored += 1;
        if explored > state_budget {
            return None;
        }
        let red_count = s.red.count_ones() as usize;
        let push = |queue: &mut VecDeque<(State, usize)>,
                    dist: &mut HashMap<State, usize>,
                    ns: State,
                    nd: usize,
                    zero: bool| {
            let better = dist.get(&ns).is_none_or(|&old| nd < old);
            if better {
                dist.insert(ns, nd);
                if zero {
                    queue.push_front((ns, nd));
                } else {
                    queue.push_back((ns, nd));
                }
            }
        };
        for v in 0..n {
            let bit = 1u64 << v;
            // Compute (free): all predecessors red, room for the result.
            if pred_masks[v] != 0
                && s.red & pred_masks[v] == pred_masks[v]
                && s.red & bit == 0
                && red_count < m
            {
                let ns = State {
                    red: s.red | bit,
                    blue: s.blue,
                    computed: s.computed | bit,
                };
                push(&mut queue, &mut dist, ns, d, true);
            }
            // A vertex is still *useful* if some successor remains
            // uncomputed (it may feed a future compute) — loads and stores
            // of useless non-output vertices can be dropped from any
            // optimal schedule, so we never generate them.
            let useful = succ_masks[v] & !s.computed != 0;
            let needed_output = output_goal & bit != 0 && s.blue & bit == 0;
            // Load (cost 1).
            if s.blue & bit != 0 && s.red & bit == 0 && red_count < m && useful {
                let ns = State {
                    red: s.red | bit,
                    ..s
                };
                push(&mut queue, &mut dist, ns, d + 1, false);
            }
            // Store (cost 1).
            if s.red & bit != 0 && s.blue & bit == 0 && (useful || needed_output) {
                let ns = State {
                    blue: s.blue | bit,
                    ..s
                };
                push(&mut queue, &mut dist, ns, d + 1, false);
            }
            // Evict (free). Pruned to full-memory states: an eviction only
            // ever *relaxes* the capacity constraint, so delaying it until
            // space is actually needed preserves optimality while cutting
            // the reachable state space dramatically.
            if s.red & bit != 0 && red_count == m {
                let ns = State {
                    red: s.red & !bit,
                    ..s
                };
                push(&mut queue, &mut dist, ns, d, true);
            }
        }
    }
    // Exhausted without reaching the goal: M too small for any pebbling.
    Some(usize::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds::{cholesky_io_lower_bound, lu_io_lower_bound};
    use crate::cdag::{cholesky_cdag, lu_cdag, Builder};
    use crate::game::{greedy_schedule, verify};

    #[test]
    fn chain_optimum_is_load_plus_store() {
        // in -> a -> b -> c: one load, one final store; Q* = 2.
        let mut b = Builder::new();
        b.compute(("x", &[0]), &[("in", &[0])]);
        b.compute(("x", &[0]), &[("x", &[0])]);
        b.compute(("x", &[0]), &[("x", &[0])]);
        let g = b.build();
        assert_eq!(optimal_q(&g, 2, 1 << 20), Some(2));
    }

    #[test]
    fn fan_in_needs_all_loads() {
        // y = f(a, b, c): three loads + one store, with M = 4.
        let mut b = Builder::new();
        b.compute(("y", &[0]), &[("a", &[0]), ("b", &[0]), ("c", &[0])]);
        let g = b.build();
        assert_eq!(optimal_q(&g, 4, 1 << 20), Some(4));
    }

    #[test]
    fn memory_pressure_forces_spills() {
        // Two computes sharing inputs under tight memory: with M just large
        // enough, the optimum needs extra traffic vs. ample memory.
        let mut b = Builder::new();
        b.compute(("y", &[0]), &[("a", &[0]), ("b", &[0])]);
        b.compute(("z", &[0]), &[("y", &[0]), ("a", &[0]), ("b", &[0])]);
        let g = b.build();
        let tight = optimal_q(&g, 3, 1 << 22).unwrap();
        let ample = optimal_q(&g, 8, 1 << 22).unwrap();
        assert!(tight >= ample);
        // Ample memory: 2 loads + 2 stores (y and z are both outputs? y has
        // a successor so only z is an output) => 2 loads + 1 store = 3.
        assert_eq!(ample, 3);
    }

    #[test]
    fn three_point_sandwich_on_tiny_lu() {
        let g = lu_cdag(3); // 9 inputs + 8 compute vertices
        for m in [4usize, 6, 8] {
            let opt = optimal_q(&g, m, 1 << 23).expect("graph small enough");
            let lb = lu_io_lower_bound(3, 1, m as f64);
            let greedy = verify(&g, &greedy_schedule(&g, m), m).unwrap().q;
            assert!(
                lb <= opt as f64 && opt <= greedy,
                "M={m}: bound {lb} ≤ opt {opt} ≤ greedy {greedy} violated"
            );
        }
    }

    #[test]
    fn three_point_sandwich_on_tiny_cholesky() {
        let g = cholesky_cdag(3); // 6 inputs + 7 compute vertices
        for m in [4usize, 6] {
            let opt = optimal_q(&g, m, 1 << 23).expect("graph small enough");
            let lb = cholesky_io_lower_bound(3, 1, m as f64);
            let greedy = verify(&g, &greedy_schedule(&g, m), m).unwrap().q;
            assert!(
                lb <= opt as f64 && opt <= greedy,
                "M={m}: bound {lb} ≤ opt {opt} ≤ greedy {greedy} violated"
            );
        }
    }

    #[test]
    fn budget_exhaustion_returns_none() {
        let g = lu_cdag(4);
        assert_eq!(optimal_q(&g, 8, 10), None);
    }
}
