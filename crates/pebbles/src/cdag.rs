//! Computational DAGs (paper §2.3), built by executing loop nests.
//!
//! Every write to an array element creates a *new version* of that element,
//! and every version is a distinct vertex — the representation Figure 3
//! illustrates for LU with N = 4. Edges run from each input version to the
//! output version a statement produces.

use std::collections::HashMap;

/// Vertex id.
pub type NodeId = usize;

/// A computational DAG with vertex labels.
#[derive(Debug, Clone, Default)]
pub struct Cdag {
    /// Predecessors of each vertex.
    pub preds: Vec<Vec<NodeId>>,
    /// Successors of each vertex.
    pub succs: Vec<Vec<NodeId>>,
    /// Debug labels: `(array, indices, version)`.
    pub labels: Vec<(String, Vec<usize>, usize)>,
}

impl Cdag {
    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True if the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Vertices with no incoming edges (graph inputs: initial element
    /// versions).
    pub fn inputs(&self) -> Vec<NodeId> {
        (0..self.len())
            .filter(|&v| self.preds[v].is_empty())
            .collect()
    }

    /// Vertices with no outgoing edges (graph outputs).
    pub fn outputs(&self) -> Vec<NodeId> {
        (0..self.len())
            .filter(|&v| self.succs[v].is_empty())
            .collect()
    }

    /// Non-input vertices (the computations).
    pub fn compute_vertices(&self) -> Vec<NodeId> {
        (0..self.len())
            .filter(|&v| !self.preds[v].is_empty())
            .collect()
    }

    /// Out-degree of a vertex.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.succs[v].len()
    }

    /// A topological order (inputs first).
    ///
    /// # Panics
    /// If the graph has a cycle (cannot happen for versioned builds).
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut indeg: Vec<usize> = self.preds.iter().map(|p| p.len()).collect();
        let mut stack: Vec<NodeId> = (0..self.len()).filter(|&v| indeg[v] == 0).collect();
        let mut order = Vec::with_capacity(self.len());
        while let Some(v) = stack.pop() {
            order.push(v);
            for &s in &self.succs[v] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    stack.push(s);
                }
            }
        }
        assert_eq!(order.len(), self.len(), "cDAG has a cycle");
        order
    }

    fn add_vertex(&mut self, label: (String, Vec<usize>, usize)) -> NodeId {
        self.preds.push(Vec::new());
        self.succs.push(Vec::new());
        self.labels.push(label);
        self.preds.len() - 1
    }

    fn add_edge(&mut self, from: NodeId, to: NodeId) {
        self.preds[to].push(from);
        self.succs[from].push(to);
    }
}

/// Incremental cDAG builder: tracks the live version of every array element
/// and materializes new vertices on writes.
#[derive(Debug, Default)]
pub struct Builder {
    graph: Cdag,
    /// `(array, indices)` → (vertex of newest version, version number).
    live: HashMap<(String, Vec<usize>), (NodeId, usize)>,
}

impl Builder {
    /// Fresh builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// The vertex currently holding `array[idx]`, creating the initial
    /// (input) version if the element was never touched.
    pub fn read(&mut self, array: &str, idx: &[usize]) -> NodeId {
        let key = (array.to_string(), idx.to_vec());
        if let Some(&(v, _)) = self.live.get(&key) {
            return v;
        }
        let v = self.graph.add_vertex((array.to_string(), idx.to_vec(), 0));
        self.live.insert(key, (v, 0));
        v
    }

    /// Execute one statement instance: read every input (possibly creating
    /// initial versions), then produce a new version of the output element
    /// with edges from all inputs. Returns the new vertex.
    pub fn compute(&mut self, output: (&str, &[usize]), inputs: &[(&str, &[usize])]) -> NodeId {
        let in_nodes: Vec<NodeId> = inputs.iter().map(|(a, i)| self.read(a, i)).collect();
        let key = (output.0.to_string(), output.1.to_vec());
        let version = self.live.get(&key).map_or(0, |&(_, ver)| ver + 1);
        let v = self
            .graph
            .add_vertex((output.0.to_string(), output.1.to_vec(), version));
        for u in in_nodes {
            self.graph.add_edge(u, v);
        }
        self.live.insert(key, (v, version));
        v
    }

    /// Finish and return the graph.
    pub fn build(self) -> Cdag {
        self.graph
    }
}

/// The LU cDAG of Figure 3 for an `n × n` matrix (no pivoting).
pub fn lu_cdag(n: usize) -> Cdag {
    let mut b = Builder::new();
    for k in 0..n {
        for i in k + 1..n {
            // S1: A[i,k] ← A[i,k] / A[k,k]
            b.compute(("A", &[i, k]), &[("A", &[i, k]), ("A", &[k, k])]);
        }
        for i in k + 1..n {
            for j in k + 1..n {
                // S2: A[i,j] ← A[i,j] − A[i,k]·A[k,j]
                b.compute(
                    ("A", &[i, j]),
                    &[("A", &[i, j]), ("A", &[i, k]), ("A", &[k, j])],
                );
            }
        }
    }
    b.build()
}

/// The Cholesky cDAG of Listing 1 for an `n × n` matrix.
pub fn cholesky_cdag(n: usize) -> Cdag {
    let mut b = Builder::new();
    for k in 0..n {
        // S1: L[k,k] ← sqrt(L[k,k])
        b.compute(("L", &[k, k]), &[("L", &[k, k])]);
        for i in k + 1..n {
            // S2: L[i,k] ← L[i,k] / L[k,k]
            b.compute(("L", &[i, k]), &[("L", &[i, k]), ("L", &[k, k])]);
        }
        for i in k + 1..n {
            for j in k + 1..=i {
                // S3: L[i,j] ← L[i,j] − L[i,k]·L[j,k]
                b.compute(
                    ("L", &[i, j]),
                    &[("L", &[i, j]), ("L", &[i, k]), ("L", &[j, k])],
                );
            }
        }
    }
    b.build()
}

/// The classic matrix-multiplication cDAG (`C += A·B`, `n × n`).
pub fn mmm_cdag(n: usize) -> Cdag {
    let mut b = Builder::new();
    for i in 0..n {
        for j in 0..n {
            for k in 0..n {
                b.compute(
                    ("C", &[i, j]),
                    &[("C", &[i, j]), ("A", &[i, k]), ("B", &[k, j])],
                );
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn versions_create_distinct_vertices() {
        let mut b = Builder::new();
        let v0 = b.read("A", &[0]);
        let v1 = b.compute(("A", &[0]), &[("A", &[0])]);
        let v2 = b.compute(("A", &[0]), &[("A", &[0])]);
        let g = b.build();
        assert_eq!(g.len(), 3);
        assert_eq!(g.labels[v0].2, 0);
        assert_eq!(g.labels[v1].2, 1);
        assert_eq!(g.labels[v2].2, 2);
        assert_eq!(g.preds[v2], vec![v1], "reads see the newest version");
    }

    #[test]
    fn lu_cdag_counts_match_the_paper() {
        // |V1| = N(N-1)/2 S1-vertices, |V2| = Σ_k (N-k-1)² S2-vertices,
        // plus N² input vertices.
        for n in 2..7 {
            let g = lu_cdag(n);
            let v1 = n * (n - 1) / 2;
            let v2: usize = (0..n).map(|k| (n - k - 1) * (n - k - 1)).sum();
            assert_eq!(g.inputs().len(), n * n, "n={n}");
            assert_eq!(g.compute_vertices().len(), v1 + v2, "n={n}");
        }
    }

    #[test]
    fn cholesky_cdag_counts() {
        for n in 2..7 {
            let g = cholesky_cdag(n);
            // S1: N, S2: N(N-1)/2, S3: Σ_k Σ_{i>k} (i-k).
            let v1 = n;
            let v2 = n * (n - 1) / 2;
            let v3: usize = (0..n)
                .map(|k| (k + 1..n).map(|i| i - k).sum::<usize>())
                .sum();
            // Inputs: lower triangle incl. diagonal.
            assert_eq!(g.inputs().len(), n * (n + 1) / 2, "n={n}");
            assert_eq!(g.compute_vertices().len(), v1 + v2 + v3, "n={n}");
        }
    }

    #[test]
    fn mmm_cdag_counts() {
        let n = 4;
        let g = mmm_cdag(n);
        assert_eq!(g.compute_vertices().len(), n * n * n);
        assert_eq!(g.inputs().len(), 3 * n * n, "A, B and C⁰ are inputs");
    }

    #[test]
    fn lu_figure3_n4_has_the_pictured_structure() {
        let g = lu_cdag(4);
        // Figure 3's cDAG: the final A[3,3] vertex depends on a chain
        // through all three elimination steps — depth ≥ 3 statements.
        let topo = g.topo_order();
        assert_eq!(topo.len(), g.len());
        // Every S2 vertex has exactly 3 predecessors; S1 vertices have 2.
        for v in g.compute_vertices() {
            let d = g.preds[v].len();
            assert!(d == 2 || d == 3, "unexpected in-degree {d}");
        }
    }

    #[test]
    fn topo_order_respects_edges() {
        let g = lu_cdag(5);
        let topo = g.topo_order();
        let mut position = vec![0; g.len()];
        for (i, &v) in topo.iter().enumerate() {
            position[v] = i;
        }
        for v in 0..g.len() {
            for &p in &g.preds[v] {
                assert!(position[p] < position[v]);
            }
        }
    }
}
