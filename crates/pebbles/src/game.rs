//! The red-blue pebble game (paper §2.3.1) — sequential and parallel.
//!
//! Two artifacts:
//!
//! * [`verify`] — a rule checker: given a move sequence, confirm it is a
//!   legal pebbling (≤ M red pebbles, computes only with all predecessors
//!   red, loads only blue-pebbled vertices) that computes every vertex, and
//!   count its I/O cost `Q`.
//! * [`greedy_schedule`] — a scheduler producing a *valid* pebbling by
//!   walking a topological order with a Belady-style eviction policy
//!   (evict the red pebble whose next use is farthest). Its `Q` is an upper
//!   bound on the optimum, which sandwiches the lower bounds from
//!   [`crate::bounds`] in tests.
//!
//! The parallel game of §5 (no pebble sharing, explicit communication) is
//! realized by [`verify_parallel`], which checks per-processor rules with
//! the communication rule: a processor may place its pebble on any vertex
//! that has *some* pebble, paying one I/O.

use crate::cdag::{Cdag, NodeId};
use std::collections::{HashMap, HashSet};

/// One move of the sequential game.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// Place a red pebble on a blue-pebbled vertex (slow → fast).
    Load(NodeId),
    /// Place a blue pebble on a red-pebbled vertex (fast → slow).
    Store(NodeId),
    /// Place a red pebble on a vertex whose predecessors are all red.
    Compute(NodeId),
    /// Remove a red pebble.
    Evict(NodeId),
}

/// Outcome of verifying a schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GameStats {
    /// Loads + stores.
    pub q: usize,
    /// Loads only.
    pub loads: usize,
    /// Stores only.
    pub stores: usize,
    /// Peak number of red pebbles in use.
    pub peak_red: usize,
}

/// Verify a sequential schedule with `m` red pebbles. All graph inputs
/// start blue; the schedule must compute every non-input vertex at least
/// once.
///
/// # Errors
/// A human-readable description of the first rule violation.
pub fn verify(g: &Cdag, moves: &[Move], m: usize) -> Result<GameStats, String> {
    let mut red: HashSet<NodeId> = HashSet::new();
    let mut blue: HashSet<NodeId> = g.inputs().into_iter().collect();
    let mut computed: HashSet<NodeId> = HashSet::new();
    let mut stats = GameStats {
        q: 0,
        loads: 0,
        stores: 0,
        peak_red: 0,
    };
    for (i, &mv) in moves.iter().enumerate() {
        match mv {
            Move::Load(v) => {
                if !blue.contains(&v) {
                    return Err(format!("move {i}: load of non-blue vertex {v}"));
                }
                red.insert(v);
                stats.loads += 1;
            }
            Move::Store(v) => {
                if !red.contains(&v) {
                    return Err(format!("move {i}: store of non-red vertex {v}"));
                }
                blue.insert(v);
                stats.stores += 1;
            }
            Move::Compute(v) => {
                if g.preds[v].is_empty() {
                    return Err(format!("move {i}: compute of input vertex {v}"));
                }
                for &p in &g.preds[v] {
                    if !red.contains(&p) {
                        return Err(format!("move {i}: compute {v} with non-red pred {p}"));
                    }
                }
                red.insert(v);
                computed.insert(v);
            }
            Move::Evict(v) => {
                if !red.remove(&v) {
                    return Err(format!("move {i}: evict of non-red vertex {v}"));
                }
            }
        }
        if red.len() > m {
            return Err(format!("move {i}: {} red pebbles exceed M={m}", red.len()));
        }
        stats.peak_red = stats.peak_red.max(red.len());
    }
    for v in g.compute_vertices() {
        if !computed.contains(&v) {
            return Err(format!("vertex {v} never computed"));
        }
    }
    stats.q = stats.loads + stats.stores;
    Ok(stats)
}

/// Produce a valid sequential pebbling with `m` red pebbles by walking a
/// topological order, loading missing predecessors on demand and evicting
/// the red pebble whose next use lies farthest in the future (Belady).
/// Evicted vertices that are needed again and not yet blue are stored
/// first.
///
/// Returns the move list (verifiable with [`verify`]).
///
/// # Panics
/// If `m < max in-degree + 1` (no legal pebbling exists under this
/// scheduler).
pub fn greedy_schedule(g: &Cdag, m: usize) -> Vec<Move> {
    let order: Vec<NodeId> = {
        // Deterministic topological order: process by vertex id among ready.
        let mut indeg: Vec<usize> = g.preds.iter().map(|p| p.len()).collect();
        let mut ready: std::collections::BinaryHeap<std::cmp::Reverse<NodeId>> = (0..g.len())
            .filter(|&v| indeg[v] == 0)
            .map(std::cmp::Reverse)
            .collect();
        let mut order = Vec::with_capacity(g.len());
        while let Some(std::cmp::Reverse(v)) = ready.pop() {
            order.push(v);
            for &s in &g.succs[v] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(std::cmp::Reverse(s));
                }
            }
        }
        order
    };
    // Next-use lists: for each vertex, the positions (in compute order) of
    // the consumers, ascending.
    let compute_seq: Vec<NodeId> = order
        .iter()
        .copied()
        .filter(|&v| !g.preds[v].is_empty())
        .collect();
    let mut uses: HashMap<NodeId, Vec<usize>> = HashMap::new();
    for (pos, &v) in compute_seq.iter().enumerate() {
        for &p in &g.preds[v] {
            uses.entry(p).or_default().push(pos);
        }
    }

    let max_indeg = g.preds.iter().map(|p| p.len()).max().unwrap_or(0);
    assert!(m > max_indeg, "need at least {} red pebbles", max_indeg + 1);

    let mut moves = Vec::new();
    let mut red: HashSet<NodeId> = HashSet::new();
    let mut blue: HashSet<NodeId> = g.inputs().into_iter().collect();
    let mut cursor: HashMap<NodeId, usize> = HashMap::new(); // per-vertex use index

    let next_use =
        |v: NodeId, cursor: &HashMap<NodeId, usize>, uses: &HashMap<NodeId, Vec<usize>>| -> usize {
            let c = cursor.get(&v).copied().unwrap_or(0);
            uses.get(&v)
                .and_then(|u| u.get(c))
                .copied()
                .unwrap_or(usize::MAX)
        };

    for (pos, &v) in compute_seq.iter().enumerate() {
        // Bring predecessors into fast memory.
        let needed: Vec<NodeId> = g.preds[v].clone();
        for &p in &needed {
            if red.contains(&p) {
                continue;
            }
            while red.len() >= m {
                evict_one(
                    g, &mut red, &mut blue, &mut moves, &needed, v, pos, &cursor, &uses,
                );
            }
            debug_assert!(blue.contains(&p), "predecessor must be blue to load");
            moves.push(Move::Load(p));
            red.insert(p);
        }
        // Room for the result.
        while red.len() >= m {
            evict_one(
                g, &mut red, &mut blue, &mut moves, &needed, v, pos, &cursor, &uses,
            );
        }
        moves.push(Move::Compute(v));
        red.insert(v);
        // Advance use cursors of the predecessors.
        for &p in &needed {
            *cursor.entry(p).or_insert(0) += 1;
        }
        let _ = next_use;
        let _ = pos;
    }
    // Store outputs so the result survives (standard game ends with outputs
    // in slow memory).
    for v in g.outputs() {
        if red.contains(&v) && !blue.contains(&v) {
            moves.push(Move::Store(v));
            blue.insert(v);
        }
    }
    moves
}

/// Evict the red pebble with the farthest next use (Belady), storing it
/// first if it will be needed again and is not blue. Never evicts the
/// current compute's predecessors or the vertex about to be computed.
#[allow(clippy::too_many_arguments)]
fn evict_one(
    g: &Cdag,
    red: &mut HashSet<NodeId>,
    blue: &mut HashSet<NodeId>,
    moves: &mut Vec<Move>,
    protected: &[NodeId],
    current: NodeId,
    _pos: usize,
    cursor: &HashMap<NodeId, usize>,
    uses: &HashMap<NodeId, Vec<usize>>,
) {
    let victim = red
        .iter()
        .copied()
        .filter(|x| !protected.contains(x) && *x != current)
        .max_by_key(|&x| {
            let c = cursor.get(&x).copied().unwrap_or(0);
            let nu = uses
                .get(&x)
                .and_then(|u| u.get(c))
                .copied()
                .unwrap_or(usize::MAX);
            (nu, x)
        })
        .expect("no evictable pebble — M too small");
    let c = cursor.get(&victim).copied().unwrap_or(0);
    let needed_again = uses.get(&victim).is_some_and(|u| c < u.len());
    let is_output = g.succs[victim].is_empty() && !g.preds[victim].is_empty();
    if (needed_again || is_output) && !blue.contains(&victim) {
        moves.push(Move::Store(victim));
        blue.insert(victim);
    }
    moves.push(Move::Evict(victim));
    red.remove(&victim);
}

/// One move of the parallel game (§5): per-processor rules, with the
/// communication rule replacing load/store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PMove {
    /// Processor `p` computes vertex `v` (all preds carry `p`'s pebbles).
    Compute(usize, NodeId),
    /// Processor `p` fetches vertex `v` from some other pebble holder
    /// (counts one I/O for `p`).
    Fetch(usize, NodeId),
    /// Processor `p` removes its pebble from `v`.
    Evict(usize, NodeId),
}

/// Verify a parallel pebbling with `nproc` processors of `m` pebbles each.
/// Inputs start "remote" (fetchable by anyone); a fetch is legal if the
/// vertex is an input or some processor currently holds (or ever stored…
/// here: currently holds) a pebble on it.
///
/// Returns per-processor I/O counts.
///
/// # Errors
/// Describes the first rule violation.
pub fn verify_parallel(
    g: &Cdag,
    moves: &[PMove],
    nproc: usize,
    m: usize,
) -> Result<Vec<usize>, String> {
    let mut red: Vec<HashSet<NodeId>> = vec![HashSet::new(); nproc];
    let inputs: HashSet<NodeId> = g.inputs().into_iter().collect();
    let mut computed: HashSet<NodeId> = HashSet::new();
    let mut io = vec![0usize; nproc];
    for (i, &mv) in moves.iter().enumerate() {
        match mv {
            PMove::Compute(p, v) => {
                if p >= nproc {
                    return Err(format!("move {i}: processor {p} out of range"));
                }
                if inputs.contains(&v) {
                    return Err(format!("move {i}: compute of input {v}"));
                }
                for &pr in &g.preds[v] {
                    if !red[p].contains(&pr) {
                        return Err(format!("move {i}: P{p} computes {v} without pred {pr}"));
                    }
                }
                red[p].insert(v);
                computed.insert(v);
            }
            PMove::Fetch(p, v) => {
                let available = inputs.contains(&v) || red.iter().any(|r| r.contains(&v));
                if !available {
                    return Err(format!("move {i}: P{p} fetches unavailable {v}"));
                }
                red[p].insert(v);
                io[p] += 1;
            }
            PMove::Evict(p, v) => {
                if !red[p].remove(&v) {
                    return Err(format!("move {i}: P{p} evicts unpebbled {v}"));
                }
            }
        }
        for (p, r) in red.iter().enumerate() {
            if r.len() > m {
                return Err(format!("move {i}: P{p} exceeds M={m}"));
            }
        }
    }
    for v in g.compute_vertices() {
        if !computed.contains(&v) {
            return Err(format!("vertex {v} never computed"));
        }
    }
    Ok(io)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdag::{lu_cdag, mmm_cdag, Builder};

    #[test]
    fn verify_accepts_manual_pebbling_of_a_chain() {
        // x0 -> x1 -> x2.
        let mut b = Builder::new();
        b.compute(("x", &[0]), &[("x", &[9])]);
        b.compute(("x", &[1]), &[("x", &[0])]);
        let g = b.build();
        let input = g.inputs()[0];
        let mids: Vec<_> = g.compute_vertices();
        let moves = vec![
            Move::Load(input),
            Move::Compute(mids[0]),
            Move::Evict(input),
            Move::Compute(mids[1]),
            Move::Store(mids[1]),
        ];
        let stats = verify(&g, &moves, 2).unwrap();
        assert_eq!(stats.q, 2);
        assert_eq!(stats.peak_red, 2);
    }

    #[test]
    fn verify_rejects_overfull_memory() {
        let g = mmm_cdag(2);
        let inputs = g.inputs();
        let moves: Vec<Move> = inputs.iter().map(|&v| Move::Load(v)).collect();
        assert!(verify(&g, &moves, 3).is_err());
    }

    #[test]
    fn verify_rejects_compute_without_preds() {
        let g = lu_cdag(3);
        let v = g.compute_vertices()[0];
        assert!(verify(&g, &[Move::Compute(v)], 10).is_err());
    }

    #[test]
    fn greedy_schedules_are_valid_across_kernels_and_memories() {
        for (name, g) in [
            ("lu4", lu_cdag(4)),
            ("lu6", lu_cdag(6)),
            ("mmm3", mmm_cdag(3)),
            ("chol5", crate::cdag::cholesky_cdag(5)),
        ] {
            for m in [4usize, 8, 16, 64] {
                let moves = greedy_schedule(&g, m);
                let stats = verify(&g, &moves, m).unwrap_or_else(|e| panic!("{name} M={m}: {e}"));
                assert!(stats.q > 0, "{name} must do some I/O");
            }
        }
    }

    #[test]
    fn more_memory_never_hurts_greedy() {
        let g = lu_cdag(8);
        let q_small = verify(&g, &greedy_schedule(&g, 8), 8).unwrap().q;
        let q_big = verify(&g, &greedy_schedule(&g, 256), 256).unwrap().q;
        assert!(q_big <= q_small, "q_big={q_big} q_small={q_small}");
    }

    #[test]
    fn unlimited_memory_reaches_compulsory_traffic() {
        // With M ≥ |V|, only the inputs must be loaded and outputs stored.
        let g = mmm_cdag(3);
        let m = g.len() + 1;
        let stats = verify(&g, &greedy_schedule(&g, m), m).unwrap();
        // 27 A/B/C loads… inputs = 27; outputs: 9 final C versions.
        assert_eq!(stats.loads, g.inputs().len());
        assert_eq!(stats.stores, g.outputs().len());
    }

    #[test]
    fn parallel_game_counts_io_per_processor() {
        // Two processors each compute half of a 2-chain fan: inputs a,b;
        // c = f(a), d = f(b).
        let mut b = Builder::new();
        b.compute(("c", &[0]), &[("a", &[0])]);
        b.compute(("d", &[0]), &[("b", &[0])]);
        let g = b.build();
        let ins = g.inputs();
        let outs = g.compute_vertices();
        let moves = vec![
            PMove::Fetch(0, ins[0]),
            PMove::Fetch(1, ins[1]),
            PMove::Compute(0, outs[0]),
            PMove::Compute(1, outs[1]),
        ];
        let io = verify_parallel(&g, &moves, 2, 4).unwrap();
        assert_eq!(io, vec![1, 1]);
    }

    #[test]
    fn parallel_game_no_pebble_sharing() {
        // P1 cannot compute with P0's pebbles: it must fetch first.
        let mut b = Builder::new();
        b.compute(("y", &[0]), &[("x", &[0])]);
        let g = b.build();
        let x = g.inputs()[0];
        let y = g.compute_vertices()[0];
        let bad = vec![PMove::Fetch(0, x), PMove::Compute(1, y)];
        assert!(verify_parallel(&g, &bad, 2, 4).is_err());
        let good = vec![PMove::Fetch(0, x), PMove::Fetch(1, x), PMove::Compute(1, y)];
        let io = verify_parallel(&g, &good, 2, 4).unwrap();
        assert_eq!(io[1], 1);
    }

    #[test]
    fn parallel_fetch_of_computed_value_requires_a_holder() {
        let mut b = Builder::new();
        b.compute(("y", &[0]), &[("x", &[0])]);
        b.compute(("z", &[0]), &[("y", &[0])]);
        let g = b.build();
        let x = g.inputs()[0];
        let cv = g.compute_vertices();
        let (y, z) = (cv[0], cv[1]);
        // P1 fetches y after P0 computed it — legal (cross-processor comm).
        let moves = vec![
            PMove::Fetch(0, x),
            PMove::Compute(0, y),
            PMove::Fetch(1, y),
            PMove::Compute(1, z),
        ];
        let io = verify_parallel(&g, &moves, 2, 4).unwrap();
        assert_eq!(io, vec![1, 1]);
    }
}
