//! `pebbles` — the paper's I/O lower-bound framework (§2–§6), executable.
//!
//! The paper derives parallel I/O lower bounds for *Disjoint Access Array
//! Programs* (DAAP) by reasoning about red-blue pebble games on
//! computational DAGs via X-partitioning. This crate implements each layer
//! of that machinery as a real, testable artifact rather than a formula
//! sheet:
//!
//! * [`daap`] — the loop-nest program representation of §2.2: statements
//!   with access-function vectors, iteration variables, access dimensions.
//! * [`cdag`] — computational DAGs built by *executing* a DAAP program's
//!   loop nest (element versions become distinct vertices, exactly as in
//!   Figure 3), plus the built-in LU / Cholesky / matrix-multiply programs.
//! * [`interpret`] — the automatic DAAP → cDAG translation (Table 3 lists
//!   its absence as a pebbling drawback; for this program class it exists).
//! * [`game`] — the red-blue pebble game of §2.3: a rule-checking schedule
//!   verifier and a greedy scheduler producing valid (upper-bound)
//!   schedules.
//! * [`opt_game`] — exact optimal pebbling for tiny cDAGs (Dijkstra over
//!   game states), bracketing `Q*` between bound and greedy in tests.
//! * [`schedule`] — the constructive direction: turn a valid X-partition
//!   into a legal pebbling schedule (load `Dom(H)`, compute `H`, store
//!   `Min(H)`).
//! * [`xpart`] — X-partitions: dominator/minimum sets and validity checks
//!   (§2.3.3).
//! * [`intensity`] — computational intensity and the out-degree-one bound
//!   of Lemma 6.
//! * [`optimize`] — the constrained maximization of Lemma 3 / §3.2
//!   (`max ∏|Dᵗ| s.t. Σ∏|Dⱼᵏ| ≤ X`), solved in closed form for balanced
//!   cases and numerically in general, plus the `X₀` search of Lemma 2.
//! * [`mod@derive`] — the end-to-end pipeline: [`daap::Program`] in, parallel
//!   I/O lower bound out, with automatic Lemma 6 / KKT dispatch and the
//!   §4 reuse composition.
//! * [`bounds`] — the end results of §6: non-asymptotic parallel I/O lower
//!   bounds for LU, Cholesky, and matrix multiplication, derived through
//!   the generic pipeline and cross-checked against the paper's closed
//!   forms.

pub mod bounds;
pub mod cdag;
pub mod daap;
pub mod derive;
pub mod game;
pub mod intensity;
pub mod interpret;
pub mod opt_game;
pub mod optimize;
pub mod schedule;
pub mod xpart;

pub use bounds::{cholesky_io_lower_bound, lu_io_lower_bound, mmm_io_lower_bound};
pub use cdag::Cdag;
pub use daap::{AccessFn, Program, Statement};
pub use derive::{analyze_statement, derive_program_bound, ProgramBound};
