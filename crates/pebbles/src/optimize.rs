//! The constrained maximization behind Lemma 3 and §3.2:
//!
//! ```text
//! max  ∏_t |Dᵗ|      s.t.   Σ_j ∏_{k ∈ φⱼ} |Dᵏ| ≤ X,   |Dᵗ| ≥ 1
//! ```
//!
//! `χ(X)` — the maximal subcomputation size as a function of the dominator
//! budget `X` — falls out of this problem; `X₀ = argmin χ(X)/(X−M)` then
//! yields the tightest Lemma 2 bound. We provide the balanced closed form
//! (all accesses the same size: the matrix-multiply case, `χ(X) =
//! (X/m)^(l/…)`) and a numeric posynomial solver for general access
//! structures, cross-checked against the closed forms in tests.

/// An access structure: for each input access, the indices of the loop
/// variables appearing in it (e.g. LU's S2 over `(k,i,j) = (0,1,2)`:
/// `[[1,2], [1,0], [0,2]]`).
pub type Accesses = Vec<Vec<usize>>;

/// Numerically maximize `∏ x_t` subject to `Σ_j ∏_{k∈S_j} x_k ≤ X`,
/// `x ≥ 1`. Returns `(x, H)` where `H = ∏ x_t`.
///
/// Uses iterative proportional fitting on the KKT condition (at an interior
/// optimum, `Σ_{j∋t} P_j` is equal across variables, where `P_j` is access
/// `j`'s product), with bisection rescaling to keep the constraint active.
///
/// # Panics
/// If an access references a variable index ≥ `nvars`, or `x < m` where `m`
/// is the number of accesses (then even all-ones is infeasible).
pub fn maximize_h(accesses: &Accesses, nvars: usize, x_budget: f64) -> (Vec<f64>, f64) {
    for s in accesses {
        for &k in s {
            assert!(k < nvars, "access variable out of range");
        }
    }
    assert!(
        x_budget >= accesses.len() as f64,
        "X must be at least the number of accesses"
    );

    let constraint = |x: &[f64]| -> f64 {
        accesses
            .iter()
            .map(|s| s.iter().map(|&k| x[k]).product::<f64>())
            .sum()
    };

    // Variables appearing in no access would make H unbounded; pin them at
    // 1 (such programs violate the DAAP dominator structure anyway).
    let mut used = vec![false; nvars];
    for s in accesses {
        for &k in s {
            used[k] = true;
        }
    }

    // Scale the free variables (those > 1 after clamping) by a common
    // factor so the constraint is active.
    let rescale = |x: &mut Vec<f64>| {
        // Bisection on the multiplier applied to the used variables
        // (clamped at 1); the constraint is monotone in the multiplier.
        let (mut lo, mut hi) = (0.0_f64, 1.0_f64);
        // Grow hi until infeasible.
        let base = x.clone();
        let eval = |s: f64, base: &[f64]| {
            let scaled: Vec<f64> = base
                .iter()
                .enumerate()
                .map(|(t, &b)| if used[t] { (b * s).max(1.0) } else { 1.0 })
                .collect();
            constraint(&scaled)
        };
        while eval(hi, &base) < x_budget && hi < 1e18 {
            lo = hi;
            hi *= 2.0;
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi);
            if eval(mid, &base) <= x_budget {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        for (t, (xi, &b)) in x.iter_mut().zip(&base).enumerate() {
            *xi = if used[t] { (b * lo).max(1.0) } else { 1.0 };
        }
    };

    let mut x = vec![1.0_f64; nvars];
    rescale(&mut x);
    let mut last_h = 0.0_f64;
    for _ in 0..500 {
        // KKT balance: equalize Σ_{j∋t} P_j across variables.
        let prods: Vec<f64> = accesses
            .iter()
            .map(|s| s.iter().map(|&k| x[k]).product())
            .collect();
        let mut sums = vec![0.0_f64; nvars];
        for (j, s) in accesses.iter().enumerate() {
            for &k in s {
                sums[k] += prods[j];
            }
        }
        let active: Vec<usize> = (0..nvars).filter(|&t| sums[t] > 0.0).collect();
        if active.is_empty() {
            break;
        }
        let avg = active.iter().map(|&t| sums[t]).sum::<f64>() / active.len() as f64;
        for &t in &active {
            x[t] = (x[t] * (avg / sums[t]).powf(0.5)).max(1.0);
        }
        rescale(&mut x);
        let h: f64 = x.iter().product();
        if (h - last_h).abs() <= 1e-12 * h.abs() {
            break;
        }
        last_h = h;
    }
    let h = x.iter().product();
    (x, h)
}

/// `χ(X)` for a given access structure: the maximal `|H|` as a function of
/// the dominator budget.
pub fn chi(accesses: &Accesses, nvars: usize, x_budget: f64) -> f64 {
    maximize_h(accesses, nvars, x_budget).1
}

/// Find `X₀ = argmin_{X > M} χ(X)/(X − M)` by golden-section search in
/// `log X` over `(M, x_hi]`, returning `(X₀, ρ(X₀))`.
pub fn find_x0(chi_fn: &dyn Fn(f64) -> f64, m: f64, x_hi: f64) -> (f64, f64) {
    assert!(x_hi > m + 1.0, "search interval empty");
    let rho = |x: f64| chi_fn(x) / (x - m);
    let (mut a, mut b) = ((m + 1e-6).ln(), x_hi.ln());
    // Guard: evaluate on a coarse grid first to bracket the minimum (ρ can
    // be flat near M where χ≈0/0).
    let grid: Vec<f64> = (0..64).map(|i| a + (b - a) * i as f64 / 63.0).collect();
    let best = grid
        .iter()
        .copied()
        .min_by(|p, q| rho(p.exp()).partial_cmp(&rho(q.exp())).unwrap())
        .unwrap();
    let w = (b - a) / 63.0;
    a = (best - w).max((m + 1e-6).ln());
    b = best + w;
    let phi = (5.0_f64.sqrt() - 1.0) / 2.0;
    let (mut c, mut d) = (b - phi * (b - a), a + phi * (b - a));
    for _ in 0..90 {
        if rho(c.exp()) < rho(d.exp()) {
            b = d;
        } else {
            a = c;
        }
        c = b - phi * (b - a);
        d = a + phi * (b - a);
    }
    let x0 = (0.5 * (a + b)).exp();
    (x0, rho(x0))
}

/// End-to-end Lemma 2 for one statement: given its access structure, the
/// number of compute vertices, and fast-memory size `M`, return the I/O
/// lower bound `Q ≥ |V|·(X₀ − M)/χ(X₀)`.
pub fn statement_lower_bound(accesses: &Accesses, nvars: usize, n_compute: f64, m: f64) -> f64 {
    let chi_fn = |x: f64| chi(accesses, nvars, x);
    let (_, rho) = find_x0(&chi_fn, m, 64.0 * m + 1024.0);
    n_compute / rho
}

#[cfg(test)]
mod tests {
    use super::*;

    /// LU's S2 / matmul access structure over (k, i, j): IJ + IK + KJ ≤ X.
    fn mmm_accesses() -> Accesses {
        vec![vec![1, 2], vec![1, 0], vec![0, 2]]
    }

    #[test]
    fn balanced_case_matches_closed_form() {
        // The paper's §6.1 solution: K = I = J = √(X/3), H = (X/3)^{3/2}.
        for &x in &[30.0, 300.0, 3000.0] {
            let (vars, h) = maximize_h(&mmm_accesses(), 3, x);
            let expect = (x / 3.0_f64).powf(1.5);
            assert!(
                (h - expect).abs() / expect < 1e-3,
                "X={x}: H={h} expected {expect}"
            );
            let side = (x / 3.0_f64).sqrt();
            for v in vars {
                assert!((v - side).abs() / side < 1e-2);
            }
        }
    }

    #[test]
    fn x0_is_3m_for_matmul() {
        let chi_fn = |x: f64| chi(&mmm_accesses(), 3, x);
        for &m in &[64.0, 256.0, 1024.0] {
            let (x0, rho) = find_x0(&chi_fn, m, 100.0 * m);
            assert!((x0 - 3.0 * m).abs() / (3.0 * m) < 0.05, "m={m}: X0={x0}");
            // ρ(X0) = √M/2 (the paper's ρ_S2 bound).
            let expect = m.sqrt() / 2.0;
            assert!((rho - expect).abs() / expect < 0.05, "m={m}: ρ={rho}");
        }
    }

    #[test]
    fn statement_bound_reproduces_2n3_over_sqrtm() {
        // Q_mmm ≥ n³/(√M/2) = 2n³/√M for the n³ multiply vertices.
        let n: f64 = 512.0;
        let m = 256.0;
        let q = statement_lower_bound(&mmm_accesses(), 3, n * n * n, m);
        let expect = 2.0 * n * n * n / m.sqrt();
        assert!(
            (q - expect).abs() / expect < 0.05,
            "q={q} expected {expect}"
        );
    }

    #[test]
    fn unbalanced_structure_clamps_at_one() {
        // Two accesses: {0} and {0,1}: x0 + x0·x1 ≤ X. Maximizing x0·x1
        // wants all budget in the product: x0·x1 ≈ X/2 at x0 = x1 = √(X/2)…
        // check the solver respects the constraint and beats all-ones.
        let acc: Accesses = vec![vec![0], vec![0, 1]];
        let (vars, h) = maximize_h(&acc, 2, 100.0);
        let used = vars[0] + vars[0] * vars[1];
        assert!(used <= 100.0 * (1.0 + 1e-6), "constraint violated: {used}");
        assert!(h > 40.0, "H={h} should be close to the ~47 optimum");
    }

    #[test]
    fn single_variable_single_access() {
        // max x s.t. x ≤ X: trivially x = X.
        let acc: Accesses = vec![vec![0]];
        let (_, h) = maximize_h(&acc, 1, 77.0);
        assert!((h - 77.0).abs() < 1e-6);
    }

    #[test]
    fn variable_not_in_any_access_is_unbounded_guard() {
        // A variable appearing in no access would make H unbounded; the
        // solver must keep it clamped (we treat it as 1, the safe choice —
        // such programs violate the DAAP structure anyway).
        let acc: Accesses = vec![vec![0]];
        let (vars, _) = maximize_h(&acc, 2, 10.0);
        assert!((vars[0] - 10.0).abs() < 1e-6);
        // vars[1] stays at 1 (never scaled above: sums[1] = 0).
        assert!((vars[1] - 1.0).abs() < 1e-9);
    }
}
