//! The paper's concrete parallel I/O lower bounds (§6), both as closed
//! forms and re-derived through the generic optimization pipeline.
//!
//! * LU (§6.1): `Q ≥ (2N³ − 6N² + 4N)/(3P√M) + N(N−1)/(2P)`
//! * Cholesky (§6.2): `Q ≥ N³/(3P√M) + N²/(2P) + N/P` (leading terms)
//! * Matrix multiplication (Kwasniewski et al.): `Q ≥ 2N³/(P√M)`
//!
//! The parallel bounds follow from the sequential ones via Lemma 9: the
//! computational intensity is a property of the cDAG and `M` alone, so at
//! least one of `P` processors computes `|V|/P` vertices and performs
//! `|V|/(P·ρ)` I/O.

use crate::optimize::{find_x0, maximize_h, Accesses};

/// Parallel LU I/O lower bound (paper §6.1), in words per (busiest) rank.
///
/// `Q₁ = |V₁|/ρ₁ = N(N−1)/2` with `ρ₁ ≤ 1` (Lemma 6 on statement S1), and
/// `Q₂ = |V₂|/ρ₂` with `|V₂| = N(N−1)(N−2)/3`, `ρ₂ ≤ √M/2` (Lemma 3 + KKT).
pub fn lu_io_lower_bound(n: usize, p: usize, m: f64) -> f64 {
    let nf = n as f64;
    let pf = p as f64;
    let v2 = nf * (nf - 1.0) * (nf - 2.0) / 3.0;
    let v1 = nf * (nf - 1.0) / 2.0;
    2.0 * v2 / (pf * m.sqrt()) + v1 / pf
}

/// Parallel Cholesky I/O lower bound (paper §6.2), in words per rank.
pub fn cholesky_io_lower_bound(n: usize, p: usize, m: f64) -> f64 {
    let nf = n as f64;
    let pf = p as f64;
    let v3 = nf * (nf - 1.0) * (nf - 2.0) / 6.0;
    let v2 = nf * (nf - 1.0) / 2.0;
    let v1 = nf;
    2.0 * v3 / (pf * m.sqrt()) + v2 / pf + v1 / pf
}

/// Parallel matrix-multiplication I/O lower bound: `2N³/(P√M)` (the SC'19
/// X-partitioning result the paper builds on).
pub fn mmm_io_lower_bound(n: usize, p: usize, m: f64) -> f64 {
    let nf = n as f64;
    2.0 * nf * nf * nf / (p as f64 * m.sqrt())
}

/// Derive the Schur-statement intensity bound `ρ ≤ √M/2` *numerically*
/// through the generic pipeline (the access structure of LU's S2 /
/// Cholesky's S3 / MMM), returning `(X₀, ρ(X₀))`.
///
/// Used by tests to confirm the generic machinery reproduces the paper's
/// hand-derived constants.
pub fn schur_statement_rho(m: f64) -> (f64, f64) {
    // Accesses over (k, i, j): A[i,j], A[i,k], A[k,j].
    let acc: Accesses = vec![vec![1, 2], vec![1, 0], vec![0, 2]];
    let chi = |x: f64| maximize_h(&acc, 3, x).1;
    find_x0(&chi, m, 64.0 * m + 1024.0)
}

/// Input reuse (Lemma 7): the combined bound for statements `S` and `T`
/// sharing input array `Aᵢ` is `Q_S + Q_T − Reuse(Aᵢ)` with
/// `Reuse(Aᵢ) = min(|Aᵢ(R_S)|, |Aᵢ(R_T)|)`.
pub fn input_reuse_bound(q_s: f64, q_t: f64, reuse: f64) -> f64 {
    (q_s + q_t - reuse).max(q_s.max(q_t))
}

/// Output reuse (Lemma 8): the dominator size of a consumed set of size
/// `b` produced by a statement of intensity `ρ_s` is at least `b/ρ_s` —
/// i.e. cheap-to-recompute producers cannot shrink the consumer's
/// dominator below this.
pub fn output_reuse_dominator(b: f64, rho_s: f64) -> f64 {
    b / rho_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdag::{cholesky_cdag, lu_cdag, mmm_cdag};
    use crate::game::{greedy_schedule, verify};

    #[test]
    fn closed_forms_match_paper_constants() {
        let (n, p) = (1 << 14, 64);
        let m = 1e6;
        let lu = lu_io_lower_bound(n, p, m);
        let lead = 2.0 * (n as f64).powi(3) / (3.0 * p as f64 * m.sqrt());
        // The N²/(2P) term contributes √M·3/(4N) ≈ 4.6% here.
        assert!((lu - lead).abs() / lead < 0.06, "LU leading term");
        let ch = cholesky_io_lower_bound(n, p, m);
        let lead_ch = (n as f64).powi(3) / (3.0 * p as f64 * m.sqrt());
        assert!(
            (ch - lead_ch).abs() / lead_ch < 0.12,
            "Cholesky leading term"
        );
        assert!((lu / ch - 2.0).abs() < 0.1, "LU bound is 2× Cholesky's");
    }

    #[test]
    fn generic_pipeline_reproduces_sqrt_m_over_2() {
        for &m in &[128.0, 512.0, 2048.0] {
            let (x0, rho) = schur_statement_rho(m);
            assert!((x0 - 3.0 * m).abs() / (3.0 * m) < 0.05, "X0={x0} for m={m}");
            let expect = m.sqrt() / 2.0;
            assert!((rho - expect).abs() / expect < 0.05, "ρ={rho} for m={m}");
        }
    }

    /// The sandwich test: greedy pebbling (a valid schedule → upper bound)
    /// must cost at least the lower bound, for every kernel and memory size
    /// we can afford to enumerate.
    #[test]
    fn greedy_upper_bound_dominates_lower_bound() {
        for m in [6usize, 8, 16] {
            let mf = m as f64;
            for (name, g, lb) in [
                ("lu", lu_cdag(8), lu_io_lower_bound(8, 1, mf)),
                ("chol", cholesky_cdag(8), cholesky_io_lower_bound(8, 1, mf)),
                ("mmm", mmm_cdag(4), mmm_io_lower_bound(4, 1, mf)),
            ] {
                let moves = greedy_schedule(&g, m);
                let q = verify(&g, &moves, m).unwrap().q as f64;
                assert!(q >= lb, "{name} M={m}: greedy Q={q} below lower bound {lb}");
            }
        }
    }

    #[test]
    fn bounds_scale_correctly_with_p_and_m() {
        let base = lu_io_lower_bound(4096, 16, 1e4);
        assert!((lu_io_lower_bound(4096, 32, 1e4) - base / 2.0).abs() / base < 0.01);
        // 4× memory halves the leading term.
        let quarter = lu_io_lower_bound(4096, 16, 4e4);
        let lead = 2.0 * 4096.0_f64.powi(3) / (3.0 * 16.0 * 100.0);
        let lead4 = lead / 2.0;
        assert!((quarter - base) < 0.0 && (quarter - lead4).abs() / lead4 < 0.2);
    }

    #[test]
    fn reuse_lemmas_behave() {
        // Lemma 7 never drops below the larger individual bound.
        assert_eq!(input_reuse_bound(100.0, 50.0, 80.0), 100.0);
        assert_eq!(input_reuse_bound(100.0, 90.0, 30.0), 160.0);
        // Lemma 8: intensity 1 ⇒ dominator at least the set size (the LU
        // §6.1 argument that output reuse does not change |A₂(D)|).
        assert_eq!(output_reuse_dominator(64.0, 1.0), 64.0);
        assert!(output_reuse_dominator(64.0, 4.0) < 64.0);
    }
}
