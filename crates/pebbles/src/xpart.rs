//! X-partitions, dominator sets and minimum sets (paper §2.3.2–§2.3.3).
//!
//! An X-partition splits the cDAG's vertices into subcomputations with no
//! cyclic dependencies between them such that every subcomputation `H` has
//! `|Dom_min(H)| ≤ X` and `|Min(H)| ≤ X`. Finding *minimum* dominator sets
//! is hard in general; for validity checking we use the canonical dominator
//! set (frontier of `H`: external vertices with edges into `H` plus input
//! vertices inside `H`), which is always a legal dominator set, so a
//! partition passing the check is a valid X-partition. (The lower-bound
//! pipeline in [`crate::optimize`] bounds `|Dom_min|` analytically via
//! Lemma 3 instead.)

use crate::cdag::{Cdag, NodeId};
use std::collections::HashSet;

/// The canonical dominator set of `H`: every path from a graph input to a
/// vertex of `H` must pass through it. Consists of
/// * vertices of `H` that are graph inputs, and
/// * vertices *outside* `H` with an edge into `H`.
pub fn frontier_dominator(g: &Cdag, h: &[NodeId]) -> HashSet<NodeId> {
    let hset: HashSet<NodeId> = h.iter().copied().collect();
    let mut dom = HashSet::new();
    for &v in h {
        if g.preds[v].is_empty() {
            dom.insert(v);
        }
        for &p in &g.preds[v] {
            if !hset.contains(&p) {
                dom.insert(p);
            }
        }
    }
    dom
}

/// The minimum set `Min(H)`: vertices of `H` without an immediate
/// successor inside `H` (the outputs of the subcomputation).
pub fn min_set(g: &Cdag, h: &[NodeId]) -> HashSet<NodeId> {
    let hset: HashSet<NodeId> = h.iter().copied().collect();
    h.iter()
        .copied()
        .filter(|&v| g.succs[v].iter().all(|s| !hset.contains(s)))
        .collect()
}

/// Check that `parts` is a valid X-partition of `g`:
/// * the parts are disjoint and cover all vertices,
/// * the quotient graph over parts is acyclic,
/// * every part's canonical dominator set and minimum set have size ≤ `x`.
///
/// # Errors
/// A description of the first violated property.
pub fn check_x_partition(g: &Cdag, parts: &[Vec<NodeId>], x: usize) -> Result<(), String> {
    // Coverage and disjointness.
    let mut owner = vec![usize::MAX; g.len()];
    for (pi, part) in parts.iter().enumerate() {
        for &v in part {
            if v >= g.len() {
                return Err(format!("part {pi}: vertex {v} out of range"));
            }
            if owner[v] != usize::MAX {
                return Err(format!("vertex {v} in parts {} and {pi}", owner[v]));
            }
            owner[v] = pi;
        }
    }
    if let Some(v) = owner.iter().position(|&o| o == usize::MAX) {
        return Err(format!("vertex {v} not covered by any part"));
    }

    // Acyclicity of the quotient graph (Kahn's algorithm over parts).
    let np = parts.len();
    let mut edges: HashSet<(usize, usize)> = HashSet::new();
    for v in 0..g.len() {
        for &s in &g.succs[v] {
            let (a, b) = (owner[v], owner[s]);
            if a != b {
                edges.insert((a, b));
            }
        }
    }
    let mut indeg = vec![0usize; np];
    for &(_, b) in &edges {
        indeg[b] += 1;
    }
    let mut stack: Vec<usize> = (0..np).filter(|&p| indeg[p] == 0).collect();
    let mut seen = 0;
    while let Some(p) = stack.pop() {
        seen += 1;
        for &(a, b) in &edges {
            if a == p {
                indeg[b] -= 1;
                if indeg[b] == 0 {
                    stack.push(b);
                }
            }
        }
    }
    if seen != np {
        return Err("cyclic dependency between subcomputations".into());
    }

    // Set-size constraints.
    for (pi, part) in parts.iter().enumerate() {
        let dom = frontier_dominator(g, part);
        if dom.len() > x {
            return Err(format!("part {pi}: |Dom(H)| = {} > X = {x}", dom.len()));
        }
        let min = min_set(g, part);
        if min.len() > x {
            return Err(format!("part {pi}: |Min(H)| = {} > X = {x}", min.len()));
        }
    }
    Ok(())
}

/// Lemma 2 of Kwasniewski et al. (quoted as §2.3.3): an I/O-optimal
/// schedule with cost `Q` has an X-partition of size
/// `≤ (Q + X − M)/(X − M)`. This helper evaluates that size bound.
pub fn xpartition_size_bound(q: usize, x: usize, m: usize) -> f64 {
    assert!(x > m, "X must exceed M");
    (q + x - m) as f64 / (x - m) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cdag::{lu_cdag, mmm_cdag};

    #[test]
    fn frontier_dominator_of_whole_graph_is_inputs() {
        let g = lu_cdag(4);
        let all: Vec<NodeId> = (0..g.len()).collect();
        let dom = frontier_dominator(&g, &all);
        let inputs: HashSet<NodeId> = g.inputs().into_iter().collect();
        assert_eq!(dom, inputs);
    }

    #[test]
    fn min_set_of_whole_graph_is_outputs() {
        let g = lu_cdag(4);
        let all: Vec<NodeId> = (0..g.len()).collect();
        let min = min_set(&g, &all);
        let outputs: HashSet<NodeId> = g.outputs().into_iter().collect();
        assert_eq!(min, outputs);
    }

    #[test]
    fn trivial_partition_is_valid_for_large_x() {
        let g = mmm_cdag(3);
        let all: Vec<NodeId> = (0..g.len()).collect();
        assert!(check_x_partition(&g, &[all], g.len()).is_ok());
    }

    #[test]
    fn per_vertex_partition_is_valid() {
        // Each vertex alone: dominators are its preds (≤ 3), min is itself.
        let g = mmm_cdag(2);
        let parts: Vec<Vec<NodeId>> = (0..g.len()).map(|v| vec![v]).collect();
        assert!(check_x_partition(&g, &parts, 3).is_ok());
        assert!(
            check_x_partition(&g, &parts, 2).is_err(),
            "X=2 < in-degree 3"
        );
    }

    #[test]
    fn missing_vertex_is_rejected() {
        let g = mmm_cdag(2);
        let mut all: Vec<NodeId> = (0..g.len()).collect();
        all.pop();
        assert!(check_x_partition(&g, &[all], g.len())
            .unwrap_err()
            .contains("not covered"));
    }

    #[test]
    fn duplicate_vertex_is_rejected() {
        let g = mmm_cdag(2);
        let all: Vec<NodeId> = (0..g.len()).collect();
        let dup = vec![0];
        assert!(check_x_partition(&g, &[all, dup], g.len()).is_err());
    }

    #[test]
    fn cyclic_quotient_is_rejected() {
        // Chain a -> b -> c; parts {a, c} and {b} form a 2-cycle.
        let mut b = crate::cdag::Builder::new();
        b.compute(("b", &[0]), &[("a", &[0])]);
        b.compute(("c", &[0]), &[("b", &[0])]);
        let g = b.build();
        let a = g.inputs()[0];
        let cv = g.compute_vertices();
        let err = check_x_partition(&g, &[vec![a, cv[1]], vec![cv[0]]], 10).unwrap_err();
        assert!(err.contains("cyclic"), "{err}");
    }

    #[test]
    fn size_bound_matches_lemma() {
        // Q = 100, X = 20, M = 10: at most 11 subcomputations needed.
        assert!((xpartition_size_bound(100, 20, 10) - 11.0).abs() < 1e-12);
    }
}
