//! Property-based tests of the pebbling framework on *random* DAGs: the
//! greedy scheduler must always produce rule-conforming schedules, dominator
//! and minimum sets must satisfy their defining properties, and partitions
//! built from any topological slicing must validate.

use pebbles::cdag::{Builder, Cdag};
use pebbles::game::{greedy_schedule, verify};
use pebbles::xpart::{check_x_partition, frontier_dominator, min_set};
use proptest::prelude::*;

/// Build a random layered DAG: `layers × width` compute vertices, each
/// consuming 1–3 vertices from earlier layers (or fresh inputs).
fn random_dag(layers: usize, width: usize, edges: &[usize]) -> Cdag {
    let mut b = Builder::new();
    let mut prev: Vec<(String, Vec<usize>)> = Vec::new();
    let mut e = edges.iter().cycle();
    for l in 0..layers {
        let mut cur = Vec::new();
        for w in 0..width {
            let name = format!("v{l}");
            let idx = vec![w];
            let mut ins: Vec<(String, Vec<usize>)> = Vec::new();
            let fanin = 1 + e.next().unwrap() % 3;
            for f in 0..fanin {
                if prev.is_empty() || e.next().unwrap().is_multiple_of(4) {
                    // Fresh input vertex.
                    ins.push((format!("in{l}_{w}_{f}"), vec![0]));
                } else {
                    let pick = e.next().unwrap() % prev.len();
                    ins.push(prev[pick].clone());
                }
            }
            let ins_ref: Vec<(&str, &[usize])> = ins
                .iter()
                .map(|(a, i)| (a.as_str(), i.as_slice()))
                .collect();
            b.compute((&name, &idx), &ins_ref);
            cur.push((name, idx));
        }
        prev = cur;
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    #[test]
    fn greedy_schedules_are_always_valid(
        layers in 1usize..5,
        width in 1usize..5,
        edges in proptest::collection::vec(0usize..100, 8..32),
        extra_m in 0usize..12,
    ) {
        let g = random_dag(layers, width, &edges);
        let max_indeg = (0..g.len()).map(|v| g.preds[v].len()).max().unwrap_or(0);
        let m = max_indeg + 1 + extra_m;
        let moves = greedy_schedule(&g, m);
        let stats = verify(&g, &moves, m);
        prop_assert!(stats.is_ok(), "{:?}", stats.err());
    }

    #[test]
    fn more_memory_never_increases_greedy_io(
        layers in 2usize..5,
        width in 2usize..5,
        edges in proptest::collection::vec(0usize..100, 8..32),
    ) {
        let g = random_dag(layers, width, &edges);
        let max_indeg = (0..g.len()).map(|v| g.preds[v].len()).max().unwrap_or(0);
        let m_small = max_indeg + 1;
        let m_big = m_small + 64;
        let q_small = verify(&g, &greedy_schedule(&g, m_small), m_small).unwrap().q;
        let q_big = verify(&g, &greedy_schedule(&g, m_big), m_big).unwrap().q;
        prop_assert!(q_big <= q_small, "q({m_big})={q_big} > q({m_small})={q_small}");
    }

    #[test]
    fn dominator_and_min_set_properties(
        layers in 1usize..5,
        width in 1usize..5,
        edges in proptest::collection::vec(0usize..100, 8..32),
        cut in 0usize..100,
    ) {
        let g = random_dag(layers, width, &edges);
        // Take a topological prefix as H.
        let topo = g.topo_order();
        let k = 1 + cut % topo.len();
        let h: Vec<_> = topo[..k].to_vec();
        let dom = frontier_dominator(&g, &h);
        // Every vertex of the dominator is an input of H's closure: either
        // an input vertex inside H or an external predecessor.
        for &d in &dom {
            let inside = h.contains(&d);
            prop_assert!(
                !inside || g.preds[d].is_empty(),
                "dominator vertex {d} violates the frontier property"
            );
        }
        // Min set members have no successors inside H.
        let min = min_set(&g, &h);
        for &v in &min {
            for &s in &g.succs[v] {
                prop_assert!(!h.contains(&s));
            }
        }
        // A topological prefix + suffix is always a valid 2-partition for
        // X = |V| (sizes trivially bounded).
        let rest: Vec<_> = topo[k..].to_vec();
        let parts: Vec<Vec<_>> = if rest.is_empty() { vec![h] } else { vec![h, rest] };
        prop_assert!(check_x_partition(&g, &parts, g.len()).is_ok());
    }

    #[test]
    fn greedy_io_at_least_compulsory(
        layers in 1usize..4,
        width in 1usize..4,
        edges in proptest::collection::vec(0usize..100, 8..24),
    ) {
        // Any valid pebbling loads every used input at least once and
        // stores every output: Q ≥ used inputs + outputs.
        let g = random_dag(layers, width, &edges);
        let max_indeg = (0..g.len()).map(|v| g.preds[v].len()).max().unwrap_or(0);
        let m = max_indeg + 2;
        let stats = verify(&g, &greedy_schedule(&g, m), m).unwrap();
        let used_inputs = g
            .inputs()
            .into_iter()
            .filter(|&v| !g.succs[v].is_empty())
            .count();
        let outputs = g.outputs().into_iter().filter(|&v| !g.preds[v].is_empty()).count();
        prop_assert!(stats.loads >= used_inputs);
        prop_assert!(stats.stores >= outputs);
    }
}
