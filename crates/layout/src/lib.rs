//! Block-cyclic data layouts and redistribution.
//!
//! This crate is the workspace's substitute for the ScaLAPACK layout
//! machinery plus the COSTA layout-transformation library the paper uses for
//! its ScaLAPACK-compatible wrappers (paper §8, the `pdgetrf`/`pdpotrf`
//! drop-in interface): a [`BlockCyclic`] descriptor describes
//! how a global matrix is scattered over a 2D process grid, [`DistMatrix`]
//! pairs a descriptor with one rank's local storage, and [`redistribute`]
//! moves a distributed matrix between two arbitrary block-cyclic layouts
//! with measured communication.

pub mod desc;
pub mod dist;
pub mod redist;

pub use desc::{BlockCyclic, ScalapackDesc};
pub use dist::DistMatrix;
pub use redist::redistribute;
