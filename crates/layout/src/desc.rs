//! Block-cyclic layout descriptors.
//!
//! A block-cyclic layout chops the global `m × n` matrix into `rb × cb`
//! blocks and deals block `(B_i, B_j)` to process `(B_i mod Pr, B_j mod Pc)`
//! of a 2D grid — the distribution ScaLAPACK, MKL and SLATE all use, and the
//! one the paper's 2.5D layer-0 tiles form with `rb = cb = v`.

use xmpi::Grid2;

/// A block-cyclic distribution of an `m × n` matrix over a 2D process grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockCyclic {
    /// Global row count.
    pub m: usize,
    /// Global column count.
    pub n: usize,
    /// Row block size.
    pub rb: usize,
    /// Column block size.
    pub cb: usize,
    /// Process grid.
    pub grid: Grid2,
}

impl BlockCyclic {
    /// Create a descriptor.
    ///
    /// # Panics
    /// If any extent or block size is zero.
    pub fn new(m: usize, n: usize, rb: usize, cb: usize, grid: Grid2) -> Self {
        assert!(rb > 0 && cb > 0, "block sizes must be positive");
        BlockCyclic { m, n, rb, cb, grid }
    }

    /// Number of ranks the layout spans.
    pub fn nprocs(&self) -> usize {
        self.grid.size()
    }

    /// Grid coordinates of the process owning global entry `(i, j)`.
    pub fn owner_coords(&self, i: usize, j: usize) -> (usize, usize) {
        debug_assert!(i < self.m && j < self.n);
        (
            (i / self.rb) % self.grid.rows,
            (j / self.cb) % self.grid.cols,
        )
    }

    /// Rank of the process owning global entry `(i, j)`.
    pub fn owner(&self, i: usize, j: usize) -> usize {
        let (pi, pj) = self.owner_coords(i, j);
        self.grid.rank_of(pi, pj)
    }

    /// Number of local rows stored on process row `pi` (ScaLAPACK `numroc`).
    pub fn local_rows(&self, pi: usize) -> usize {
        numroc(self.m, self.rb, pi, self.grid.rows)
    }

    /// Number of local columns stored on process column `pj`.
    pub fn local_cols(&self, pj: usize) -> usize {
        numroc(self.n, self.cb, pj, self.grid.cols)
    }

    /// Map a global row to `(owner process row, local row)`.
    pub fn row_g2l(&self, i: usize) -> (usize, usize) {
        let b = i / self.rb;
        let off = i % self.rb;
        (b % self.grid.rows, (b / self.grid.rows) * self.rb + off)
    }

    /// Map a global column to `(owner process column, local column)`.
    pub fn col_g2l(&self, j: usize) -> (usize, usize) {
        let b = j / self.cb;
        let off = j % self.cb;
        (b % self.grid.cols, (b / self.grid.cols) * self.cb + off)
    }

    /// Map `(process row, local row)` back to the global row.
    pub fn row_l2g(&self, pi: usize, li: usize) -> usize {
        let lb = li / self.rb;
        let off = li % self.rb;
        (lb * self.grid.rows + pi) * self.rb + off
    }

    /// Map `(process column, local column)` back to the global column.
    pub fn col_l2g(&self, pj: usize, lj: usize) -> usize {
        let lb = lj / self.cb;
        let off = lj % self.cb;
        (lb * self.grid.cols + pj) * self.cb + off
    }

    /// Export as a ScaLAPACK `DESC` array (the 9-integer interface format),
    /// for interoperability documentation and tests.
    pub fn to_scalapack(&self) -> ScalapackDesc {
        ScalapackDesc {
            dtype: 1,
            ctxt: 0,
            m: self.m as i64,
            n: self.n as i64,
            mb: self.rb as i64,
            nb: self.cb as i64,
            rsrc: 0,
            csrc: 0,
            lld: self.local_rows(0).max(1) as i64,
        }
    }
}

/// The 9-integer ScaLAPACK array descriptor (`DESC_`), as documented in the
/// ScaLAPACK Users' Guide. `rsrc = csrc = 0` (this crate always roots the
/// distribution at process `(0,0)`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScalapackDesc {
    /// Descriptor type (1 = dense block-cyclic).
    pub dtype: i64,
    /// BLACS context handle (unused placeholder here).
    pub ctxt: i64,
    /// Global rows.
    pub m: i64,
    /// Global columns.
    pub n: i64,
    /// Row block size.
    pub mb: i64,
    /// Column block size.
    pub nb: i64,
    /// Process row holding the first block row.
    pub rsrc: i64,
    /// Process column holding the first block column.
    pub csrc: i64,
    /// Local leading dimension.
    pub lld: i64,
}

impl ScalapackDesc {
    /// Rebuild a [`BlockCyclic`] from a ScaLAPACK descriptor and grid shape.
    ///
    /// # Panics
    /// If the descriptor uses a nonzero source process (unsupported).
    pub fn to_block_cyclic(&self, grid: Grid2) -> BlockCyclic {
        assert_eq!(self.rsrc, 0, "nonzero RSRC unsupported");
        assert_eq!(self.csrc, 0, "nonzero CSRC unsupported");
        BlockCyclic::new(
            self.m as usize,
            self.n as usize,
            self.mb as usize,
            self.nb as usize,
            grid,
        )
    }
}

/// ScaLAPACK's `numroc`: the number of rows/columns of a dimension of extent
/// `n`, distributed in blocks of `nb` over `np` processes, that land on
/// process coordinate `p`.
pub fn numroc(n: usize, nb: usize, p: usize, np: usize) -> usize {
    let nblocks = n / nb;
    let mut cnt = (nblocks / np) * nb;
    let extra = nblocks % np;
    if p < extra {
        cnt += nb;
    } else if p == extra {
        cnt += n % nb;
    }
    cnt
}

#[cfg(test)]
mod tests {
    use super::*;

    fn desc(m: usize, n: usize, rb: usize, cb: usize, pr: usize, pc: usize) -> BlockCyclic {
        BlockCyclic::new(m, n, rb, cb, Grid2::new(pr, pc))
    }

    #[test]
    fn numroc_matches_manual_counts() {
        // 10 items, blocks of 3, 2 processes: blocks 0,2 -> p0 (3+3=6... block
        // 0 (3), block 2 (3), plus block 3 partial? blocks: 0,1,2 full, 3 has
        // 1 item. p0 gets blocks 0,2 => 6; p1 gets 1,3 => 3+1=4.
        assert_eq!(numroc(10, 3, 0, 2), 6);
        assert_eq!(numroc(10, 3, 1, 2), 4);
        // Exact division.
        assert_eq!(numroc(12, 3, 0, 2), 6);
        assert_eq!(numroc(12, 3, 1, 2), 6);
        // Single process gets everything.
        assert_eq!(numroc(7, 2, 0, 1), 7);
    }

    #[test]
    fn numroc_sums_to_total() {
        for n in [1usize, 5, 16, 37, 100] {
            for nb in [1usize, 2, 3, 7, 16] {
                for np in [1usize, 2, 3, 4, 5] {
                    let total: usize = (0..np).map(|p| numroc(n, nb, p, np)).sum();
                    assert_eq!(total, n, "n={n} nb={nb} np={np}");
                }
            }
        }
    }

    #[test]
    fn g2l_l2g_roundtrip() {
        let d = desc(37, 23, 4, 3, 3, 2);
        for i in 0..37 {
            let (pi, li) = d.row_g2l(i);
            assert_eq!(d.row_l2g(pi, li), i);
            assert!(li < d.local_rows(pi));
        }
        for j in 0..23 {
            let (pj, lj) = d.col_g2l(j);
            assert_eq!(d.col_l2g(pj, lj), j);
            assert!(lj < d.local_cols(pj));
        }
    }

    #[test]
    fn owner_is_consistent_with_g2l() {
        let d = desc(16, 16, 2, 2, 2, 2);
        for i in 0..16 {
            for j in 0..16 {
                let (pi, _) = d.row_g2l(i);
                let (pj, _) = d.col_g2l(j);
                assert_eq!(d.owner(i, j), d.grid.rank_of(pi, pj));
            }
        }
    }

    #[test]
    fn scalapack_desc_roundtrip() {
        let d = desc(100, 80, 8, 8, 2, 3);
        let sd = d.to_scalapack();
        assert_eq!(sd.m, 100);
        assert_eq!(sd.nb, 8);
        let back = sd.to_block_cyclic(Grid2::new(2, 3));
        assert_eq!(back, d);
    }
}
