//! Layout redistribution — the COSTA substitute.
//!
//! Transforms a distributed matrix from one block-cyclic layout to another
//! (different block sizes and/or different grids, over the same
//! communicator). Every rank walks its local rows, splits each row into the
//! maximal runs that stay within one destination column block, and ships the
//! runs to their new owners in one message per destination; receivers write
//! runs into their new shard. Wire format per destination: an index buffer
//! of `(global row, global col start, len)` triples plus one element buffer,
//! so the measured overhead over the raw payload is explicit and small for
//! block runs.
//!
//! Layouts may span a *subset* of the communicator (grids of size `q ≤ P`
//! occupy ranks `0..q`): that is how a ScaLAPACK caller's full-machine
//! layout is staged onto the layer-0 grid of a 2.5D decomposition.

use crate::desc::BlockCyclic;
use crate::dist::DistMatrix;
use xmpi::Comm;

/// User-tag base for redistribution traffic.
const TAG_REDIST: u64 = 7_000_000;

/// Redistribute between layouts that both span the whole communicator.
/// Convenience wrapper over [`redistribute_subset`].
///
/// # Panics
/// On descriptor mismatch (extents or process counts).
pub fn redistribute(comm: &Comm, src: &DistMatrix, dst_desc: BlockCyclic) -> DistMatrix {
    assert_eq!(
        src.desc.nprocs(),
        comm.size(),
        "source layout does not span communicator"
    );
    assert_eq!(
        dst_desc.nprocs(),
        comm.size(),
        "target layout does not span communicator"
    );
    redistribute_subset(comm, Some(src), dst_desc).expect("rank is inside the target grid")
}

/// Redistribute where source and/or target layouts occupy only ranks
/// `0..q` of the communicator.
///
/// Collective over the *whole* communicator: ranks inside the source grid
/// pass `Some(shard)`, others `None`; the return is `Some(new shard)` on
/// ranks inside the target grid, `None` elsewhere.
///
/// # Panics
/// If a rank's `src` presence disagrees with the source grid, or on
/// extent/descriptor mismatch.
pub fn redistribute_subset(
    comm: &Comm,
    src: Option<&DistMatrix>,
    dst_desc: BlockCyclic,
) -> Option<DistMatrix> {
    let p = comm.size();
    let me = comm.rank();
    assert!(
        dst_desc.nprocs() <= p,
        "target layout larger than communicator"
    );

    // Consistency between this rank's src argument and the source grid.
    if let Some(s) = src {
        assert_eq!(s.desc.m, dst_desc.m, "redistribute: row extents differ");
        assert_eq!(s.desc.n, dst_desc.n, "redistribute: column extents differ");
        assert!(me < s.desc.nprocs(), "rank outside source grid passed Some");
    }
    // Every rank learns the source grid's extent (collective: rank 0 is
    // always inside the source grid and broadcasts it).
    let q_src = src_grid_size(comm, src);

    // Pack runs per destination rank.
    let q_dst = dst_desc.nprocs();
    let mut meta: Vec<Vec<u64>> = vec![Vec::new(); q_dst];
    let mut data: Vec<Vec<f64>> = vec![Vec::new(); q_dst];
    if let Some(src) = src {
        let sd = &src.desc;
        let (spi, spj) = src.coords;
        let lr = src.local.rows();
        let lc = src.local.cols();
        for li in 0..lr {
            let gi = sd.row_l2g(spi, li);
            let (dpi, _) = dst_desc.row_g2l(gi);
            let mut lj = 0;
            while lj < lc {
                let gj = sd.col_l2g(spj, lj);
                // The run may extend while both source-local columns and the
                // destination column block stay contiguous.
                let src_block_left = sd.cb - (gj % sd.cb);
                let dst_block_left = dst_desc.cb - (gj % dst_desc.cb);
                let run = src_block_left.min(dst_block_left).min(lc - lj);
                let (dpj, _) = dst_desc.col_g2l(gj);
                let dst = dst_desc.grid.rank_of(dpi, dpj);
                meta[dst].extend_from_slice(&[gi as u64, gj as u64, run as u64]);
                data[dst].extend_from_slice(&src.local.row(li)[lj..lj + run]);
                lj += run;
            }
        }
    }

    let mut out = (me < q_dst).then(|| DistMatrix::zeros(dst_desc, dst_desc.grid.coords(me)));
    let write_runs = |out: &mut DistMatrix, meta: &[u64], data: &[f64]| {
        let (dpi, dpj) = out.coords;
        let mut off = 0;
        for t in meta.chunks_exact(3) {
            let (gi, gj, len) = (t[0] as usize, t[1] as usize, t[2] as usize);
            let (opi, li) = out.desc.row_g2l(gi);
            let (opj, lj0) = out.desc.col_g2l(gj);
            debug_assert_eq!((opi, opj), (dpi, dpj), "run routed to wrong rank");
            out.local.row_mut(li)[lj0..lj0 + len].copy_from_slice(&data[off..off + len]);
            off += len;
        }
        debug_assert_eq!(off, data.len());
    };

    // Every source rank sends to every destination rank (possibly empty
    // messages keep the protocol static and deadlock-free).
    if src.is_some() {
        for dst in 0..q_dst {
            if dst == me {
                continue;
            }
            comm.send_u64(dst, TAG_REDIST, &meta[dst]);
            comm.send_f64(dst, TAG_REDIST, &data[dst]);
        }
    }
    if let Some(out) = out.as_mut() {
        if src.is_some() && me < q_dst {
            write_runs(out, &meta[me], &data[me]);
        }
        for srcr in 0..q_src {
            if srcr == me {
                continue;
            }
            let m = comm.recv_u64(srcr, TAG_REDIST);
            let d = comm.recv_f64(srcr, TAG_REDIST);
            write_runs(out, &m, &d);
        }
    }
    out
}

/// Every rank must know the source grid's extent to post receives; it is
/// agreed out of band by the collective contract (all ranks call with
/// layouts of the same grids), so the ranks holding a shard simply use its
/// descriptor and the others learn it from rank 0's broadcast.
fn src_grid_size(comm: &Comm, src: Option<&DistMatrix>) -> usize {
    // The source grid always includes rank 0; it broadcasts the size.
    let mut buf = vec![src.map_or(0.0, |s| s.desc.nprocs() as f64)];
    comm.bcast_f64(0, &mut buf);
    buf[0] as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::assemble;
    use dense::gen::random_matrix;
    use xmpi::{run, Grid2};

    fn roundtrip(m: usize, n: usize, src: BlockCyclic, dst: BlockCyclic, seed: u64) {
        let a = random_matrix(m, n, seed);
        let aref = a.clone();
        let p = src.nprocs();
        let out = run(p, |comm| {
            let mine = DistMatrix::from_global(src, src.grid.coords(comm.rank()), &a);
            redistribute(comm, &mine, dst)
        });
        let back = assemble(&dst, &out.results);
        assert_eq!(back, aref);
    }

    #[test]
    fn same_layout_is_identity() {
        let d = BlockCyclic::new(16, 16, 4, 4, Grid2::new(2, 2));
        roundtrip(16, 16, d, d, 1);
    }

    #[test]
    fn change_block_size() {
        let s = BlockCyclic::new(20, 20, 4, 4, Grid2::new(2, 2));
        let t = BlockCyclic::new(20, 20, 3, 5, Grid2::new(2, 2));
        roundtrip(20, 20, s, t, 2);
    }

    #[test]
    fn change_grid_shape() {
        let s = BlockCyclic::new(24, 18, 4, 3, Grid2::new(2, 3));
        let t = BlockCyclic::new(24, 18, 4, 3, Grid2::new(3, 2));
        roundtrip(24, 18, s, t, 3);
    }

    #[test]
    fn change_everything_irregular_sizes() {
        let s = BlockCyclic::new(23, 17, 5, 2, Grid2::new(2, 2));
        let t = BlockCyclic::new(23, 17, 3, 7, Grid2::new(4, 1));
        roundtrip(23, 17, s, t, 4);
    }

    #[test]
    fn single_rank_redistribution() {
        let s = BlockCyclic::new(9, 9, 2, 2, Grid2::new(1, 1));
        let t = BlockCyclic::new(9, 9, 4, 3, Grid2::new(1, 1));
        roundtrip(9, 9, s, t, 5);
    }

    #[test]
    fn shrink_onto_a_rank_subset_and_back() {
        // 8-rank world; source spans all 8, target only the first 4 (a
        // 2.5D layer-0 grid), then back out to all 8.
        let n = 24;
        let a = random_matrix(n, n, 6);
        let full = BlockCyclic::new(n, n, 3, 5, Grid2::new(2, 4));
        let sub = BlockCyclic::new(n, n, 4, 4, Grid2::new(2, 2));
        let aref = a.clone();
        let out = run(8, |comm| {
            let mine = DistMatrix::from_global(full, full.grid.coords(comm.rank()), &a);
            let staged = redistribute_subset(comm, Some(&mine), sub);
            assert_eq!(staged.is_some(), comm.rank() < 4);
            // And back out to the full layout.
            let back = redistribute_subset(comm, staged.as_ref(), full);
            back.expect("full layout covers every rank")
        });
        let back = assemble(&full, &out.results);
        assert_eq!(back, aref);
    }

    #[test]
    fn volume_is_bounded_by_matrix_size_plus_headers() {
        let m = 32;
        let n = 32;
        let s = BlockCyclic::new(m, n, 4, 4, Grid2::new(2, 2));
        let t = BlockCyclic::new(m, n, 8, 8, Grid2::new(4, 1));
        let a = random_matrix(m, n, 6);
        let out = run(4, |comm| {
            let mine = DistMatrix::from_global(s, s.grid.coords(comm.rank()), &a);
            redistribute(comm, &mine, t)
        });
        let payload = (m * n * 8) as u64;
        assert!(out.stats.total_bytes_sent() <= payload + payload * 3 / 4 + 4096);
        assert!(out.stats.total_bytes_sent() > 0);
    }
}
