//! One rank's shard of a block-cyclic distributed matrix.

use crate::desc::BlockCyclic;
use dense::Matrix;

/// A distributed matrix as seen by one rank: the layout descriptor plus this
/// rank's local storage (rows/columns packed in block-cyclic local order,
/// exactly ScaLAPACK's local storage convention transposed to row-major).
#[derive(Debug, Clone)]
pub struct DistMatrix {
    /// The layout.
    pub desc: BlockCyclic,
    /// Grid coordinates of this rank.
    pub coords: (usize, usize),
    /// Local shard, `desc.local_rows(pi) × desc.local_cols(pj)`.
    pub local: Matrix,
}

impl DistMatrix {
    /// Create a zero-initialized shard for the rank at `coords`.
    pub fn zeros(desc: BlockCyclic, coords: (usize, usize)) -> Self {
        let local = Matrix::zeros(desc.local_rows(coords.0), desc.local_cols(coords.1));
        DistMatrix {
            desc,
            coords,
            local,
        }
    }

    /// Build this rank's shard directly from a globally-replicated matrix
    /// (no communication — used to stage test inputs).
    ///
    /// # Panics
    /// If `global` does not match the descriptor's extents.
    pub fn from_global(desc: BlockCyclic, coords: (usize, usize), global: &Matrix) -> Self {
        assert_eq!(global.rows(), desc.m);
        assert_eq!(global.cols(), desc.n);
        let (pi, pj) = coords;
        let lr = desc.local_rows(pi);
        let lc = desc.local_cols(pj);
        let local = Matrix::from_fn(lr, lc, |li, lj| {
            global[(desc.row_l2g(pi, li), desc.col_l2g(pj, lj))]
        });
        DistMatrix {
            desc,
            coords,
            local,
        }
    }

    /// Read the global entry `(i, j)`.
    ///
    /// # Panics
    /// If this rank does not own the entry.
    pub fn get_global(&self, i: usize, j: usize) -> f64 {
        let (pi, li) = self.desc.row_g2l(i);
        let (pj, lj) = self.desc.col_g2l(j);
        assert_eq!(
            (pi, pj),
            self.coords,
            "entry ({i},{j}) not owned by this rank"
        );
        self.local[(li, lj)]
    }

    /// Write the global entry `(i, j)`.
    ///
    /// # Panics
    /// If this rank does not own the entry.
    pub fn set_global(&mut self, i: usize, j: usize, v: f64) {
        let (pi, li) = self.desc.row_g2l(i);
        let (pj, lj) = self.desc.col_g2l(j);
        assert_eq!(
            (pi, pj),
            self.coords,
            "entry ({i},{j}) not owned by this rank"
        );
        self.local[(li, lj)] = v;
    }

    /// Does this rank own global entry `(i, j)`?
    pub fn owns(&self, i: usize, j: usize) -> bool {
        let (pi, _) = self.desc.row_g2l(i);
        let (pj, _) = self.desc.col_g2l(j);
        (pi, pj) == self.coords
    }
}

/// Reassemble a global matrix from every rank's shard (shards indexed by
/// rank, as collected from [`xmpi::run`] results).
///
/// # Panics
/// If shards are missing or inconsistent with the descriptor.
pub fn assemble(desc: &BlockCyclic, shards: &[DistMatrix]) -> Matrix {
    assert_eq!(shards.len(), desc.nprocs(), "need one shard per rank");
    Matrix::from_fn(desc.m, desc.n, |i, j| {
        let rank = desc.owner(i, j);
        shards[rank].get_global(i, j)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dense::gen::random_matrix;
    use xmpi::Grid2;

    #[test]
    fn shard_and_assemble_roundtrip() {
        let desc = BlockCyclic::new(19, 13, 3, 2, Grid2::new(2, 3));
        let a = random_matrix(19, 13, 1);
        let shards: Vec<DistMatrix> = (0..6)
            .map(|r| DistMatrix::from_global(desc, desc.grid.coords(r), &a))
            .collect();
        let back = assemble(&desc, &shards);
        assert_eq!(back, a);
    }

    #[test]
    fn get_set_global() {
        let desc = BlockCyclic::new(8, 8, 2, 2, Grid2::new(2, 2));
        let mut d = DistMatrix::zeros(desc, (1, 0));
        // Global (2,0): row block 1 -> process row 1; col block 0 -> col 0.
        assert!(d.owns(2, 0));
        d.set_global(2, 0, 5.0);
        assert_eq!(d.get_global(2, 0), 5.0);
        assert!(!d.owns(0, 0));
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn foreign_entry_access_panics() {
        let desc = BlockCyclic::new(8, 8, 2, 2, Grid2::new(2, 2));
        let d = DistMatrix::zeros(desc, (0, 0));
        let _ = d.get_global(2, 0);
    }

    #[test]
    fn local_shapes_cover_matrix() {
        let desc = BlockCyclic::new(23, 17, 4, 4, Grid2::new(3, 2));
        let total: usize = (0..6)
            .map(|r| {
                let (pi, pj) = desc.grid.coords(r);
                desc.local_rows(pi) * desc.local_cols(pj)
            })
            .sum();
        assert_eq!(total, 23 * 17);
    }
}
