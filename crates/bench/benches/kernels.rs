//! Criterion microbenchmarks for the local dense kernels — the building
//! blocks whose efficiency Table 1 assumes (`gemm`, `gemmt`, `trsm`,
//! `getrf`, `potrf`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dense::gemm::{gemm, gemmt, par_gemm, CUplo, Trans};
use dense::gen::{random_matrix, random_spd};
use dense::getrf::getrf;
use dense::potrf::potrf;
use dense::trsm::{trsm, Diag, Side, Uplo};
use dense::Matrix;
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut g = c.benchmark_group("gemm");
    for n in [64usize, 128, 256] {
        let a = random_matrix(n, n, 1);
        let b = random_matrix(n, n, 2);
        g.throughput(Throughput::Elements((2 * n * n * n) as u64));
        g.bench_with_input(BenchmarkId::new("seq", n), &n, |bench, _| {
            let mut out = Matrix::zeros(n, n);
            bench.iter(|| {
                gemm(
                    Trans::N,
                    Trans::N,
                    1.0,
                    a.as_ref(),
                    b.as_ref(),
                    0.0,
                    out.as_mut(),
                );
                black_box(out.data()[0])
            });
        });
        g.bench_with_input(BenchmarkId::new("par", n), &n, |bench, _| {
            let mut out = Matrix::zeros(n, n);
            bench.iter(|| {
                par_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, out.as_mut());
                black_box(out.data()[0])
            });
        });
    }
    g.finish();
}

fn bench_gemmt_vs_gemm(c: &mut Criterion) {
    // Table 1's observation: the symmetric update does half the flops.
    let n = 192;
    let k = 16;
    let a = random_matrix(n, k, 3);
    let mut g = c.benchmark_group("rank_k_update");
    g.bench_function("gemm_full", |bench| {
        let mut out = Matrix::zeros(n, n);
        bench.iter(|| {
            gemm(
                Trans::N,
                Trans::T,
                -1.0,
                a.as_ref(),
                a.as_ref(),
                1.0,
                out.as_mut(),
            );
            black_box(out.data()[0])
        });
    });
    g.bench_function("gemmt_lower", |bench| {
        let mut out = Matrix::zeros(n, n);
        bench.iter(|| {
            gemmt(
                CUplo::Lower,
                Trans::N,
                Trans::T,
                -1.0,
                a.as_ref(),
                a.as_ref(),
                1.0,
                out.as_mut(),
            );
            black_box(out.data()[0])
        });
    });
    g.finish();
}

fn bench_trsm(c: &mut Criterion) {
    let n = 64;
    let nrhs = 256;
    let a = {
        let mut t = random_matrix(n, n, 4);
        for i in 0..n {
            t[(i, i)] = 4.0 + t[(i, i)].abs();
        }
        t
    };
    let b = random_matrix(n, nrhs, 5);
    c.bench_function("trsm_left_lower_64x256", |bench| {
        bench.iter(|| {
            let mut x = b.clone();
            trsm(
                Side::Left,
                Uplo::Lower,
                Trans::N,
                Diag::NonUnit,
                1.0,
                a.as_ref(),
                x.as_mut(),
            );
            black_box(x.data()[0])
        });
    });
}

fn bench_factorizations(c: &mut Criterion) {
    let mut g = c.benchmark_group("sequential_factor");
    for n in [64usize, 128, 256] {
        let a = random_matrix(n, n, 6);
        g.bench_with_input(BenchmarkId::new("getrf", n), &n, |bench, _| {
            bench.iter(|| {
                let mut w = a.clone();
                black_box(getrf(&mut w, 32).unwrap().len())
            });
        });
        let spd = random_spd(n, 7);
        g.bench_with_input(BenchmarkId::new("potrf", n), &n, |bench, _| {
            bench.iter(|| {
                let mut w = spd.clone();
                potrf(&mut w, 32).unwrap();
                black_box(w.data()[0])
            });
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows keep `cargo bench --workspace` under a
    // few minutes while remaining statistically useful.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_gemm, bench_gemmt_vs_gemm, bench_trsm, bench_factorizations
}
criterion_main!(benches);
