//! End-to-end criterion benchmarks of the distributed factorization
//! schedules on the simulated machine — one benchmark per implementation
//! class compared in the paper (the wall-clock here is simulation cost, not
//! modelled machine time; it tracks schedule complexity and message
//! counts).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dense::gen::{random_matrix, random_spd};
use factor::confchox::ConfchoxConfig;
use factor::conflux::ConfluxConfig;
use factor::lu25d_swap::{lu25d_swap, SwapLuConfig};
use factor::twod::TwodConfig;
use factor::{confchox_cholesky, conflux_lu, twod_cholesky, twod_lu};
use std::hint::black_box;
use xmpi::{Grid2, Grid3};

fn bench_lu_schedules(c: &mut Criterion) {
    let mut g = c.benchmark_group("lu_schedules_p8");
    g.sample_size(10);
    for n in [64usize, 128] {
        let a = random_matrix(n, n, 1);
        let grid = Grid3::new(2, 2, 2);
        g.bench_with_input(BenchmarkId::new("conflux", n), &n, |bench, _| {
            let cfg = ConfluxConfig::new(n, 8, grid).volume_only();
            bench.iter(|| black_box(conflux_lu(&cfg, &a).unwrap().stats.total_bytes_sent()));
        });
        g.bench_with_input(BenchmarkId::new("swap_25d", n), &n, |bench, _| {
            let cfg = SwapLuConfig::new(n, 8, grid).volume_only();
            bench.iter(|| black_box(lu25d_swap(&cfg, &a).unwrap().stats.total_bytes_sent()));
        });
        g.bench_with_input(BenchmarkId::new("twod", n), &n, |bench, _| {
            let cfg = TwodConfig::new(n, 8, Grid2::new(2, 4)).volume_only();
            bench.iter(|| black_box(twod_lu(&cfg, &a).unwrap().stats.total_bytes_sent()));
        });
    }
    g.finish();
}

fn bench_cholesky_schedules(c: &mut Criterion) {
    let mut g = c.benchmark_group("cholesky_schedules_p8");
    g.sample_size(10);
    for n in [64usize, 128] {
        let a = random_spd(n, 2);
        g.bench_with_input(BenchmarkId::new("confchox", n), &n, |bench, _| {
            let cfg = ConfchoxConfig::new(n, 8, Grid3::new(2, 2, 2)).volume_only();
            bench.iter(|| {
                black_box(
                    confchox_cholesky(&cfg, &a)
                        .unwrap()
                        .stats
                        .total_bytes_sent(),
                )
            });
        });
        g.bench_with_input(BenchmarkId::new("twod", n), &n, |bench, _| {
            let cfg = TwodConfig::new(n, 8, Grid2::new(2, 4)).volume_only();
            bench.iter(|| black_box(twod_cholesky(&cfg, &a).unwrap().stats.total_bytes_sent()));
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows keep `cargo bench --workspace` under a
    // few minutes while remaining statistically useful.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_lu_schedules, bench_cholesky_schedules
}
criterion_main!(benches);
