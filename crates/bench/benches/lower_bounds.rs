//! Criterion benchmarks of the lower-bound framework: cDAG construction,
//! greedy pebbling, and the KKT/posynomial optimizer.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pebbles::cdag::{cholesky_cdag, lu_cdag};
use pebbles::game::{greedy_schedule, verify};
use pebbles::optimize::{chi, find_x0};
use std::hint::black_box;

fn bench_cdag_build(c: &mut Criterion) {
    let mut g = c.benchmark_group("cdag_build");
    for n in [8usize, 16, 24] {
        g.bench_with_input(BenchmarkId::new("lu", n), &n, |bench, &n| {
            bench.iter(|| black_box(lu_cdag(n).len()));
        });
        g.bench_with_input(BenchmarkId::new("cholesky", n), &n, |bench, &n| {
            bench.iter(|| black_box(cholesky_cdag(n).len()));
        });
    }
    g.finish();
}

fn bench_greedy_pebbling(c: &mut Criterion) {
    let mut g = c.benchmark_group("greedy_pebbling");
    g.sample_size(10);
    for (n, m) in [(8usize, 16usize), (10, 16), (12, 32)] {
        let dag = lu_cdag(n);
        g.bench_with_input(
            BenchmarkId::new("lu", format!("n{n}_m{m}")),
            &m,
            |bench, &m| {
                bench.iter(|| {
                    let moves = greedy_schedule(&dag, m);
                    black_box(verify(&dag, &moves, m).unwrap().q)
                });
            },
        );
    }
    g.finish();
}

fn bench_optimizer(c: &mut Criterion) {
    let acc = vec![vec![1usize, 2], vec![1, 0], vec![0, 2]];
    c.bench_function("kkt_chi", |bench| {
        bench.iter(|| black_box(chi(&acc, 3, 3000.0)));
    });
    c.bench_function("x0_search", |bench| {
        let chi_fn = |x: f64| chi(&acc, 3, x);
        bench.iter(|| black_box(find_x0(&chi_fn, 1024.0, 65536.0)));
    });
}

criterion_group! {
    name = benches;
    // Short measurement windows keep `cargo bench --workspace` under a
    // few minutes while remaining statistically useful.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_cdag_build, bench_greedy_pebbling, bench_optimizer
}
criterion_main!(benches);
