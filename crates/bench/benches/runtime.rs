//! Criterion benchmarks of the `xmpi` runtime primitives: world spin-up,
//! point-to-point transfer, and the collectives the factorization schedules
//! lean on.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use xmpi::run;

fn bench_world_spinup(c: &mut Criterion) {
    let mut g = c.benchmark_group("world_spinup");
    for p in [2usize, 8, 16] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |bench, &p| {
            bench.iter(|| {
                let out = run(p, |comm| comm.rank());
                black_box(out.results.len())
            });
        });
    }
    g.finish();
}

fn bench_pingpong(c: &mut Criterion) {
    let mut g = c.benchmark_group("pingpong");
    for len in [64usize, 4096, 65536] {
        g.throughput(Throughput::Bytes((len * 8) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(len), &len, |bench, &len| {
            bench.iter(|| {
                let out = run(2, |comm| {
                    let data = vec![1.0_f64; len];
                    if comm.rank() == 0 {
                        for i in 0..8 {
                            comm.send_f64(1, i, &data);
                            black_box(comm.recv_f64(1, i).len());
                        }
                    } else {
                        for i in 0..8 {
                            let v = comm.recv_f64(0, i);
                            comm.send_f64(0, i, &v);
                        }
                    }
                });
                black_box(out.stats.total_bytes_sent())
            });
        });
    }
    g.finish();
}

fn bench_collectives(c: &mut Criterion) {
    let mut g = c.benchmark_group("collectives_p8_4k");
    let len = 4096;
    g.bench_function("bcast", |bench| {
        bench.iter(|| {
            let out = run(8, |comm| {
                let mut buf = if comm.rank() == 0 {
                    vec![1.0; len]
                } else {
                    vec![]
                };
                comm.bcast_f64(0, &mut buf);
                buf.len()
            });
            black_box(out.results[7])
        });
    });
    g.bench_function("allreduce", |bench| {
        bench.iter(|| {
            let out = run(8, |comm| {
                let mut buf = vec![comm.rank() as f64; len];
                comm.allreduce_sum(&mut buf);
                buf[0]
            });
            black_box(out.results[0])
        });
    });
    g.bench_function("allgather", |bench| {
        bench.iter(|| {
            let out = run(8, |comm| {
                let pieces = comm.allgather_f64(&vec![1.0; len / 8]);
                pieces.len()
            });
            black_box(out.results[0])
        });
    });
    g.finish();
}

criterion_group! {
    name = benches;
    // Short measurement windows keep `cargo bench --workspace` under a
    // few minutes while remaining statistically useful.
    config = Criterion::default()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_world_spinup, bench_pingpong, bench_collectives
}
criterion_main!(benches);
