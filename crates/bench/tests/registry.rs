//! Integration tests for the experiments engine: registry round-trips,
//! dedup, trend behavior on thin histories, and the committed negative
//! control — an injected GFLOP/s regression must trip `bench ablate check`.

use bench::ablate::run_ablation;
use bench::plan::{parse_toml, AblationPlan};
use bench::provenance::Stamp;
use bench::registry::{rows_for, Query, RegRow, Registry};
use bench::trend::{baseline, check_outcomes, series, BreachKind};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};

/// A fresh registry directory per test (unique under the target temp dir).
fn scratch(tag: &str) -> PathBuf {
    static SEQ: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bench-registry-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn stamp_at(commit: &str, unix: u64) -> Stamp {
    Stamp {
        commit: commit.to_string(),
        machine: "test-machine".to_string(),
        timestamp: format!("t{unix}"),
        unix_secs: unix,
        plan_hash: None,
    }
}

fn kpis(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
    pairs.iter().map(|&(k, v)| (k.to_string(), v)).collect()
}

#[test]
fn append_then_query_round_trips() {
    let reg = Registry::new(scratch("roundtrip"));
    let stamp = stamp_at("abc123", 100);
    let m = kpis(&[("gflops", 1.5), ("comm_factor", 3.0)]);
    let (rows, record) = rows_for(&stamp, "unit", "hash1", "cell=a", &m);
    let out = reg.append(&rows, &[record]).unwrap();
    assert_eq!(out.appended, 2);
    assert_eq!(out.deduped, 0);

    let loaded = reg.load().unwrap();
    assert_eq!(loaded.len(), 2);
    let q = Query {
        kpi: Some("gflops".into()),
        commit: Some("abc".into()),
        ..Query::default()
    };
    let hits: Vec<&RegRow> = loaded.iter().filter(|r| q.matches(r)).collect();
    assert_eq!(hits.len(), 1);
    assert_eq!(hits[0].value, 1.5);
    assert_eq!(hits[0].plan, "unit");

    // The JSONL sidecar holds one parseable record per cell.
    let jsonl = std::fs::read_to_string(reg.jsonl_path()).unwrap();
    let rec = serde_json::from_str(jsonl.lines().next().unwrap()).unwrap();
    assert_eq!(rec["provenance"]["commit"], "abc123");
    assert_eq!(rec["kpis"]["comm_factor"], 3.0);
}

#[test]
fn reappending_the_same_run_is_deduped() {
    let reg = Registry::new(scratch("dedup"));
    let stamp = stamp_at("abc123", 100);
    let m = kpis(&[("gflops", 1.5)]);
    let (rows, record) = rows_for(&stamp, "unit", "hash1", "cell=a", &m);
    assert_eq!(
        reg.append(&rows, std::slice::from_ref(&record))
            .unwrap()
            .appended,
        1
    );

    // Same (plan_hash, commit, cell, kpi): a CI retry must not double-count.
    let retry = reg.append(&rows, &[record]).unwrap();
    assert_eq!(retry.appended, 0);
    assert_eq!(retry.deduped, 1);
    assert_eq!(reg.load().unwrap().len(), 1);

    // A different commit is a new trajectory point, not a duplicate.
    let (rows2, rec2) = rows_for(&stamp_at("def456", 200), "unit", "hash1", "cell=a", &m);
    assert_eq!(reg.append(&rows2, &[rec2]).unwrap().appended, 1);
    assert_eq!(reg.load().unwrap().len(), 2);
}

#[test]
fn trend_on_empty_and_single_row_registries() {
    let reg = Registry::new(scratch("thin"));
    // Empty: loads fine, no trajectory, no baseline.
    let rows = reg.load().unwrap();
    assert!(rows.is_empty());
    let pts = series(&rows, "hash1", "cell=a", "gflops");
    assert!(pts.is_empty());
    assert_eq!(baseline(&pts, "me"), None);

    // Single foreign row: the baseline is that row.
    let (r, rec) = rows_for(
        &stamp_at("other", 100),
        "unit",
        "hash1",
        "cell=a",
        &kpis(&[("gflops", 2.0)]),
    );
    reg.append(&r, &[rec]).unwrap();
    let rows = reg.load().unwrap();
    let pts = series(&rows, "hash1", "cell=a", "gflops");
    assert_eq!(pts.len(), 1);
    assert_eq!(baseline(&pts, "me"), Some(2.0));
    // ... unless the single row is our own commit.
    assert_eq!(baseline(&pts, "other"), None);
}

#[test]
fn relative_checks_are_skipped_not_failed_without_history() {
    let plan = tiny_plan();
    let outcomes = vec![("cell=a".to_string(), kpis(&[("gflops", 1.0)]))];
    let report = check_outcomes(&plan, &outcomes, &[], "head", "test-machine");
    assert!(report.is_clean(), "{}", report.render());
    assert_eq!(report.no_baseline, 1);
}

fn tiny_plan() -> AblationPlan {
    let text = r#"
name = "negctl"
workload = "factor"
[axes]
algo = ["conflux"]
n = [32]
p = [4]
[tolerances.gflops]
rel_drop = 0.10
"#;
    AblationPlan::from_value(&parse_toml(text).unwrap()).unwrap()
}

/// The committed negative control: record a baseline, then present a run
/// whose GFLOP/s is 20% lower — `check` must breach and the report must
/// name the broken tolerance.
#[test]
fn injected_gflops_regression_trips_check() {
    let plan = tiny_plan();
    let reg = Registry::new(scratch("negctl"));

    // Run the real single-cell grid once to get a genuine outcome shape.
    let run = run_ablation(&plan);
    assert_eq!(run.outcomes.len(), 1, "skipped: {:?}", run.skipped);
    let cell_id = run.outcomes[0].cell.id();
    let measured = run.outcomes[0].kpis["gflops"];

    // Commit a doctored baseline 25% above the measured value, from an
    // earlier commit — the measured run is now a 20% regression.
    let doctored = kpis(&[("gflops", measured * 1.25)]);
    let (rows, rec) = rows_for(
        &stamp_at("baseline0", 100),
        &plan.name,
        &plan.hash(),
        &cell_id,
        &doctored,
    );
    reg.append(&rows, &[rec]).unwrap();

    let history = reg.load().unwrap();
    let report = check_outcomes(&plan, &run.id_outcomes(), &history, "head1", "test-machine");
    assert_eq!(report.breaches.len(), 1, "{}", report.render());
    let b = &report.breaches[0];
    assert_eq!(b.kpi, "gflops");
    assert_eq!(b.cell, cell_id);
    assert!(
        matches!(b.kind, BreachKind::DropVsTrend { rel_drop, .. } if rel_drop == 0.10),
        "{:?}",
        b.kind
    );
    // The rendered report names the breached tolerance per KPI.
    let text = report.render();
    assert!(text.contains("rel_drop"), "{text}");
    assert!(text.contains("gflops"), "{text}");

    // Control of the control: against an honest baseline the same run is
    // clean.
    let honest = check_outcomes(&plan, &run.id_outcomes(), &[], "head1", "test-machine");
    assert!(honest.is_clean());

    // A baseline from a different machine must not gate this run's
    // wall-clock-sensitive KPIs: the doctored history is invisible then.
    let other = check_outcomes(
        &plan,
        &run.id_outcomes(),
        &history,
        "head1",
        "other-machine",
    );
    assert!(other.is_clean(), "{}", other.render());
}

/// The committed smoke plan keeps its acceptance-criteria shape: it parses,
/// expands to at least 12 cells, and gates at least one deterministic KPI.
#[test]
fn committed_smoke_plan_is_a_12_plus_cell_grid() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../plans/smoke.toml");
    let plan = AblationPlan::load(&path).unwrap();
    assert!(
        plan.cells().len() >= 12,
        "smoke plan shrank to {} cells",
        plan.cells().len()
    );
    assert!(plan.tolerances.contains_key("gflops"));
    assert!(plan.tolerances.contains_key("comm_factor"));

    let kernels = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../plans/kernels.toml");
    let kplan = AblationPlan::load(&kernels).unwrap();
    let floor = kplan.tolerances["gemm_speedup"];
    assert_eq!(floor.min, Some(2.0), "the old CI floor must survive");
}
