//! End-to-end transport-workload ablation: drive the real `ablations`
//! binary over a tiny transport plan and assert the measured socket-backend
//! α-β fit lands in the registry.
//!
//! This is the one place the socket half of `experiments::transport` can
//! run under test: the socket backend re-executes the *current binary*, so
//! inside libtest it would re-run the whole test process — but re-executing
//! the `ablations` CLI is exactly its production shape. The child rank
//! processes replay the plan deterministically (argument parse → plan load
//! → cell order → measurement sequence) to find their world, then exit
//! inside it; only the parent prints the KPI table, writes
//! `results/BENCH_transport.json`, and appends registry rows.

use std::process::Command;

#[test]
fn transport_plan_runs_cross_process_and_records_kpis() {
    let tmp = std::env::temp_dir().join(format!("xport-plan-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&tmp);
    std::fs::create_dir_all(&tmp).unwrap();
    let plan = tmp.join("plan.toml");
    std::fs::write(
        &plan,
        r#"
name = "transport-e2e"
description = "tiny cross-process alpha-beta cell"
workload = "transport"
[axes]
n = [256]
p = [2]
[fixed]
reps = 1
"#,
    )
    .unwrap();

    let reg = tmp.join("registry");
    let out = Command::new(env!("CARGO_BIN_EXE_ablations"))
        .args([
            "run",
            plan.to_str().unwrap(),
            "--registry",
            reg.to_str().unwrap(),
        ])
        .current_dir(&tmp) // results/ artifacts land in tmp, not the repo
        .output()
        .expect("spawn ablations");
    assert!(
        out.status.success(),
        "ablations run failed\nstdout:\n{}\nstderr:\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("alpha_socket_us"),
        "KPI table missing the socket fit:\n{stdout}"
    );

    // The registry trajectory has both backends' fits for the cell.
    let csv = std::fs::read_to_string(reg.join("ablations.csv")).expect("registry csv");
    for kpi in [
        "alpha_local_us",
        "alpha_socket_us",
        "gbps_socket",
        "socket_over_local_alpha",
    ] {
        assert!(csv.contains(kpi), "registry missing {kpi}:\n{csv}");
    }

    // One report artifact, written by the parent only.
    let report = std::fs::read_to_string(tmp.join("results/BENCH_transport.json"))
        .expect("results/BENCH_transport.json");
    assert!(
        report.contains("\"socket\""),
        "report missing socket backend"
    );

    let _ = std::fs::remove_dir_all(&tmp);
}
