//! Append-only performance registry.
//!
//! Two files under the registry directory record every ablation run:
//!
//! * `ablations.csv` — one row per `(cell, kpi)` in long format, the
//!   queryable trajectory:
//!   `timestamp,unix,commit,machine,plan,plan_hash,cell,kpi,value`
//! * `ablations.jsonl` — one JSON object per cell with the full provenance
//!   stamp and KPI map, for consumers that want structure over grep.
//!
//! Rows are **never rewritten**: an append deduplicates on
//! `(plan_hash, commit, cell, kpi)` — re-running the same plan at the same
//! commit is a no-op, so CI retries cannot double-count a point — and
//! otherwise only ever adds lines. History is the product; losing it is
//! what this subsystem exists to prevent.

use crate::provenance::Stamp;
use serde_json::Value;
use std::collections::HashSet;
use std::io::Write;
use std::path::PathBuf;

/// CSV column header, also the format version marker.
pub const CSV_HEADER: &str = "timestamp,unix,commit,machine,plan,plan_hash,cell,kpi,value";

/// One `(cell, kpi)` observation.
#[derive(Debug, Clone, PartialEq)]
pub struct RegRow {
    /// ISO-8601 UTC timestamp of the run.
    pub timestamp: String,
    /// Seconds since the UNIX epoch (sortable form of `timestamp`).
    pub unix: u64,
    /// Git commit of the producing code.
    pub commit: String,
    /// Machine fingerprint.
    pub machine: String,
    /// Plan name.
    pub plan: String,
    /// Plan hash (experiment identity).
    pub plan_hash: String,
    /// Cell identity ([`crate::plan::Cell::id`]).
    pub cell: String,
    /// KPI name.
    pub kpi: String,
    /// KPI value.
    pub value: f64,
}

impl RegRow {
    /// The dedup key: one observation per (experiment, commit, cell, KPI).
    pub fn key(&self) -> (String, String, String, String) {
        (
            self.plan_hash.clone(),
            self.commit.clone(),
            self.cell.clone(),
            self.kpi.clone(),
        )
    }

    fn to_csv(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{}",
            self.timestamp,
            self.unix,
            self.commit,
            self.machine,
            self.plan,
            self.plan_hash,
            self.cell,
            self.kpi,
            self.value
        )
    }

    fn from_csv(line: &str) -> Result<RegRow, String> {
        let f: Vec<&str> = line.split(',').collect();
        if f.len() != 9 {
            return Err(format!("expected 9 columns, got {}: {line:?}", f.len()));
        }
        Ok(RegRow {
            timestamp: f[0].to_string(),
            unix: f[1]
                .parse()
                .map_err(|e| format!("bad unix {:?}: {e}", f[1]))?,
            commit: f[2].to_string(),
            machine: f[3].to_string(),
            plan: f[4].to_string(),
            plan_hash: f[5].to_string(),
            cell: f[6].to_string(),
            kpi: f[7].to_string(),
            value: f[8]
                .parse()
                .map_err(|e| format!("bad value {:?}: {e}", f[8]))?,
        })
    }
}

/// Outcome of one append call.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AppendOutcome {
    /// Rows written.
    pub appended: usize,
    /// Rows skipped because their key already existed.
    pub deduped: usize,
}

/// Handle on a registry directory.
#[derive(Debug, Clone)]
pub struct Registry {
    dir: PathBuf,
}

impl Registry {
    /// A registry rooted at `dir` (created lazily on first append).
    pub fn new(dir: impl Into<PathBuf>) -> Registry {
        Registry { dir: dir.into() }
    }

    /// Path of the CSV trajectory.
    pub fn csv_path(&self) -> PathBuf {
        self.dir.join("ablations.csv")
    }

    /// Path of the JSONL cell records.
    pub fn jsonl_path(&self) -> PathBuf {
        self.dir.join("ablations.jsonl")
    }

    /// Load every recorded row. A missing file is an empty registry, not an
    /// error; a malformed line is an error naming the line.
    pub fn load(&self) -> Result<Vec<RegRow>, String> {
        let path = self.csv_path();
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(format!("read {}: {e}", path.display())),
        };
        let mut rows = Vec::new();
        for (i, line) in text.lines().enumerate() {
            if i == 0 && line == CSV_HEADER {
                continue;
            }
            if line.trim().is_empty() {
                continue;
            }
            rows.push(
                RegRow::from_csv(line)
                    .map_err(|e| format!("{} line {}: {e}", path.display(), i + 1))?,
            );
        }
        Ok(rows)
    }

    /// Append rows (deduplicated against the existing file) and their JSONL
    /// cell records. The CSV header is written when the file is new.
    pub fn append(&self, rows: &[RegRow], cells: &[Value]) -> Result<AppendOutcome, String> {
        let existing: HashSet<_> = self.load()?.iter().map(RegRow::key).collect();
        let mut fresh: Vec<&RegRow> = Vec::new();
        let mut seen = existing.clone();
        for r in rows {
            if seen.insert(r.key()) {
                fresh.push(r);
            }
        }
        let outcome = AppendOutcome {
            appended: fresh.len(),
            deduped: rows.len() - fresh.len(),
        };
        if fresh.is_empty() {
            return Ok(outcome);
        }

        std::fs::create_dir_all(&self.dir)
            .map_err(|e| format!("mkdir {}: {e}", self.dir.display()))?;
        let csv = self.csv_path();
        let new_file = !csv.exists();
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&csv)
            .map_err(|e| format!("open {}: {e}", csv.display()))?;
        let mut buf = String::new();
        if new_file {
            buf.push_str(CSV_HEADER);
            buf.push('\n');
        }
        for r in &fresh {
            buf.push_str(&r.to_csv());
            buf.push('\n');
        }
        f.write_all(buf.as_bytes())
            .map_err(|e| format!("append {}: {e}", csv.display()))?;

        if !cells.is_empty() {
            let jl = self.jsonl_path();
            let mut f = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&jl)
                .map_err(|e| format!("open {}: {e}", jl.display()))?;
            let mut buf = String::new();
            for c in cells {
                buf.push_str(&serde_json::to_string(c).expect("cell record serializes"));
                buf.push('\n');
            }
            f.write_all(buf.as_bytes())
                .map_err(|e| format!("append {}: {e}", jl.display()))?;
        }
        Ok(outcome)
    }
}

/// Substring/equality filters for `bench ablate query`.
#[derive(Debug, Clone, Default)]
pub struct Query {
    /// Exact plan name.
    pub plan: Option<String>,
    /// Exact KPI name.
    pub kpi: Option<String>,
    /// Commit prefix (so short hashes work).
    pub commit: Option<String>,
    /// Substring of the cell id.
    pub cell: Option<String>,
}

impl Query {
    /// Does `row` satisfy every set filter?
    pub fn matches(&self, row: &RegRow) -> bool {
        self.plan.as_ref().is_none_or(|p| &row.plan == p)
            && self.kpi.as_ref().is_none_or(|k| &row.kpi == k)
            && self
                .commit
                .as_ref()
                .is_none_or(|c| row.commit.starts_with(c.as_str()))
            && self
                .cell
                .as_ref()
                .is_none_or(|c| row.cell.contains(c.as_str()))
    }
}

/// Flatten one run's cell outcomes into registry rows plus JSONL records,
/// stamped with shared provenance.
pub fn rows_for(
    stamp: &Stamp,
    plan: &str,
    plan_hash: &str,
    cell: &str,
    kpis: &std::collections::BTreeMap<String, f64>,
) -> (Vec<RegRow>, Value) {
    let rows = kpis
        .iter()
        .map(|(k, &v)| RegRow {
            timestamp: stamp.timestamp.clone(),
            unix: stamp.unix_secs,
            commit: stamp.commit.clone(),
            machine: stamp.machine.clone(),
            plan: plan.to_string(),
            plan_hash: plan_hash.to_string(),
            cell: cell.to_string(),
            kpi: k.clone(),
            value: v,
        })
        .collect();
    let record = serde_json::json!({
        "provenance": stamp.to_json(),
        "plan": plan,
        "plan_hash": plan_hash,
        "cell": cell,
        "kpis": kpis,
    });
    (rows, record)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_row_round_trips() {
        let r = RegRow {
            timestamp: "2026-08-08T00:00:00Z".into(),
            unix: 1,
            commit: "abc".into(),
            machine: "linux-x86_64-c8-h".into(),
            plan: "smoke".into(),
            plan_hash: "deadbeef".into(),
            cell: "algo=conflux;n=64;p=4;c=0;block=0;la=1;ck=0;seed=0".into(),
            kpi: "gflops".into(),
            value: 123.456,
        };
        let back = RegRow::from_csv(&r.to_csv()).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn bad_lines_are_named() {
        assert!(RegRow::from_csv("too,few").unwrap_err().contains("columns"));
    }

    #[test]
    fn query_filters_compose() {
        let r = RegRow::from_csv("t,1,abcdef,m,smoke,h,cell=x,gflops,1.0").unwrap();
        let q = Query {
            plan: Some("smoke".into()),
            commit: Some("abc".into()),
            ..Query::default()
        };
        assert!(q.matches(&r));
        let q = Query {
            kpi: Some("comm_factor".into()),
            ..Query::default()
        };
        assert!(!q.matches(&r));
    }
}
