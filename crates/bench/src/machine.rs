//! Machine constants and the simulated time-to-solution model.
//!
//! The paper measures wall-clock on Piz Daint's XC40 partition (2×18-core
//! Intel Xeon E5-2695 v4 per node, Cray Aries interconnect, 2 MPI ranks per
//! node). A single-machine simulation cannot reproduce interconnect timing,
//! so performance figures use an α-β-γ model driven by *measured*
//! communication (bytes and message counts from `xmpi`) plus analytic flop
//! counts:
//!
//! ```text
//! T_rank = flops_rank/(γ·ε)  +  bytes_rank/β  +  msgs_rank·α
//! T      = max over ranks;   %peak = flops_total / (P·γ·T)
//! ```
//!
//! `ε` is the local-BLAS efficiency (the paper's best runs achieve ≈55% of
//! peak, so perfect-overlap 100% would be unrealistic). Rankings between
//! schedules are driven by the measured traffic, which is the object of
//! study.

/// α-β-γ machine description (per rank).
#[derive(Debug, Clone, Copy)]
pub struct Machine {
    /// Peak flop rate per rank (flop/s).
    pub gamma: f64,
    /// Achievable local-kernel efficiency fraction (0..1].
    pub epsilon: f64,
    /// Injection bandwidth per rank (bytes/s).
    pub beta: f64,
    /// Per-message latency (s).
    pub alpha: f64,
}

impl Machine {
    /// Piz Daint XC40-like constants: 1.21 TF/node peak over 2 ranks,
    /// ~10 GB/s Aries injection per node over 2 ranks, 1.5 µs latency,
    /// 70% local-kernel efficiency.
    pub fn piz_daint() -> Self {
        Machine {
            gamma: 0.605e12,
            epsilon: 0.7,
            beta: 5.0e9,
            alpha: 1.5e-6,
        }
    }

    /// Simulated per-rank execution time for one rank's workload.
    pub fn rank_time(&self, flops: f64, bytes: f64, msgs: f64) -> f64 {
        flops / (self.gamma * self.epsilon) + bytes / self.beta + msgs * self.alpha
    }

    /// Percent of machine peak achieved: `flops_total/(P·γ·T)·100`.
    pub fn pct_peak(&self, flops_total: f64, p: usize, t: f64) -> f64 {
        100.0 * flops_total / (p as f64 * self.gamma * t)
    }
}

/// Scale a byte count from simulation scale to paper scale using the
/// validated volume model ratio — used when a figure needs paper-sized
/// matrices that cannot be run in-process. The scaling is
/// `measured · model(paper)/model(sim)`, documented per experiment.
pub fn extrapolate(measured: f64, model_at_sim: f64, model_at_paper: f64) -> f64 {
    if model_at_sim <= 0.0 {
        return 0.0;
    }
    measured * model_at_paper / model_at_sim
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rank_time_sums_terms() {
        let m = Machine {
            gamma: 1e9,
            epsilon: 0.5,
            beta: 1e9,
            alpha: 1e-6,
        };
        let t = m.rank_time(5e8, 1e9, 1000.0);
        assert!((t - (1.0 + 1.0 + 1e-3)).abs() < 1e-9);
    }

    #[test]
    fn pct_peak_is_100_at_perfect_execution() {
        let m = Machine {
            gamma: 1e9,
            epsilon: 1.0,
            beta: f64::INFINITY,
            alpha: 0.0,
        };
        let t = m.rank_time(1e9, 0.0, 0.0);
        assert!((m.pct_peak(4e9, 4, t) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn piz_daint_constants_are_sane() {
        let m = Machine::piz_daint();
        assert!(m.gamma > 1e11 && m.gamma < 1e13);
        assert!(m.epsilon > 0.0 && m.epsilon <= 1.0);
    }

    #[test]
    fn extrapolation_is_proportional() {
        assert_eq!(extrapolate(100.0, 10.0, 40.0), 400.0);
        assert_eq!(extrapolate(100.0, 0.0, 40.0), 0.0);
    }
}
