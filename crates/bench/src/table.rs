//! Minimal plain-text table rendering for the experiment binaries.

/// Render rows as a fixed-width table with a header.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncol = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncol, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let sep = |out: &mut String| {
        for w in &widths {
            out.push('+');
            out.push_str(&"-".repeat(w + 2));
        }
        out.push_str("+\n");
    };
    sep(&mut out);
    out.push('|');
    for (h, w) in headers.iter().zip(&widths) {
        out.push_str(&format!(" {h:w$} |"));
    }
    out.push('\n');
    sep(&mut out);
    for row in rows {
        out.push('|');
        for (cell, w) in row.iter().zip(&widths) {
            out.push_str(&format!(" {cell:>w$} |"));
        }
        out.push('\n');
    }
    sep(&mut out);
    out
}

/// Format a byte count with a binary-prefix unit.
pub fn human_bytes(b: f64) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = b;
    let mut u = 0;
    while v >= 1024.0 && u + 1 < UNITS.len() {
        v /= 1024.0;
        u += 1;
    }
    format!("{v:.2} {}", UNITS[u])
}

/// Format a ratio as `1.23x`.
pub fn ratio(a: f64, b: f64) -> String {
    if b == 0.0 {
        return "inf".into();
    }
    format!("{:.2}x", a / b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_table() {
        let t = render(
            &["algo", "bytes"],
            &[
                vec!["COnfLUX".into(), "123".into()],
                vec!["MKL".into(), "456789".into()],
            ],
        );
        assert!(t.contains("| algo    | bytes  |"));
        assert!(t.contains("| COnfLUX |    123 |"));
        let lines: Vec<&str> = t.lines().collect();
        let len = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == len), "all lines same width");
    }

    #[test]
    fn human_units() {
        assert_eq!(human_bytes(512.0), "512.00 B");
        assert_eq!(human_bytes(2048.0), "2.00 KiB");
        assert_eq!(human_bytes(3.0 * 1024.0 * 1024.0), "3.00 MiB");
    }

    #[test]
    fn ratio_formats() {
        assert_eq!(ratio(3.0, 2.0), "1.50x");
        assert_eq!(ratio(1.0, 0.0), "inf");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_panic() {
        render(&["a", "b"], &[vec!["x".into()]]);
    }
}
