//! Declarative ablation plans.
//!
//! A plan is a TOML (or JSON) file describing a sweep grid plus the KPI
//! tolerances a `bench ablate check` run is held to:
//!
//! ```toml
//! name = "smoke"
//! description = "nightly smoke grid"
//! workload = "factor"              # factor|kernels|tune|comm|transport
//!
//! [axes]                           # cartesian grid; missing axes default
//! algo = ["conflux", "confchox"]   # conflux|confchox|twod-lu|twod-chol|lu25d
//! n = [96, 128]                    # matrix dimension
//! p = [4, 8]                       # rank count
//! c = [0]                          # replication depth (M = c·N²/P); 0 = auto
//! block = [0]                      # block size v; 0 = auto
//! lookahead = [true]               # false = blocking schedule
//! checksum = [false]               # true = ABFT fault-tolerant path
//! seed = [0]                       # perturbation seeds; or seed = "env"
//!
//! [tolerances.gflops]              # per-KPI gates for `check`
//! min = 0.5                        # absolute floor
//! rel_drop = 0.20                  # breach if < baseline·(1 − 0.20)
//! [tolerances.comm_factor]
//! max = 40.0                       # absolute ceiling
//! rel_rise = 0.25                  # breach if > baseline·(1 + 0.25)
//! ```
//!
//! The `seed` axis accepts [`xharness::seed_axis`] specs (`"env"` defers to
//! `XHARNESS_SEEDS`), so the seed-matrix convention of the perturbation
//! suite is an ordinary ablation axis here.
//!
//! The **plan hash** covers name, workload, axes, and fixed parameters —
//! the experiment's identity — and deliberately excludes tolerances:
//! tightening a gate must not orphan the recorded trajectory.
//!
//! The TOML support is a deliberate subset parsed in-tree (the build
//! environment has no registry access): comments, `[table]` /
//! `[table.sub]` headers, and single-line `key = value` pairs with string,
//! boolean, integer, float, and one-line array values.

use crate::provenance::fnv1a_hex;
use serde_json::Value;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// What a plan's cells execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlanWorkload {
    /// Distributed factorizations through the `runner::Machine` path.
    Factor,
    /// Local dense-kernel throughput (`experiments::kernels`).
    Kernels,
    /// Microkernel + blocking auto-tuning sweep (`crate::tune`).
    Tune,
    /// Transport microbenchmark (`experiments::comm`): p2p latency and
    /// tree-vs-linear broadcast wall-clock. `n` is the message size in f64
    /// elements, `p` the broadcast world size.
    Comm,
    /// Transport α-β calibration (`experiments::transport`): the measured
    /// postal-model constants of the in-process *and* socket backends next
    /// to the simulated machine's. `n` is the probed message size in f64
    /// elements, `p` the broadcast world size. Socket cells spawn child
    /// rank processes that re-execute the current binary.
    Transport,
}

impl PlanWorkload {
    fn name(self) -> &'static str {
        match self {
            PlanWorkload::Factor => "factor",
            PlanWorkload::Kernels => "kernels",
            PlanWorkload::Tune => "tune",
            PlanWorkload::Comm => "comm",
            PlanWorkload::Transport => "transport",
        }
    }
}

/// Per-KPI gate. Absolute bounds apply to every run; relative bounds apply
/// against the registry trend and are skipped when no history exists.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Tolerance {
    /// Absolute floor on the KPI value.
    pub min: Option<f64>,
    /// Absolute ceiling on the KPI value.
    pub max: Option<f64>,
    /// Max allowed fractional drop below the trend baseline
    /// (for higher-is-better KPIs like GFLOP/s).
    pub rel_drop: Option<f64>,
    /// Max allowed fractional rise above the trend baseline
    /// (for lower-is-better KPIs like comm volume).
    pub rel_rise: Option<f64>,
}

/// One point of the expanded grid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cell {
    /// Algorithm name (`"kernels"` for the kernels workload).
    pub algo: String,
    /// Matrix dimension.
    pub n: usize,
    /// Rank count (1 for local-kernel cells).
    pub p: usize,
    /// Replication depth; 0 = automatic grid selection.
    pub c: usize,
    /// Block size; 0 = automatic.
    pub block: usize,
    /// Lookahead (overlapped) schedule.
    pub lookahead: bool,
    /// ABFT-checksummed fault-tolerant path.
    pub checksum: bool,
    /// Schedule-perturbation seed.
    pub seed: u64,
}

impl Cell {
    /// Canonical cell identity — the registry's dedup/trend key. Contains
    /// no commas, so it is safe inside a CSV column.
    pub fn id(&self) -> String {
        format!(
            "algo={};n={};p={};c={};block={};la={};ck={};seed={}",
            self.algo,
            self.n,
            self.p,
            self.c,
            self.block,
            self.lookahead as u8,
            self.checksum as u8,
            self.seed
        )
    }
}

/// A parsed, validated ablation plan.
#[derive(Debug, Clone)]
pub struct AblationPlan {
    /// Unique plan name (the registry's `plan` column).
    pub name: String,
    /// Human description.
    pub description: String,
    /// What the cells execute.
    pub workload: PlanWorkload,
    /// Axis values, in canonical order.
    pub algos: Vec<String>,
    /// `n` axis.
    pub ns: Vec<usize>,
    /// `p` axis.
    pub ps: Vec<usize>,
    /// `c` axis.
    pub cs: Vec<usize>,
    /// `block` axis.
    pub blocks: Vec<usize>,
    /// `lookahead` axis.
    pub lookaheads: Vec<bool>,
    /// `checksum` axis.
    pub checksums: Vec<bool>,
    /// `seed` axis.
    pub seeds: Vec<u64>,
    /// Timing repetitions for the kernels workload.
    pub reps: usize,
    /// Per-KPI gates.
    pub tolerances: BTreeMap<String, Tolerance>,
}

impl AblationPlan {
    /// Load a `.toml` or `.json` plan file.
    pub fn load(path: &Path) -> Result<AblationPlan, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("read {}: {e}", path.display()))?;
        let value = if path.extension().is_some_and(|e| e == "json") {
            serde_json::from_str(&text).map_err(|e| format!("{}: {e}", path.display()))?
        } else {
            parse_toml(&text).map_err(|e| format!("{}: {e}", path.display()))?
        };
        AblationPlan::from_value(&value)
    }

    /// Interpret a parsed document.
    pub fn from_value(v: &Value) -> Result<AblationPlan, String> {
        let name = str_field(v, "name")?;
        let description = v["description"].as_str().unwrap_or("").to_string();
        let workload = match v["workload"].as_str().unwrap_or("factor") {
            "factor" => PlanWorkload::Factor,
            "kernels" => PlanWorkload::Kernels,
            "tune" => PlanWorkload::Tune,
            "comm" => PlanWorkload::Comm,
            "transport" => PlanWorkload::Transport,
            other => {
                return Err(format!(
                    "unknown workload {other:?} (factor|kernels|tune|comm|transport)"
                ))
            }
        };
        let axes = v.get("axes").unwrap_or(&Value::Null);

        let algos = match workload {
            PlanWorkload::Kernels => vec!["kernels".to_string()],
            PlanWorkload::Tune => vec!["tune".to_string()],
            PlanWorkload::Comm => vec!["comm".to_string()],
            PlanWorkload::Transport => vec!["transport".to_string()],
            PlanWorkload::Factor => {
                let a = string_axis(axes, "algo")?
                    .ok_or("factor plans need an [axes] algo list".to_string())?;
                for name in &a {
                    if !matches!(
                        name.as_str(),
                        "conflux" | "confchox" | "twod-lu" | "twod-chol" | "lu25d"
                    ) {
                        return Err(format!("unknown algo {name:?} in axes"));
                    }
                }
                a
            }
        };
        let ns = usize_axis(axes, "n")?.ok_or("plans need an [axes] n list".to_string())?;
        let ps = usize_axis(axes, "p")?.unwrap_or_else(|| vec![1]);
        let cs = usize_axis(axes, "c")?.unwrap_or_else(|| vec![0]);
        let blocks = usize_axis(axes, "block")?.unwrap_or_else(|| vec![0]);
        let lookaheads = bool_axis(axes, "lookahead")?.unwrap_or_else(|| vec![true]);
        let checksums = bool_axis(axes, "checksum")?.unwrap_or_else(|| vec![false]);
        let seeds = seed_axis_values(axes)?;
        let reps = v
            .get("fixed")
            .and_then(|f| f.get("reps"))
            .and_then(Value::as_u64)
            .unwrap_or(3) as usize;

        let mut tolerances = BTreeMap::new();
        if let Some(tols) = v.get("tolerances").and_then(Value::as_object) {
            for (kpi, spec) in tols {
                let t = Tolerance {
                    min: spec.get("min").and_then(Value::as_f64),
                    max: spec.get("max").and_then(Value::as_f64),
                    rel_drop: spec.get("rel_drop").and_then(Value::as_f64),
                    rel_rise: spec.get("rel_rise").and_then(Value::as_f64),
                };
                if t == Tolerance::default() {
                    return Err(format!(
                        "tolerance {kpi:?} declares no bound (min/max/rel_drop/rel_rise)"
                    ));
                }
                tolerances.insert(kpi.clone(), t);
            }
        }

        Ok(AblationPlan {
            name,
            description,
            workload,
            algos,
            ns,
            ps,
            cs,
            blocks,
            lookaheads,
            checksums,
            seeds,
            reps,
            tolerances,
        })
    }

    /// Stable plan hash over the experiment identity (name, workload, axes,
    /// fixed parameters) — tolerances excluded by design.
    pub fn hash(&self) -> String {
        let mut s = String::new();
        let _ = write!(
            s,
            "name={};workload={};algo={:?};n={:?};p={:?};c={:?};block={:?};la={:?};ck={:?};seed={:?};reps={}",
            self.name,
            self.workload.name(),
            self.algos,
            self.ns,
            self.ps,
            self.cs,
            self.blocks,
            self.lookaheads,
            self.checksums,
            self.seeds,
            self.reps
        );
        fnv1a_hex(s.as_bytes())
    }

    /// Cartesian expansion of the grid, in canonical axis order.
    pub fn cells(&self) -> Vec<Cell> {
        let mut out = Vec::new();
        for algo in &self.algos {
            for &n in &self.ns {
                for &p in &self.ps {
                    for &c in &self.cs {
                        for &block in &self.blocks {
                            for &lookahead in &self.lookaheads {
                                for &checksum in &self.checksums {
                                    for &seed in &self.seeds {
                                        out.push(Cell {
                                            algo: algo.clone(),
                                            n,
                                            p,
                                            c,
                                            block,
                                            lookahead,
                                            checksum,
                                            seed,
                                        });
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        out
    }
}

fn str_field(v: &Value, key: &str) -> Result<String, String> {
    v[key]
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("plan is missing the {key:?} string field"))
}

fn axis<'a>(axes: &'a Value, key: &str) -> Option<&'a Value> {
    axes.get(key)
}

fn string_axis(axes: &Value, key: &str) -> Result<Option<Vec<String>>, String> {
    match axis(axes, key) {
        None => Ok(None),
        Some(Value::Array(a)) => a
            .iter()
            .map(|v| {
                v.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("axis {key:?}: expected strings"))
            })
            .collect::<Result<_, _>>()
            .map(Some),
        Some(other) => Err(format!("axis {key:?}: expected an array, got {other}")),
    }
}

fn usize_axis(axes: &Value, key: &str) -> Result<Option<Vec<usize>>, String> {
    match axis(axes, key) {
        None => Ok(None),
        Some(Value::Array(a)) => a
            .iter()
            .map(|v| {
                v.as_u64()
                    .map(|u| u as usize)
                    .ok_or_else(|| format!("axis {key:?}: expected non-negative integers"))
            })
            .collect::<Result<_, _>>()
            .map(Some),
        Some(other) => Err(format!("axis {key:?}: expected an array, got {other}")),
    }
}

fn bool_axis(axes: &Value, key: &str) -> Result<Option<Vec<bool>>, String> {
    match axis(axes, key) {
        None => Ok(None),
        Some(Value::Array(a)) => a
            .iter()
            .map(|v| {
                v.as_bool()
                    .ok_or_else(|| format!("axis {key:?}: expected booleans"))
            })
            .collect::<Result<_, _>>()
            .map(Some),
        Some(other) => Err(format!("axis {key:?}: expected an array, got {other}")),
    }
}

/// The seed axis: an explicit integer list, or an [`xharness::seed_axis`]
/// spec string (`"env"`, `"N"`, `"list:a,b"`).
fn seed_axis_values(axes: &Value) -> Result<Vec<u64>, String> {
    match axis(axes, "seed") {
        None => Ok(vec![0]),
        Some(Value::Array(a)) => a
            .iter()
            .map(|v| {
                v.as_u64()
                    .ok_or_else(|| "axis \"seed\": expected non-negative integers".to_string())
            })
            .collect(),
        Some(Value::String(spec)) => xharness::seed_axis(spec, 2)
            .ok_or_else(|| format!("axis \"seed\": bad spec {spec:?} (env|N|list:a,b)")),
        Some(other) => Err(format!(
            "axis \"seed\": expected array or spec, got {other}"
        )),
    }
}

// ---------------------------------------------------------------------------
// TOML subset parser
// ---------------------------------------------------------------------------

/// Parse the supported TOML subset into a JSON document.
pub fn parse_toml(text: &str) -> Result<Value, String> {
    let mut root = Vec::new();
    let mut path: Vec<String> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw);
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('[') {
            let inner = header
                .strip_suffix(']')
                .ok_or_else(|| format!("line {lineno}: unterminated table header"))?;
            path = inner.split('.').map(|s| s.trim().to_string()).collect();
            if path.iter().any(String::is_empty) {
                return Err(format!("line {lineno}: empty table-path segment"));
            }
            table_at(&mut root, &path)?;
        } else if let Some((k, v)) = line.split_once('=') {
            let key = k.trim();
            if key.is_empty() {
                return Err(format!("line {lineno}: empty key"));
            }
            let value = parse_value(v.trim()).map_err(|e| format!("line {lineno}: {e}"))?;
            let table = table_at(&mut root, &path)?;
            if table.iter().any(|(k, _)| k == key) {
                return Err(format!("line {lineno}: duplicate key {key:?}"));
            }
            table.push((key.to_string(), value));
        } else {
            return Err(format!(
                "line {lineno}: expected `key = value` or `[table]`"
            ));
        }
    }
    Ok(Value::Object(root))
}

/// Walk/create the nested object at `path` (the shim's objects are
/// insertion-ordered `Vec<(key, value)>` entry lists).
fn table_at<'a>(
    root: &'a mut Vec<(String, Value)>,
    path: &[String],
) -> Result<&'a mut Vec<(String, Value)>, String> {
    let mut cur = root;
    for seg in path {
        let idx = match cur.iter().position(|(k, _)| k == seg) {
            Some(i) => i,
            None => {
                cur.push((seg.clone(), Value::Object(Vec::new())));
                cur.len() - 1
            }
        };
        cur = match &mut cur[idx].1 {
            Value::Object(o) => o,
            _ => return Err(format!("{seg:?} is both a value and a table")),
        };
    }
    Ok(cur)
}

/// Drop a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_escape = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' if !prev_escape => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_escape = ch == '\\' && !prev_escape;
    }
    line
}

fn parse_value(s: &str) -> Result<Value, String> {
    let s = s.trim();
    if s.is_empty() {
        return Err("empty value".into());
    }
    if let Some(body) = s.strip_prefix('[') {
        let body = body
            .strip_suffix(']')
            .ok_or("arrays must close on the same line")?;
        let mut items = Vec::new();
        for part in split_top_level(body)? {
            let part = part.trim();
            if part.is_empty() {
                continue; // trailing comma
            }
            items.push(parse_value(part)?);
        }
        return Ok(Value::Array(items));
    }
    if s.starts_with('"') {
        return parse_string(s);
    }
    match s {
        "true" => return Ok(Value::Bool(true)),
        "false" => return Ok(Value::Bool(false)),
        _ => {}
    }
    if let Ok(i) = s.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Ok(f) = s.parse::<f64>() {
        if !f.is_finite() {
            return Err(format!("non-finite float {s:?}"));
        }
        return Ok(Value::Float(f));
    }
    Err(format!("unsupported value {s:?}"))
}

fn parse_string(s: &str) -> Result<Value, String> {
    let inner = s
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| format!("unterminated string {s:?}"))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(ch) = chars.next() {
        if ch == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('"') => out.push('"'),
                Some('\\') => out.push('\\'),
                other => return Err(format!("bad escape \\{other:?}")),
            }
        } else if ch == '"' {
            return Err(format!("stray quote inside {s:?}"));
        } else {
            out.push(ch);
        }
    }
    Ok(Value::String(out))
}

/// Split an array body on commas not inside strings or nested brackets.
fn split_top_level(body: &str) -> Result<Vec<&str>, String> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut prev_escape = false;
    let mut start = 0usize;
    for (i, ch) in body.char_indices() {
        match ch {
            '"' if !prev_escape => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth = depth.checked_sub(1).ok_or("unbalanced ]")?,
            ',' if !in_str && depth == 0 => {
                parts.push(&body[start..i]);
                start = i + 1;
            }
            _ => {}
        }
        prev_escape = ch == '\\' && !prev_escape;
    }
    if in_str {
        return Err("unterminated string in array".into());
    }
    parts.push(&body[start..]);
    Ok(parts)
}

#[cfg(test)]
mod tests {
    use super::*;

    const PLAN: &str = r#"
# a smoke plan
name = "unit"
description = "test grid"   # trailing comment
workload = "factor"

[axes]
algo = ["conflux", "confchox"]
n = [64, 96]
p = [4]
seed = [0, 1]

[tolerances.gflops]
min = 0.1
rel_drop = 0.20
[tolerances.comm_factor]
rel_rise = 0.25
"#;

    #[test]
    fn toml_subset_round_trips() {
        let v = parse_toml(PLAN).unwrap();
        assert_eq!(v["name"], "unit");
        assert_eq!(v["axes"]["n"][1], 96);
        assert_eq!(v["tolerances"]["gflops"]["rel_drop"], 0.2);
    }

    #[test]
    fn plan_expands_the_cartesian_grid() {
        let plan = AblationPlan::from_value(&parse_toml(PLAN).unwrap()).unwrap();
        let cells = plan.cells();
        assert_eq!(cells.len(), 2 * 2 * 2);
        assert!(cells
            .iter()
            .any(|c| c.id() == "algo=confchox;n=96;p=4;c=0;block=0;la=1;ck=0;seed=1"));
        // defaults filled in
        assert!(cells.iter().all(|c| c.lookahead && !c.checksum));
    }

    #[test]
    fn hash_tracks_axes_not_tolerances() {
        let a = AblationPlan::from_value(&parse_toml(PLAN).unwrap()).unwrap();
        let mut loose = a.clone();
        loose.tolerances.clear();
        assert_eq!(
            a.hash(),
            loose.hash(),
            "tolerances must not change identity"
        );
        let mut widened = a.clone();
        widened.ns.push(128);
        assert_ne!(a.hash(), widened.hash(), "axes must change identity");
    }

    #[test]
    fn seed_axis_spec_string_expands() {
        let text = PLAN.replace("seed = [0, 1]", "seed = \"list:7\"");
        let plan = AblationPlan::from_value(&parse_toml(&text).unwrap()).unwrap();
        assert_eq!(plan.seeds, vec![7]);
    }

    #[test]
    fn errors_name_the_line() {
        let err = parse_toml("name = \"x\"\noops").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_toml("a = [1,\n2]").unwrap_err();
        assert!(err.contains("same line"), "{err}");
    }

    #[test]
    fn unknown_algo_is_rejected() {
        let text = PLAN.replace("\"confchox\"", "\"blas\"");
        let err = AblationPlan::from_value(&parse_toml(&text).unwrap()).unwrap_err();
        assert!(err.contains("blas"), "{err}");
    }
}
