//! Cross-commit performance trajectory and the regression gate.
//!
//! The trajectory of a KPI is its time-ordered series of registry rows for
//! one `(plan_hash, cell, kpi)`. `bench ablate check` compares a fresh run
//! against that trajectory: the **baseline** is the median of the most
//! recent recorded values from *other* commits (median so one outlier
//! nightly cannot move the gate; other commits so re-running at HEAD never
//! compares a run against itself). Absolute `min`/`max` tolerances apply
//! even on an empty registry; relative tolerances need history and are
//! skipped — never failed — without it.

use crate::plan::{AblationPlan, Tolerance};
use crate::registry::RegRow;
use crate::table::render;
use std::collections::BTreeMap;

/// How many trailing points form the baseline median.
pub const BASELINE_WINDOW: usize = 5;

/// One point of a KPI's trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct TrendPoint {
    /// Run time (unix seconds).
    pub unix: u64,
    /// Producing commit.
    pub commit: String,
    /// KPI value.
    pub value: f64,
}

/// The time-ordered trajectory of `(plan_hash, cell, kpi)`.
pub fn series(rows: &[RegRow], plan_hash: &str, cell: &str, kpi: &str) -> Vec<TrendPoint> {
    let mut pts: Vec<TrendPoint> = rows
        .iter()
        .filter(|r| r.plan_hash == plan_hash && r.cell == cell && r.kpi == kpi)
        .map(|r| TrendPoint {
            unix: r.unix,
            commit: r.commit.clone(),
            value: r.value,
        })
        .collect();
    pts.sort_by_key(|p| p.unix);
    pts
}

/// Baseline for a fresh run at `current_commit`: the median of the last
/// [`BASELINE_WINDOW`] points recorded by other commits. `None` on an
/// empty trajectory (or one written entirely by the current commit) —
/// relative checks are then skipped.
pub fn baseline(points: &[TrendPoint], current_commit: &str) -> Option<f64> {
    let mut vals: Vec<f64> = points
        .iter()
        .filter(|p| p.commit != current_commit)
        .map(|p| p.value)
        .collect();
    if vals.is_empty() {
        return None;
    }
    let tail = vals.split_off(vals.len().saturating_sub(BASELINE_WINDOW));
    let mut tail = tail;
    tail.sort_by(|a, b| a.partial_cmp(b).expect("KPI values are finite"));
    let mid = tail.len() / 2;
    Some(if tail.len() % 2 == 1 {
        tail[mid]
    } else {
        (tail[mid - 1] + tail[mid]) / 2.0
    })
}

/// Which declared tolerance a value breached.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum BreachKind {
    /// Value fell below the absolute `min`.
    BelowMin {
        /// The declared floor.
        min: f64,
    },
    /// Value rose above the absolute `max`.
    AboveMax {
        /// The declared ceiling.
        max: f64,
    },
    /// Value dropped more than `rel_drop` below the trend baseline.
    DropVsTrend {
        /// The trajectory baseline.
        baseline: f64,
        /// The declared max fractional drop.
        rel_drop: f64,
    },
    /// Value rose more than `rel_rise` above the trend baseline.
    RiseVsTrend {
        /// The trajectory baseline.
        baseline: f64,
        /// The declared max fractional rise.
        rel_rise: f64,
    },
}

impl BreachKind {
    /// The breached tolerance, human-named.
    pub fn describe(&self) -> String {
        match *self {
            BreachKind::BelowMin { min } => format!("min = {min}"),
            BreachKind::AboveMax { max } => format!("max = {max}"),
            BreachKind::DropVsTrend { baseline, rel_drop } => {
                format!("rel_drop = {rel_drop} (baseline {baseline:.4})")
            }
            BreachKind::RiseVsTrend { baseline, rel_rise } => {
                format!("rel_rise = {rel_rise} (baseline {baseline:.4})")
            }
        }
    }
}

/// One tolerance breach.
#[derive(Debug, Clone, PartialEq)]
pub struct Breach {
    /// Cell that regressed.
    pub cell: String,
    /// KPI that breached.
    pub kpi: String,
    /// Measured value.
    pub value: f64,
    /// Which declared tolerance it broke.
    pub kind: BreachKind,
}

/// The typed result of `bench ablate check`.
#[derive(Debug, Clone, Default)]
pub struct RegressionReport {
    /// Plan name.
    pub plan: String,
    /// Plan hash the trajectory was matched on.
    pub plan_hash: String,
    /// The commit under test.
    pub commit: String,
    /// Cells that were evaluated.
    pub cells_checked: usize,
    /// `(cell, kpi)` pairs evaluated against at least one tolerance.
    pub kpis_checked: usize,
    /// `(cell, kpi)` pairs whose relative check was skipped for lack of a
    /// baseline trajectory.
    pub no_baseline: usize,
    /// Every tolerance breach.
    pub breaches: Vec<Breach>,
}

impl RegressionReport {
    /// True when no tolerance was breached.
    pub fn is_clean(&self) -> bool {
        self.breaches.is_empty()
    }

    /// Render the per-KPI report (the text CI prints on failure).
    pub fn render(&self) -> String {
        let mut out = format!(
            "plan {} ({}) @ {}: {} cells, {} KPI checks, {} without baseline\n",
            self.plan,
            self.plan_hash,
            &self.commit[..self.commit.len().min(12)],
            self.cells_checked,
            self.kpis_checked,
            self.no_baseline,
        );
        if self.is_clean() {
            out.push_str("all KPIs within tolerance\n");
            return out;
        }
        out.push_str(&format!("{} tolerance breach(es):\n", self.breaches.len()));
        let rows: Vec<Vec<String>> = self
            .breaches
            .iter()
            .map(|b| {
                vec![
                    b.cell.clone(),
                    b.kpi.clone(),
                    format!("{:.4}", b.value),
                    b.kind.describe(),
                ]
            })
            .collect();
        out.push_str(&render(
            &["cell", "kpi", "value", "breached tolerance"],
            &rows,
        ));
        out
    }
}

/// Evaluate one run (cell id → KPI map) against the plan's tolerances and
/// the recorded trajectory.
///
/// Only rows recorded on `current_machine` feed the relative baselines:
/// wall-clock KPIs (kernel GFLOP/s) are not comparable across machines, and
/// the deterministic KPIs lose nothing by the restriction. Pass `""` to
/// disable the filter (useful against synthetic histories in tests).
pub fn check_outcomes(
    plan: &AblationPlan,
    outcomes: &[(String, BTreeMap<String, f64>)],
    rows: &[RegRow],
    current_commit: &str,
    current_machine: &str,
) -> RegressionReport {
    let rows: Vec<RegRow> = rows
        .iter()
        .filter(|r| current_machine.is_empty() || r.machine == current_machine)
        .cloned()
        .collect();
    let plan_hash = plan.hash();
    let mut report = RegressionReport {
        plan: plan.name.clone(),
        plan_hash: plan_hash.clone(),
        commit: current_commit.to_string(),
        cells_checked: outcomes.len(),
        ..RegressionReport::default()
    };
    for (cell, kpis) in outcomes {
        for (kpi, tol) in &plan.tolerances {
            let Some(&value) = kpis.get(kpi) else {
                continue; // KPI not produced by this cell (e.g. ft-only)
            };
            report.kpis_checked += 1;
            check_abs(&mut report, cell, kpi, value, tol);
            if tol.rel_drop.is_none() && tol.rel_rise.is_none() {
                continue;
            }
            let traj = series(&rows, &plan_hash, cell, kpi);
            let Some(base) = baseline(&traj, current_commit) else {
                report.no_baseline += 1;
                continue;
            };
            if let Some(rel_drop) = tol.rel_drop {
                if value < base * (1.0 - rel_drop) {
                    report.breaches.push(Breach {
                        cell: cell.clone(),
                        kpi: kpi.clone(),
                        value,
                        kind: BreachKind::DropVsTrend {
                            baseline: base,
                            rel_drop,
                        },
                    });
                }
            }
            if let Some(rel_rise) = tol.rel_rise {
                if value > base * (1.0 + rel_rise) {
                    report.breaches.push(Breach {
                        cell: cell.clone(),
                        kpi: kpi.clone(),
                        value,
                        kind: BreachKind::RiseVsTrend {
                            baseline: base,
                            rel_rise,
                        },
                    });
                }
            }
        }
    }
    report
}

fn check_abs(report: &mut RegressionReport, cell: &str, kpi: &str, value: f64, tol: &Tolerance) {
    if let Some(min) = tol.min {
        if value < min {
            report.breaches.push(Breach {
                cell: cell.to_string(),
                kpi: kpi.to_string(),
                value,
                kind: BreachKind::BelowMin { min },
            });
        }
    }
    if let Some(max) = tol.max {
        if value > max {
            report.breaches.push(Breach {
                cell: cell.to_string(),
                kpi: kpi.to_string(),
                value,
                kind: BreachKind::AboveMax { max },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(unix: u64, commit: &str, value: f64) -> TrendPoint {
        TrendPoint {
            unix,
            commit: commit.into(),
            value,
        }
    }

    #[test]
    fn baseline_is_none_on_empty_and_self_only_series() {
        assert_eq!(baseline(&[], "me"), None);
        assert_eq!(baseline(&[pt(1, "me", 5.0)], "me"), None);
    }

    #[test]
    fn baseline_of_single_foreign_point_is_that_point() {
        assert_eq!(baseline(&[pt(1, "other", 5.0)], "me"), Some(5.0));
    }

    #[test]
    fn baseline_is_median_of_trailing_window() {
        let pts: Vec<TrendPoint> = (0..10).map(|i| pt(i, "c", i as f64)).collect();
        // Last 5 values are 5..9; median is 7.
        assert_eq!(baseline(&pts, "me"), Some(7.0));
        // Even-sized tail averages the middle pair.
        assert_eq!(baseline(&pts[..4], "me"), Some(1.5));
    }

    #[test]
    fn series_sorts_by_time_and_filters_exactly() {
        let mk = |unix, cell: &str, kpi: &str, v| RegRow {
            timestamp: String::new(),
            unix,
            commit: "c".into(),
            machine: "m".into(),
            plan: "p".into(),
            plan_hash: "h".into(),
            cell: cell.into(),
            kpi: kpi.into(),
            value: v,
        };
        let rows = vec![
            mk(3, "a", "gflops", 3.0),
            mk(1, "a", "gflops", 1.0),
            mk(2, "b", "gflops", 9.0),
            mk(2, "a", "comm_factor", 9.0),
        ];
        let s = series(&rows, "h", "a", "gflops");
        assert_eq!(
            s.iter().map(|p| p.value).collect::<Vec<_>>(),
            vec![1.0, 3.0]
        );
    }
}
