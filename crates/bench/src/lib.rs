//! Experiment harness: machinery shared by the per-table/per-figure
//! regenerator binaries (`src/bin/*`) that re-run the paper's evaluation
//! (§9–§10) on the simulated machine — one binary per table/figure, indexed
//! in `DESIGN.md` §4.
//!
//! * [`machine`] — Piz Daint-like machine constants and the simulated
//!   time-to-solution model (documented in `EXPERIMENTS.md`): per-rank time
//!   `T = flops/γ + bytes/β + messages·α`, with flops taken from the
//!   analytic operation counts and bytes/messages *measured* by the `xmpi`
//!   runtime. Performance figures report `%peak = total_flops/(P·γ·T)`.
//! * [`runner`] — run one algorithm at one configuration and collect a
//!   [`runner::Measurement`]; JSON-serializable for `results/`.
//! * [`table`] — plain-text table rendering for terminal output.

pub mod experiments;
pub mod machine;
pub mod runner;
pub mod table;
