//! Experiment harness: machinery shared by the per-table/per-figure
//! regenerator binaries (`src/bin/*`) that re-run the paper's evaluation
//! (§9–§10) on the simulated machine — one binary per table/figure, indexed
//! in `DESIGN.md` §4.
//!
//! * [`machine`] — Piz Daint-like machine constants and the simulated
//!   time-to-solution model (documented in `EXPERIMENTS.md`): per-rank time
//!   `T = flops/γ + bytes/β + messages·α`, with flops taken from the
//!   analytic operation counts and bytes/messages *measured* by the `xmpi`
//!   runtime. Performance figures report `%peak = total_flops/(P·γ·T)`.
//! * [`runner`] — run one algorithm at one configuration and collect a
//!   [`runner::Measurement`]; JSON-serializable for `results/`.
//! * [`table`] — plain-text table rendering for terminal output.
//!
//! The **experiments engine** (see `EXPERIMENTS.md` §"Ablation
//! methodology") layers a declarative sweep/gate pipeline on top:
//!
//! * [`plan`] — declarative [`plan::AblationPlan`]s (TOML/JSON) describing
//!   a sweep grid plus per-KPI tolerances.
//! * [`ablate`] — execute a plan's cells through the [`runner`] +
//!   [`machine::Machine`] path and extract KPI records.
//! * [`kpi`] — the KPI definitions shared by every registry writer.
//! * [`provenance`] — commit/machine/timestamp stamping shared by the
//!   registry and the `BENCH_*.json` reports.
//! * [`registry`] — the append-only `registry/ablations.csv` + JSONL
//!   trajectory store.
//! * [`trend`] — cross-commit baselines and the typed
//!   [`trend::RegressionReport`] behind `bench ablate check`.
//! * [`tune`] — the two-stage microkernel + cache-blocking auto-tuning
//!   sweep behind `bench tune`, feeding the per-machine
//!   `registry/tuning.json` that `dense::tuning` dispatches from (see
//!   `docs/TUNING.md`).

pub mod ablate;
pub mod experiments;
pub mod kpi;
pub mod machine;
pub mod plan;
pub mod provenance;
pub mod registry;
pub mod runner;
pub mod table;
pub mod trend;
pub mod tune;
