//! The auto-tuning sweep behind `bench tune` (see `docs/TUNING.md`).
//!
//! Two stages, mirroring how BLIS-style libraries are tuned by hand:
//!
//! 1. **Microkernel stage** — every [`dense::ukernel`] variant runnable on
//!    this CPU (exact variants only unless FMA is explicitly allowed) is
//!    timed on a packed GEMM at the probe size with the default blocking.
//!    The register tile dominates throughput, so this stage prunes the
//!    grid cheaply.
//! 2. **Blocking stage** — the top [`FINALISTS`] microkernels are re-timed
//!    over a (KC, MC, NC) cache-blocking grid. KC never goes below
//!    [`dense::tuning::KC_MIN_EXACT`]: the sweep only proposes configs the
//!    dispatcher would accept under the bitwise-reproducibility contract.
//!
//! The winner is then **verified** — a full GEMM under the winning config
//! is required to be bitwise-identical to the forced-scalar baseline on
//! ragged shapes with factorization-like depths — before it is offered for
//! the registry. A sweep whose winner fails verification is a bug in the
//! kernel family, and `tune()` reports it as an error rather than
//! persisting a wrong config.
//!
//! Timing uses best-of-reps over a fixed input (after one warmup), the
//! same discipline as `experiments::kernels`: the best observed time is
//! the least-noisy estimator of the achievable rate on a shared machine.

use dense::flops::gemm_flops;
use dense::gemm::{gemm, Trans};
use dense::gen::random_matrix;
use dense::tuning::{self, KernelConfig, TunedEntry, KC_MIN_EXACT};
use dense::ukernel::{self, Variant};
use dense::Matrix;
use std::hint::black_box;
use std::time::Instant;

/// How many stage-1 microkernels advance to the blocking stage.
pub const FINALISTS: usize = 3;

/// Sweep parameters.
#[derive(Debug, Clone)]
pub struct TuneOptions {
    /// GEMM probe size (default 512; `--quick` uses 256).
    pub n: usize,
    /// Timing repetitions per candidate (best-of).
    pub reps: usize,
    /// Shrink the blocking grid for CI (`--quick`).
    pub quick: bool,
    /// Include inexact FMA variants in the sweep. The resulting entry is
    /// stored with `exact = false` and ignored by dispatch unless the user
    /// opts in at runtime too.
    pub allow_fma: bool,
}

impl Default for TuneOptions {
    fn default() -> Self {
        TuneOptions {
            n: 512,
            reps: 3,
            quick: false,
            allow_fma: false,
        }
    }
}

/// One timed candidate, for the report table.
#[derive(Debug, Clone)]
pub struct Candidate {
    /// The configuration timed.
    pub config: KernelConfig,
    /// Measured throughput.
    pub gflops: f64,
    /// Which stage produced the sample.
    pub stage: &'static str,
}

/// Result of a sweep.
#[derive(Debug, Clone)]
pub struct TuneOutcome {
    /// The winning configuration (verified).
    pub best: KernelConfig,
    /// The winner's measured throughput.
    pub best_gflops: f64,
    /// Forced-scalar baseline throughput at the same probe size.
    pub scalar_gflops: f64,
    /// Probe size used.
    pub probe_n: usize,
    /// Every timed candidate, in measurement order.
    pub candidates: Vec<Candidate>,
}

impl TuneOutcome {
    /// The registry entry this sweep proposes for the current machine.
    pub fn to_entry(&self) -> TunedEntry {
        let stamp = crate::provenance::Stamp::here(None);
        TunedEntry {
            machine: stamp.machine,
            variant: self.best.variant.id.to_string(),
            kc: self.best.kc,
            mc: self.best.mc,
            nc: self.best.nc,
            gflops: self.best_gflops,
            probe_n: self.probe_n,
            exact: self.best.variant.exact(),
            commit: stamp.commit,
            timestamp: stamp.timestamp,
        }
    }

    /// Winner-over-scalar speedup (the `tuned_speedup` KPI).
    pub fn speedup(&self) -> f64 {
        self.best_gflops / self.scalar_gflops
    }
}

/// Fixed probe operands shared by every candidate measurement.
struct Probe {
    a: Matrix,
    b: Matrix,
    c: Matrix,
    flops: u64,
}

impl Probe {
    fn new(n: usize) -> Probe {
        Probe {
            a: random_matrix(n, n, 11),
            b: random_matrix(n, n, 12),
            c: Matrix::zeros(n, n),
            flops: gemm_flops(n, n, n),
        }
    }

    /// Best-of-`reps` GFLOP/s for one config (one untimed warmup first).
    fn measure(&mut self, cfg: KernelConfig, reps: usize) -> f64 {
        let mut once = || {
            tuning::with_override(cfg, || {
                gemm(
                    Trans::N,
                    Trans::N,
                    1.0,
                    self.a.as_ref(),
                    self.b.as_ref(),
                    0.0,
                    self.c.as_mut(),
                )
            });
            black_box(self.c.data()[0]);
        };
        once();
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            let t = Instant::now();
            once();
            best = best.min(t.elapsed().as_secs_f64());
        }
        self.flops as f64 / best / 1e9
    }
}

/// The blocking grid for stage 2. KC stays at or above the exact floor so
/// every proposed config passes `tuning::resolve`.
fn blocking_grid(quick: bool) -> Vec<(usize, usize, usize)> {
    let (kcs, mcs, ncs): (&[usize], &[usize], &[usize]) = if quick {
        (&[KC_MIN_EXACT, 512], &[128, 256], &[512])
    } else {
        (
            &[KC_MIN_EXACT, 384, 512],
            &[64, 128, 192, 256],
            &[256, 512, 1024],
        )
    };
    let mut grid = Vec::new();
    for &kc in kcs {
        for &mc in mcs {
            for &nc in ncs {
                grid.push((kc, mc, nc));
            }
        }
    }
    grid
}

/// Verify the winner cannot change results: a GEMM under `cfg` must be
/// bitwise-equal to the forced-scalar baseline on ragged shapes whose
/// depths cover the factorization regime (`k ≤ KC_MIN_EXACT`). Inexact
/// (FMA) winners skip the bit comparison — they are stored with
/// `exact = false` and gated at dispatch instead.
fn verify_bitwise(cfg: KernelConfig) -> Result<(), String> {
    if !cfg.variant.exact() {
        return Ok(());
    }
    for &(m, n, k) in &[(97usize, 83usize, 61usize), (130, 111, 256), (64, 64, 1)] {
        let a = random_matrix(m, k, 21);
        let b = random_matrix(k, n, 22);
        let c0 = random_matrix(m, n, 23);
        let mut want = c0.clone();
        tuning::with_override(tuning::scalar_baseline(), || {
            gemm(
                Trans::N,
                Trans::N,
                1.0,
                a.as_ref(),
                b.as_ref(),
                1.0,
                want.as_mut(),
            )
        });
        let mut got = c0.clone();
        tuning::with_override(cfg, || {
            gemm(
                Trans::N,
                Trans::N,
                1.0,
                a.as_ref(),
                b.as_ref(),
                1.0,
                got.as_mut(),
            )
        });
        if got.data() != want.data() {
            return Err(format!(
                "winner {} is not bitwise-equal to the scalar baseline at {}x{}x{}",
                cfg.describe(),
                m,
                n,
                k
            ));
        }
    }
    Ok(())
}

/// The variants stage 1 times: every available variant, exact-only unless
/// FMA is allowed.
pub fn sweep_variants(allow_fma: bool) -> Vec<&'static Variant> {
    ukernel::available_variants()
        .filter(|v| allow_fma || v.exact())
        .collect()
}

/// Run the two-stage sweep. Pure measurement: nothing is written to disk
/// (the `tune` binary persists the registry; the ablation driver records
/// KPIs).
pub fn tune(opts: &TuneOptions) -> Result<TuneOutcome, String> {
    let mut probe = Probe::new(opts.n);
    let base = tuning::default_config();
    let mut candidates = Vec::new();

    // Stage 0: the forced-scalar baseline, the speedup denominator.
    let scalar_gflops = probe.measure(tuning::scalar_baseline(), opts.reps);

    // Stage 1: microkernel sweep at default blocking.
    let variants = sweep_variants(opts.allow_fma);
    if variants.is_empty() {
        return Err("no runnable microkernel variants (broken grid?)".into());
    }
    let mut stage1: Vec<(KernelConfig, f64)> = Vec::new();
    for v in variants {
        let cfg = KernelConfig { variant: v, ..base };
        let gf = probe.measure(cfg, opts.reps);
        candidates.push(Candidate {
            config: cfg,
            gflops: gf,
            stage: "microkernel",
        });
        stage1.push((cfg, gf));
    }
    stage1.sort_by(|a, b| b.1.total_cmp(&a.1));
    stage1.truncate(FINALISTS);

    // Stage 2: blocking sweep over the finalists. The stage-1 sample at
    // default blocking stays in the pool, so stage 2 can only improve on it.
    let mut best = stage1[0];
    for &(finalist, _) in &stage1 {
        for (kc, mc, nc) in blocking_grid(opts.quick) {
            if (kc, mc, nc) == (base.kc, base.mc, base.nc) {
                continue; // already timed in stage 1
            }
            let cfg = KernelConfig {
                kc,
                mc,
                nc,
                ..finalist
            };
            let gf = probe.measure(cfg, opts.reps);
            candidates.push(Candidate {
                config: cfg,
                gflops: gf,
                stage: "blocking",
            });
            if gf > best.1 {
                best = (cfg, gf);
            }
        }
    }

    verify_bitwise(best.0)?;
    Ok(TuneOutcome {
        best: best.0,
        best_gflops: best.1,
        scalar_gflops,
        probe_n: opts.n,
        candidates,
    })
}

/// Merge a sweep outcome into the registry file at `path` (creating it if
/// absent, preserving other machines' entries) and return the stored entry.
pub fn persist(outcome: &TuneOutcome, path: &std::path::Path) -> Result<TunedEntry, String> {
    // A missing or corrupt registry is rebuilt rather than fatal: the
    // sweep's own result is the most trustworthy state we have.
    let mut entries = tuning::load_registry(path).unwrap_or_default();
    let entry = outcome.to_entry();
    tuning::upsert(&mut entries, entry.clone());
    tuning::save_registry(path, &entries).map_err(|e| format!("write {}: {e}", path.display()))?;
    Ok(entry)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_opts() -> TuneOptions {
        // Tiny probe: exercises the full pipeline in test time. Throughput
        // numbers are meaningless at n=64, but ordering/plumbing is not.
        TuneOptions {
            n: 64,
            reps: 1,
            quick: true,
            allow_fma: false,
        }
    }

    #[test]
    fn sweep_produces_a_verified_exact_winner() {
        let out = tune(&quick_opts()).expect("sweep runs");
        assert!(out.best.variant.exact(), "default sweep is exact-only");
        assert!(out.best.kc >= KC_MIN_EXACT);
        assert!(out.best_gflops > 0.0 && out.scalar_gflops > 0.0);
        // Winner is at least as fast as every candidate we timed.
        for c in &out.candidates {
            assert!(
                out.best_gflops >= c.gflops,
                "{} beat the winner",
                c.config.describe()
            );
        }
        // Entry round-trips through resolve (same machine, exact, sane).
        let entry = out.to_entry();
        let cfg = tuning::resolve(std::slice::from_ref(&entry), &entry.machine, false)
            .expect("resolvable");
        assert_eq!(cfg.variant.id, out.best.variant.id);
    }

    #[test]
    fn exact_sweep_never_times_fma_variants() {
        for v in sweep_variants(false) {
            assert!(v.exact(), "{} leaked into the exact sweep", v.id);
        }
        // With the opt-in, FMA variants appear iff the CPU supports them.
        let with_fma = sweep_variants(true);
        assert!(with_fma.len() >= sweep_variants(false).len());
    }

    #[test]
    fn persist_round_trips_and_preserves_other_machines() {
        let dir = std::env::temp_dir().join("bench-tune-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("tuning.json");
        let foreign = TunedEntry {
            machine: "other-box".into(),
            variant: "scalar_4x8_u1".into(),
            kc: 256,
            mc: 128,
            nc: 512,
            gflops: 5.0,
            probe_n: 512,
            exact: true,
            commit: "c".into(),
            timestamp: "t".into(),
        };
        tuning::save_registry(&path, std::slice::from_ref(&foreign)).unwrap();

        let out = tune(&quick_opts()).unwrap();
        let entry = persist(&out, &path).unwrap();
        let entries = tuning::load_registry(&path).unwrap();
        assert_eq!(entries.len(), 2, "foreign entry preserved");
        assert!(entries.contains(&foreign));
        assert!(entries.iter().any(|e| e.machine == entry.machine));

        // Persisting again replaces, not duplicates.
        persist(&out, &path).unwrap();
        assert_eq!(tuning::load_registry(&path).unwrap().len(), 2);
    }

    #[test]
    fn blocking_grid_respects_the_exact_kc_floor() {
        for quick in [false, true] {
            for (kc, _, _) in blocking_grid(quick) {
                assert!(kc >= KC_MIN_EXACT);
            }
        }
    }
}
