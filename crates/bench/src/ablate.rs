//! The ablation driver: execute a plan's grid through the existing
//! [`crate::runner`] + [`crate::machine::Machine`] measurement path and
//! extract KPI records.
//!
//! Every factor cell runs the real simulated factorization — traced (for
//! the schedule KPIs) and under a seeded [`xharness`] perturbation (so the
//! perturbation seed matrix is an ordinary sweep axis; a perturbed run must
//! produce identical traffic, which keeps the deterministic KPIs stable by
//! construction). Cells whose parameters are structurally invalid on this
//! grid (block size not dividing N, replication not dividing P, …) are
//! *skipped with a reason*, mirroring how the hand-written sweeps handled
//! infeasible corners — a sweep engine that errors out on the first
//! infeasible corner cannot sweep.

use crate::kpi::{algo_from_name, comm_kpis, factor_kpis, kernel_kpis, transport_kpis};
use crate::machine::Machine;
use crate::plan::{AblationPlan, Cell, PlanWorkload};
use crate::runner::{Algo, Workload};
use factor::lu25d_swap::{lu25d_swap, SwapLuConfig};
use factor::{
    confchox_cholesky, confchox_cholesky_ft, conflux_lu, conflux_lu_ft, twod_cholesky, twod_lu,
    ConfchoxConfig, ConfluxConfig, FtConfig, TwodConfig,
};
use std::collections::BTreeMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use xharness::PerturbConfig;
use xmpi::trace::TraceConfig;
use xmpi::{Grid2, Grid3, WorldStats, WorldTrace};

/// Input-matrix seed: fixed so the workload — and therefore every
/// deterministic KPI — is comparable across commits. (The `seed` axis
/// perturbs the *schedule*, never the input.)
const INPUT_SEED: u64 = 77;

/// One executed cell.
#[derive(Debug, Clone)]
pub struct CellOutcome {
    /// The grid point.
    pub cell: Cell,
    /// Extracted KPI record.
    pub kpis: BTreeMap<String, f64>,
}

/// Result of executing a plan.
#[derive(Debug, Clone, Default)]
pub struct AblationRun {
    /// Plan name.
    pub plan: String,
    /// Plan hash.
    pub plan_hash: String,
    /// Executed cells, in grid order.
    pub outcomes: Vec<CellOutcome>,
    /// Infeasible/failed cells with reasons.
    pub skipped: Vec<(String, String)>,
}

impl AblationRun {
    /// Outcomes as `(cell id, kpis)` pairs, the shape the trend checker
    /// consumes.
    pub fn id_outcomes(&self) -> Vec<(String, BTreeMap<String, f64>)> {
        self.outcomes
            .iter()
            .map(|o| (o.cell.id(), o.kpis.clone()))
            .collect()
    }
}

/// Execute every cell of `plan`.
pub fn run_ablation(plan: &AblationPlan) -> AblationRun {
    let mach = Machine::piz_daint();
    let mut run = AblationRun {
        plan: plan.name.clone(),
        plan_hash: plan.hash(),
        ..AblationRun::default()
    };
    for cell in plan.cells() {
        let outcome = catch_unwind(AssertUnwindSafe(|| match plan.workload {
            PlanWorkload::Factor => run_factor_cell(&cell, &mach),
            PlanWorkload::Kernels => run_kernel_cell(&cell, plan.reps),
            PlanWorkload::Tune => run_tune_cell(&cell, plan.reps),
            PlanWorkload::Comm => run_comm_cell(&cell, plan.reps),
            PlanWorkload::Transport => run_transport_cell(&cell, plan.reps),
        }));
        match outcome {
            Ok(Ok(kpis)) => run.outcomes.push(CellOutcome { cell, kpis }),
            Ok(Err(reason)) => run.skipped.push((cell.id(), reason)),
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic".to_string());
                run.skipped.push((cell.id(), format!("panicked: {msg}")));
            }
        }
    }
    run
}

/// Resolve the 2.5D grid and block size for a cell, honoring the `c` and
/// `block` axes (`0` = automatic).
fn grid_and_block(cell: &Cell) -> Result<(Grid3, usize), String> {
    let (n, p) = (cell.n, cell.p);
    if cell.c == 0 {
        let auto = ConfluxConfig::auto(n, p);
        let (grid, mut v) = (auto.grid, auto.v);
        if cell.block > 0 {
            v = cell.block;
        }
        validate(n, v, grid)?;
        return Ok((grid, v));
    }
    let c = cell.c;
    if !p.is_multiple_of(c) {
        return Err(format!("replication c={c} does not divide p={p}"));
    }
    let layer = Grid2::near_square(p / c);
    if c > layer.rows.min(layer.cols) {
        return Err(format!(
            "replication c={c} exceeds the layer grid {}x{}",
            layer.rows, layer.cols
        ));
    }
    let grid = Grid3::new(layer.rows, layer.cols, c);
    let v = if cell.block > 0 {
        cell.block
    } else {
        factor::common::choose_block(n, c, (4 * c).max(16))
            .ok_or_else(|| format!("no valid block size for n={n}, c={c}"))?
    };
    validate(n, v, grid)?;
    Ok((grid, v))
}

fn validate(n: usize, v: usize, grid: Grid3) -> Result<(), String> {
    if v == 0 || !n.is_multiple_of(v) {
        return Err(format!("block v={v} does not divide n={n}"));
    }
    if !v.is_multiple_of(grid.pz) {
        return Err(format!("block v={v} is not a multiple of pz={}", grid.pz));
    }
    Ok(())
}

fn run_factor_cell(cell: &Cell, mach: &Machine) -> Result<BTreeMap<String, f64>, String> {
    let algo = algo_from_name(&cell.algo).ok_or_else(|| format!("unknown algo {}", cell.algo))?;
    let w = Workload::new(cell.n, INPUT_SEED);
    let pert = PerturbConfig::new(cell.seed);

    let (stats, trace, extra) = if cell.checksum {
        run_checksummed(cell, algo, &w, &pert)?
    } else {
        run_plain(cell, algo, &w, &pert)?
    };

    let c_used = match algo {
        Algo::TwodLu | Algo::TwodChol => 1,
        _ => grid_and_block(cell)?.0.pz,
    };
    let mut kpis = factor_kpis(algo, cell.n, cell.p, c_used, &stats, trace.as_ref(), mach);
    kpis.insert("c_used".into(), c_used as f64);
    kpis.extend(extra);
    Ok(kpis)
}

type CellRun = (WorldStats, Option<WorldTrace>, BTreeMap<String, f64>);

fn run_plain(
    cell: &Cell,
    algo: Algo,
    w: &Workload,
    pert: &PerturbConfig,
) -> Result<CellRun, String> {
    let (n, p) = (cell.n, cell.p);
    let run = |f: Box<dyn FnOnce() -> (WorldStats, f64) + '_>| {
        let ((stats, v_used), mut traces) =
            xharness::run_perturbed_traced(pert, TraceConfig::default(), f);
        let trace = traces.pop();
        let mut extra = BTreeMap::new();
        extra.insert("v_used".to_string(), v_used);
        (stats, trace, extra)
    };
    Ok(match algo {
        Algo::Conflux => {
            let (grid, v) = grid_and_block(cell)?;
            let mut cfg = ConfluxConfig::new(n, v, grid).volume_only();
            if !cell.lookahead {
                cfg = cfg.blocking();
            }
            run(Box::new(move || {
                let out = conflux_lu(&cfg, &w.general).expect("conflux failed");
                (out.stats, v as f64)
            }))
        }
        Algo::Confchox => {
            let (grid, v) = grid_and_block(cell)?;
            let mut cfg = ConfchoxConfig::new(n, v, grid).volume_only();
            if !cell.lookahead {
                cfg = cfg.blocking();
            }
            run(Box::new(move || {
                let out = confchox_cholesky(&cfg, &w.spd).expect("confchox failed");
                (out.stats, v as f64)
            }))
        }
        Algo::SwapLu => {
            let (grid, v) = grid_and_block(cell)?;
            let cfg = SwapLuConfig::new(n, v, grid).volume_only();
            run(Box::new(move || {
                let out = lu25d_swap(&cfg, &w.general).expect("lu25d failed");
                (out.stats, v as f64)
            }))
        }
        Algo::TwodLu | Algo::TwodChol => {
            if cell.c > 1 {
                return Err(format!("2D algo cannot replicate (c={})", cell.c));
            }
            let mut cfg = TwodConfig::auto(n, p).volume_only();
            if cell.block > 0 {
                cfg = TwodConfig::new(n, cell.block, cfg.grid).volume_only();
            }
            let nb = cfg.nb;
            run(Box::new(move || {
                let stats = if algo == Algo::TwodLu {
                    twod_lu(&cfg, &w.general).expect("2d lu failed").stats
                } else {
                    twod_cholesky(&cfg, &w.spd).expect("2d chol failed").stats
                };
                (stats, nb as f64)
            }))
        }
    })
}

/// The ABFT fault-tolerant path: run with checksums on, then (outside the
/// trace) with checksums off, and report the byte tax as its own KPI. The
/// lookahead axis does not apply — the ft schedules are blocking.
fn run_checksummed(
    cell: &Cell,
    algo: Algo,
    w: &Workload,
    pert: &PerturbConfig,
) -> Result<CellRun, String> {
    if !matches!(algo, Algo::Conflux | Algo::Confchox) {
        return Err(format!(
            "checksum axis needs conflux|confchox, not {}",
            cell.algo
        ));
    }
    let (grid, v) = grid_and_block(cell)?;
    let cfg = FtConfig::new(cell.n, v, grid).checkpoint_every(0);
    let plain_cfg = cfg.clone().no_checksums();

    let run_ft = |cfg: &FtConfig| -> WorldStats {
        match algo {
            Algo::Conflux => {
                let mut out = conflux_lu_ft(cfg, &w.general).expect("ft lu failed");
                out.report.attempt_stats.pop().expect("one attempt")
            }
            _ => {
                let mut out = confchox_cholesky_ft(cfg, &w.spd).expect("ft chol failed");
                out.report.attempt_stats.pop().expect("one attempt")
            }
        }
    };

    let (ck_stats, mut traces) =
        xharness::run_perturbed_traced(pert, TraceConfig::default(), || run_ft(&cfg));
    let plain_stats = xharness::run_perturbed(pert, || run_ft(&plain_cfg));

    let mut extra = BTreeMap::new();
    extra.insert("v_used".to_string(), v as f64);
    let plain = plain_stats.avg_rank_bytes();
    if plain > 0.0 {
        extra.insert(
            "checksum_byte_overhead".to_string(),
            ck_stats.avg_rank_bytes() / plain - 1.0,
        );
    }
    Ok((ck_stats, traces.pop(), extra))
}

fn run_kernel_cell(cell: &Cell, reps: usize) -> Result<BTreeMap<String, f64>, String> {
    let report = crate::experiments::kernels::kernels(&[cell.n], reps);
    // Keep the provenance-stamped BENCH_kernels.json artifact flowing for
    // consumers of results/ (the CI upload step among them). Socket-backend
    // child ranks replaying the plan never write artifacts.
    if !xmpi::launch::is_child() {
        if let Err(e) = report.save(std::path::Path::new("results")) {
            eprintln!("(could not save results/{}.json: {e})", report.id);
        }
    }
    let kpis = kernel_kpis(&report.json, cell.n);
    if kpis.is_empty() {
        return Err(format!("kernel report produced no KPIs at n={}", cell.n));
    }
    Ok(kpis)
}

/// A tune-workload cell: run the two-stage auto-tuning sweep at the cell's
/// probe size and record what it found as KPIs. Uses the `--quick` blocking
/// grid (the plan's job is trend-tracking the tuner's outcome, not the
/// exhaustive sweep) and never writes `registry/tuning.json` — persisting a
/// config is an explicit `bench tune` action, not a side effect of a
/// nightly sweep.
fn run_tune_cell(cell: &Cell, reps: usize) -> Result<BTreeMap<String, f64>, String> {
    let opts = crate::tune::TuneOptions {
        n: cell.n,
        reps,
        quick: true,
        allow_fma: false,
    };
    let outcome = crate::tune::tune(&opts)?;
    Ok(crate::kpi::tune_kpis(&outcome))
}

/// A comm-workload cell: run the transport microbenchmark at the cell's
/// `(n, p)` — `n` is the broadcast message size in f64 elements — and pull
/// the matching KPI record. The full report (with the whole sweep grid and
/// the traced headline cell) is persisted under `results/` for the CI
/// artifact upload, same as the kernels path.
fn run_comm_cell(cell: &Cell, reps: usize) -> Result<BTreeMap<String, f64>, String> {
    if cell.p < 2 {
        return Err(format!("comm cells need p >= 2, got p={}", cell.p));
    }
    let report = crate::experiments::comm::comm(&[cell.p], &[cell.n], reps);
    if !xmpi::launch::is_child() {
        if let Err(e) = report.save(std::path::Path::new("results")) {
            eprintln!("(could not save results/{}.json: {e})", report.id);
        }
    }
    let kpis = comm_kpis(&report.json, cell.n, cell.p);
    if !kpis.contains_key("bcast_speedup") {
        return Err(format!(
            "comm report produced no bcast KPIs at n={}, p={}",
            cell.n, cell.p
        ));
    }
    Ok(kpis)
}

/// A transport-workload cell: measure the postal-model α-β of both the
/// in-process and the socket backend at the cell's `(n, p)` — `n` is the
/// probed message size in f64 elements — and record the fit (and its gap
/// to the simulated machine model) as KPIs.
///
/// The socket half re-executes the current binary, so this cell must be
/// reached deterministically from `main` (the `ablations` CLI qualifies;
/// libtest does not — unit tests cover only the local half). Artifact
/// writes are gated on [`xmpi::launch::is_child`]: a child rank replaying
/// an *earlier* plan cell to find its world must never rewrite the
/// parent's results.
fn run_transport_cell(cell: &Cell, reps: usize) -> Result<BTreeMap<String, f64>, String> {
    if cell.p < 2 {
        return Err(format!("transport cells need p >= 2, got p={}", cell.p));
    }
    let report = crate::experiments::transport::transport(&[cell.p], &[cell.n], reps);
    if !xmpi::launch::is_child() {
        if let Err(e) = report.save(std::path::Path::new("results")) {
            eprintln!("(could not save results/{}.json: {e})", report.id);
        }
    }
    let kpis = transport_kpis(&report.json, cell.n, cell.p);
    if !kpis.contains_key("alpha_socket_us") {
        return Err(format!(
            "transport report produced no socket fit at n={}, p={}",
            cell.n, cell.p
        ));
    }
    Ok(kpis)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::parse_toml;

    fn tiny_plan(extra: &str) -> AblationPlan {
        let text = format!(
            r#"
name = "tiny"
workload = "factor"
[axes]
algo = ["conflux"]
n = [32]
p = [4]
{extra}
"#
        );
        AblationPlan::from_value(&parse_toml(&text).unwrap()).unwrap()
    }

    #[test]
    fn tiny_grid_executes_and_extracts_kpis() {
        let run = run_ablation(&tiny_plan(""));
        assert_eq!(run.outcomes.len(), 1, "skipped: {:?}", run.skipped);
        let kpis = &run.outcomes[0].kpis;
        assert!(kpis["gflops"] > 0.0);
        assert!(kpis["comm_factor"] >= 1.0);
        assert!(kpis.contains_key("idle_frac"), "trace KPIs present");
        assert!(kpis["v_used"] > 0.0);
    }

    #[test]
    fn deterministic_kpis_are_seed_invariant() {
        let plan = tiny_plan("seed = [0, 3]");
        let run = run_ablation(&plan);
        assert_eq!(run.outcomes.len(), 2, "skipped: {:?}", run.skipped);
        for kpi in ["gflops", "words_per_rank", "msgs_per_rank", "comm_factor"] {
            assert_eq!(
                run.outcomes[0].kpis[kpi], run.outcomes[1].kpis[kpi],
                "{kpi} must not depend on the perturbation seed"
            );
        }
    }

    #[test]
    fn infeasible_cells_are_skipped_with_reasons() {
        let plan = tiny_plan("c = [3]"); // 3 does not divide p=4
        let run = run_ablation(&plan);
        assert!(run.outcomes.is_empty());
        assert_eq!(run.skipped.len(), 1);
        assert!(
            run.skipped[0].1.contains("does not divide"),
            "{:?}",
            run.skipped
        );
    }

    #[test]
    fn tune_cells_run_the_sweep_and_record_the_winner() {
        let text = r#"
name = "tune-unit"
workload = "tune"
[axes]
n = [64]
[fixed]
reps = 1
"#;
        let plan = AblationPlan::from_value(&parse_toml(text).unwrap()).unwrap();
        let run = run_ablation(&plan);
        assert_eq!(run.outcomes.len(), 1, "skipped: {:?}", run.skipped);
        let kpis = &run.outcomes[0].kpis;
        assert!(kpis["gflops_tuned"] > 0.0);
        assert!(kpis["tuned_speedup"] > 0.0);
        assert!(kpis["best_kc"] >= 256.0, "exact KC floor");
        assert!(kpis.contains_key("best_is_simd"));
    }

    #[test]
    fn comm_cells_run_the_microbenchmark_and_record_the_speedup() {
        let text = r#"
name = "comm-unit"
workload = "comm"
[axes]
n = [256]
p = [4]
[fixed]
reps = 1
"#;
        let plan = AblationPlan::from_value(&parse_toml(text).unwrap()).unwrap();
        let run = run_ablation(&plan);
        assert_eq!(run.outcomes.len(), 1, "skipped: {:?}", run.skipped);
        let kpis = &run.outcomes[0].kpis;
        assert!(kpis["bcast_speedup"] > 0.0);
        assert!(kpis["bcast_tree_us"] > 0.0);
        assert!(kpis["p2p_latency_us"] > 0.0);
    }

    #[test]
    fn checksummed_cells_report_the_byte_tax() {
        let plan = tiny_plan("checksum = [true]");
        let run = run_ablation(&plan);
        assert_eq!(run.outcomes.len(), 1, "skipped: {:?}", run.skipped);
        let tax = run.outcomes[0].kpis["checksum_byte_overhead"];
        assert!(tax > 0.0 && tax < 1.0, "tax = {tax}");
    }
}
