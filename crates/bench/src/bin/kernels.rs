//! Local-kernel throughput report (`bench kernels` mode).
//!
//! Measures GFLOP/s for the packed dense kernels (`gemm`, `gemmt`, `trsm`,
//! `getrf`, `potrf`) plus the naive GEMM reference, writes
//! `results/BENCH_kernels.json`, and — when `--min-speedup` is given —
//! exits nonzero if the packed-vs-naive GEMM speedup at the largest size
//! falls below the threshold (the CI perf-smoke gate).
//!
//! ```text
//! kernels [--sizes 128,256,512] [--reps 3] [--out results] [--min-speedup 2.0]
//! ```

use std::path::Path;
use std::process::ExitCode;

struct Args {
    sizes: Vec<usize>,
    reps: usize,
    out: String,
    min_speedup: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        sizes: vec![128, 256, 512],
        reps: 3,
        out: "results".into(),
        min_speedup: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--sizes" => {
                args.sizes = value("--sizes")?
                    .split(',')
                    .map(|s| {
                        s.trim()
                            .parse::<usize>()
                            .map_err(|e| format!("bad size {s:?}: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
                if args.sizes.is_empty() {
                    return Err("--sizes needs at least one size".into());
                }
            }
            "--reps" => {
                args.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("bad --reps: {e}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--min-speedup" => {
                args.min_speedup = Some(
                    value("--min-speedup")?
                        .parse()
                        .map_err(|e| format!("bad --min-speedup: {e}"))?,
                );
            }
            "--help" | "-h" => {
                return Err(
                    "usage: kernels [--sizes N,N,..] [--reps R] [--out DIR] [--min-speedup X]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let report = bench::experiments::kernels::kernels(&args.sizes, args.reps);
    println!("== {} — {} ==\n{}", report.id, report.title, report.text);
    if let Err(e) = report.save(Path::new(&args.out)) {
        eprintln!("could not save {}/{}.json: {e}", args.out, report.id);
        return ExitCode::FAILURE;
    }

    if let Some(min) = args.min_speedup {
        let achieved = bench::experiments::kernels::final_speedup(&report);
        let n = args.sizes.last().copied().unwrap_or(0);
        if achieved < min {
            eprintln!(
                "FAIL: packed gemm speedup {achieved:.2}x at N={n} is below the {min:.2}x gate"
            );
            return ExitCode::FAILURE;
        }
        println!("packed gemm speedup gate: {achieved:.2}x >= {min:.2}x at N={n} — ok");
    }
    ExitCode::SUCCESS
}
