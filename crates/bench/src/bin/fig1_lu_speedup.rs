//! Regenerate Figure 1 (COnfLUX speedup heatmap + % of peak).
fn main() {
    bench::experiments::fig1::fig1(&[256, 512, 1024, 2048], &[4, 16, 64]).emit();
}
