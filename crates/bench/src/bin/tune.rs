//! Auto-tune the dense microkernel + cache blocking for this machine
//! (`bench tune` mode; methodology in `docs/TUNING.md`).
//!
//! Runs the two-stage sweep in [`bench::tune`] — all runnable microkernel
//! variants at default blocking, then a (KC, MC, NC) grid over the
//! finalists — verifies the winner is bitwise-equal to the scalar
//! baseline, and merges it into the per-machine tuning registry that
//! `dense::tuning` dispatches from at startup.
//!
//! ```text
//! tune [--quick] [--n 512] [--reps 3] [--fma] [--registry registry/tuning.json]
//!      [--dry-run] [--min-speedup 1.5]
//! ```
//!
//! `--quick` shrinks the blocking grid for CI; `--fma` admits the inexact
//! fused-multiply-add variants (the entry is stored with `exact = false`
//! and ignored by dispatch unless `CONFLUX_TUNING_ALLOW_INEXACT=1`);
//! `--dry-run` sweeps and reports without touching the registry;
//! `--min-speedup` exits nonzero if the winner fails to beat the
//! forced-scalar baseline by the given factor (a self-test for the sweep).

use bench::table::render;
use bench::tune::{tune, TuneOptions};
use std::path::Path;
use std::process::ExitCode;

struct Args {
    opts: TuneOptions,
    registry: String,
    dry_run: bool,
    min_speedup: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        opts: TuneOptions::default(),
        registry: dense::tuning::DEFAULT_REGISTRY_PATH.into(),
        dry_run: false,
        min_speedup: None,
    };
    let mut n_explicit = false;
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--quick" => args.opts.quick = true,
            "--fma" => args.opts.allow_fma = true,
            "--dry-run" => args.dry_run = true,
            "--n" => {
                args.opts.n = value("--n")?.parse().map_err(|e| format!("bad --n: {e}"))?;
                n_explicit = true;
            }
            "--reps" => {
                args.opts.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("bad --reps: {e}"))?;
            }
            "--registry" => args.registry = value("--registry")?,
            "--min-speedup" => {
                args.min_speedup = Some(
                    value("--min-speedup")?
                        .parse()
                        .map_err(|e| format!("bad --min-speedup: {e}"))?,
                );
            }
            "--help" | "-h" => {
                return Err("usage: tune [--quick] [--n N] [--reps R] [--fma] \
                            [--registry PATH] [--dry-run] [--min-speedup X]"
                    .into())
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    // --quick probes at 256 unless the user pinned a size explicitly.
    if args.opts.quick && !n_explicit {
        args.opts.n = 256;
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let machine = dense::tuning::machine_fingerprint();
    println!(
        "tuning {} (probe n={}, reps={}, {} grid{})",
        machine,
        args.opts.n,
        args.opts.reps,
        if args.opts.quick { "quick" } else { "full" },
        if args.opts.allow_fma { ", +fma" } else { "" },
    );

    let outcome = match tune(&args.opts) {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("tuning failed: {msg}");
            return ExitCode::FAILURE;
        }
    };

    // Top candidates, best first.
    let mut ranked = outcome.candidates.clone();
    ranked.sort_by(|a, b| b.gflops.total_cmp(&a.gflops));
    let rows: Vec<Vec<String>> = ranked
        .iter()
        .take(10)
        .map(|c| {
            vec![
                c.config.variant.id.to_string(),
                c.config.kc.to_string(),
                c.config.mc.to_string(),
                c.config.nc.to_string(),
                c.stage.to_string(),
                format!("{:.2}", c.gflops),
            ]
        })
        .collect();
    println!(
        "{}",
        render(&["variant", "kc", "mc", "nc", "stage", "GF/s"], &rows)
    );
    println!(
        "winner: {} at {:.2} GF/s — {:.2}x over the forced-scalar baseline ({:.2} GF/s), {} candidates timed",
        outcome.best.describe(),
        outcome.best_gflops,
        outcome.speedup(),
        outcome.scalar_gflops,
        outcome.candidates.len(),
    );

    if args.dry_run {
        println!("(dry run: registry untouched)");
    } else {
        match bench::tune::persist(&outcome, Path::new(&args.registry)) {
            Ok(entry) => println!(
                "wrote {} entry for {} (commit {})",
                args.registry,
                entry.machine,
                &entry.commit[..entry.commit.len().min(12)]
            ),
            Err(msg) => {
                eprintln!("could not persist: {msg}");
                return ExitCode::FAILURE;
            }
        }
    }

    if let Some(min) = args.min_speedup {
        let got = outcome.speedup();
        if got < min {
            eprintln!("FAIL: tuned speedup {got:.2}x is below the {min:.2}x gate");
            return ExitCode::FAILURE;
        }
        println!("tuned speedup gate: {got:.2}x >= {min:.2}x — ok");
    }
    ExitCode::SUCCESS
}
