//! Transport α-β calibration report (`bench transport` mode).
//!
//! Measures the postal-model constants (per-message latency α, large-
//! message bandwidth β) of the in-process backend and the socket backend —
//! the latter spawns child rank processes that re-execute this binary — and
//! prints them next to the simulated machine model's constants. Writes
//! `results/BENCH_transport.json`.
//!
//! ```text
//! transport [--ps 2,4] [--sizes 1024,8192] [--reps 3] [--out results]
//! ```
//!
//! Child ranks (re-executed with `XMPI_CHILD_RANK` set) replay the same
//! argument parse and measurement sequence to find their world, then exit
//! inside it — only the parent prints and persists the report.

use std::path::Path;
use std::process::ExitCode;

struct Args {
    ps: Vec<usize>,
    sizes: Vec<usize>,
    reps: usize,
    out: String,
}

fn parse_list(name: &str, raw: &str) -> Result<Vec<usize>, String> {
    let vals: Vec<usize> = raw
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map_err(|e| format!("bad {name} entry {s:?}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    if vals.is_empty() {
        return Err(format!("{name} needs at least one value"));
    }
    Ok(vals)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ps: vec![2, 4],
        sizes: vec![1024, 8192],
        reps: 3,
        out: "results".into(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--ps" => args.ps = parse_list("--ps", &value("--ps")?)?,
            "--sizes" => args.sizes = parse_list("--sizes", &value("--sizes")?)?,
            "--reps" => {
                args.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("bad --reps: {e}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--help" | "-h" => {
                return Err(
                    "usage: transport [--ps P,P,..] [--sizes N,N,..] [--reps R] [--out DIR]".into(),
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.ps.iter().any(|&p| p < 2) {
        return Err("--ps entries must be >= 2 (a ping-pong needs a peer)".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let report = bench::experiments::transport::transport(&args.ps, &args.sizes, args.reps);
    println!("== {} — {} ==\n{}", report.id, report.title, report.text);
    if let Err(e) = report.save(Path::new(&args.out)) {
        eprintln!("(could not save {}/{}.json: {e})", args.out, report.id);
    }
    ExitCode::SUCCESS
}
