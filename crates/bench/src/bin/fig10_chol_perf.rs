//! Regenerate Figure 10 (% of peak for Cholesky, strong + weak scaling).
fn main() {
    bench::experiments::fig9::fig10(&[4, 8, 16, 32, 64]).emit();
}
