//! Randomized perturbation soak for the simulated runtime.
//!
//! Runs the three kernels (COnfLUX, COnfCHOX, 2.5D MMM) across a matrix of
//! schedule-perturbation seeds, checking the full conformance contract per
//! seed: bitwise-identical factors and pivots vs the unperturbed baseline,
//! bitwise-identical per-rank/per-phase byte counts, and clean
//! `xtrace::invariants` on a traced run. On the first failing seed it
//! writes `results/stress_failure.json` — the seed, the perturbation
//! preset, and the failure message — and exits nonzero, so CI can upload
//! the artifact and a developer can replay with
//! `XHARNESS_SEEDS=list:<seed>`.
//!
//! Usage:
//!   stress [--seeds N] [--n N] [--preset light|aggressive] [--out FILE]
//!
//! `XHARNESS_SEEDS` overrides `--seeds` (same syntax as the test suite).
//! See `stress --help` for the failure-replay and golden re-bless flow.

use dense::gen::{random_matrix, random_spd};
use dense::norms::{lu_residual_perm, po_residual};
use dense::Matrix;
use factor::{confchox_cholesky, conflux_lu, mmm25d, ConfchoxConfig, ConfluxConfig, Mmm25dConfig};
use serde_json::json;
use xharness::{run_perturbed_traced, seeds, PerturbConfig};
use xmpi::{Grid3, TraceConfig};
use xtrace::invariants::{check_stats_equal, check_trace};

const HELP: &str = "\
usage: stress [--seeds N] [--n N] [--preset light|aggressive] [--out FILE]

Randomized schedule-perturbation soak over COnfLUX, COnfCHOX and 2.5D MMM.
Every seed must reproduce the unperturbed baseline bitwise (factors, pivots,
per-rank/per-phase byte counts) and pass the xtrace invariant checks.

  --seeds N    number of perturbation seeds per kernel (default 32);
               the XHARNESS_SEEDS env var overrides this and also accepts
               a comma list or `list:N` (same syntax as the test suite)
  --n N        matrix dimension (default 64, grid fixed at 2x2x2)
  --preset P   `light` (timing jitter only) or `aggressive` (default:
               jitter + reordering stress)
  --out FILE   failure artifact path (default results/stress_failure.json)

On the first failing seed, the seed/preset/error triple is written to the
--out file, a replay command of the form
  XHARNESS_SEEDS=list:<seed> cargo test -p factor --test conformance --release
is included in it, and the process exits nonzero so CI uploads the artifact.

If a failure is an *intended* traffic change (a schedule edit that legitimately
shifts per-phase byte counts), the golden baselines in results/golden_volumes.json
are stale, not the code. Re-bless them with
  GOLDEN_BLESS=1 cargo test -p factor --test golden_volumes
and commit the resulting diff alongside the schedule change; never bless to
paper over a bitwise or invariant divergence.";

struct Args {
    seeds: u64,
    n: usize,
    preset: String,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 32,
        n: 64,
        preset: "aggressive".to_string(),
        out: "results/stress_failure.json".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--seeds" => args.seeds = val("--seeds").parse().expect("--seeds: not a number"),
            "--n" => args.n = val("--n").parse().expect("--n: not a number"),
            "--preset" => args.preset = val("--preset"),
            "--out" => args.out = val("--out"),
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    args
}

/// A kernel run distilled to what the soak compares: the collected result
/// matrix (if any), the pivot sequence (empty when the kernel has none),
/// and the world's traffic counters.
type KernelRun = (Option<Matrix>, Vec<usize>, xmpi::WorldStats);

/// A named kernel driver the soak can rerun under perturbation.
type Kernel<'a> = (&'a str, Box<dyn Fn() -> KernelRun + Sync + 'a>);

fn bitwise_eq(a: &Matrix, b: &Matrix) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

/// One kernel's soak: baseline once, then every seed under perturbation.
/// Returns the failure message for the first bad seed, if any.
fn soak(
    label: &str,
    seed_list: &[u64],
    preset: &str,
    baseline: &(dyn Fn() -> KernelRun + Sync),
) -> Result<(), (u64, String)> {
    let (base_m, base_perm, base_stats) = baseline();
    for &seed in seed_list {
        let cfg = match preset {
            "light" => PerturbConfig::new(seed),
            _ => PerturbConfig::aggressive(seed),
        };
        let ((m, perm, stats), traces) =
            run_perturbed_traced(&cfg, TraceConfig::default(), baseline);
        if perm != base_perm {
            return Err((seed, format!("{label}: pivots diverged from baseline")));
        }
        match (&m, &base_m) {
            (Some(a), Some(b)) if !bitwise_eq(a, b) => {
                return Err((seed, format!("{label}: factor bits diverged from baseline")));
            }
            _ => {}
        }
        let drift = check_stats_equal(&base_stats, &stats);
        if !drift.is_empty() {
            return Err((seed, format!("{label}: traffic drifted: {drift:?}")));
        }
        for (i, trace) in traces.iter().enumerate() {
            let report = check_trace(trace);
            if !report.is_clean() {
                return Err((
                    seed,
                    format!(
                        "{label}: world {i} violated invariants: {:?}",
                        report.violations
                    ),
                ));
            }
        }
    }
    Ok(())
}

fn main() {
    let args = parse_args();
    let seed_list = seeds(args.seeds);
    let n = args.n;
    let grid = Grid3::new(2, 2, 2);
    let v = 8.min(n / 4).max(1);

    let a = random_matrix(n, n, 1001);
    let spd = random_spd(n, 1002);
    let b = random_matrix(n, n, 1003);

    // Sanity: the baselines themselves must be numerically sound before the
    // soak means anything.
    let lu = conflux_lu(&ConfluxConfig::new(n, v, grid), &a).expect("baseline LU");
    let resid = lu_residual_perm(&a, lu.packed.as_ref().unwrap(), &lu.perm);
    assert!(resid < 1e-10, "baseline LU residual {resid:e}");
    let ch = confchox_cholesky(&ConfchoxConfig::new(n, v, grid), &spd).expect("baseline Cholesky");
    let chres = po_residual(&spd, ch.l.as_ref().unwrap());
    assert!(chres < 1e-10, "baseline Cholesky residual {chres:e}");

    println!(
        "stress: {} seeds × 3 kernels, n={n}, grid 2x2x2, preset {}",
        seed_list.len(),
        args.preset
    );

    let kernels: Vec<Kernel> = vec![
        (
            "conflux",
            Box::new(|| {
                let out = conflux_lu(&ConfluxConfig::new(n, v, grid), &a).expect("conflux");
                (out.packed, out.perm, out.stats)
            }),
        ),
        (
            "confchox",
            Box::new(|| {
                let out =
                    confchox_cholesky(&ConfchoxConfig::new(n, v, grid), &spd).expect("confchox");
                (out.l, Vec::new(), out.stats)
            }),
        ),
        (
            "mmm25d",
            Box::new(|| {
                let out = mmm25d(&Mmm25dConfig::new(n, v.min(n / 4).max(1), grid), &a, &b);
                (out.c, Vec::new(), out.stats)
            }),
        ),
    ];

    for (label, baseline) in &kernels {
        match soak(label, &seed_list, &args.preset, baseline.as_ref()) {
            Ok(()) => println!("  {label}: {} seeds clean", seed_list.len()),
            Err((seed, msg)) => {
                let failure = json!({
                    "kernel": label,
                    "seed": seed,
                    "preset": args.preset,
                    "n": n,
                    "grid": [2, 2, 2],
                    "error": msg,
                    "replay": format!("XHARNESS_SEEDS=list:{seed} cargo test -p factor --test conformance --release"),
                });
                if let Some(dir) = std::path::Path::new(&args.out).parent() {
                    let _ = std::fs::create_dir_all(dir);
                }
                std::fs::write(
                    &args.out,
                    serde_json::to_string_pretty(&failure).unwrap() + "\n",
                )
                .unwrap_or_else(|e| panic!("write {}: {e}", args.out));
                eprintln!("stress FAILURE at seed {seed}: {msg}");
                eprintln!("details written to {}", args.out);
                std::process::exit(1);
            }
        }
    }
    println!("stress: all kernels clean over {} seeds", seed_list.len());
}
