//! Regenerate Figure 8c (communication reduction vs second best).
fn main() {
    bench::experiments::fig8::fig8c(&[256, 512, 1024], &[4, 16, 64]).emit();
}
