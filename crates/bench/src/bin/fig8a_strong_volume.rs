//! Regenerate Figure 8a (volume per rank, fixed N, varying P).
fn main() {
    bench::experiments::fig8::fig8a(1024, &[4, 8, 16, 32, 64]).emit();
}
