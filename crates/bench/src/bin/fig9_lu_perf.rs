//! Regenerate Figure 9 (% of peak for LU, strong + weak scaling).
fn main() {
    bench::experiments::fig9::fig9(&[4, 8, 16, 32, 64]).emit();
}
