//! Regenerate Figure 11 (COnfCHOX speedup heatmap + % of peak).
fn main() {
    bench::experiments::fig1::fig11(&[256, 512, 1024, 2048], &[4, 16, 64]).emit();
}
