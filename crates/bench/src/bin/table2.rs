//! Regenerate Table 2 (cost models vs measured volume per implementation).
fn main() {
    bench::experiments::table2::run(&[
        (256, 4),
        (256, 16),
        (512, 16),
        (512, 32),
        (512, 27),
        (1024, 64),
    ])
    .emit();
}
