//! Wire-level chaos soak for the socket transport (`bench chaos` mode).
//!
//! Sweeps a matrix of seeds, each deriving a whole network-fault plan
//! (`xharness::NetChaos`: torn frames only, or torn plus one mid-frame
//! connection reset, one silently hung rank, or a bounded refuse/delay
//! pattern on one mesh listener), and runs the fault-tolerant COnfLUX
//! factorization over real child processes under that plan. Every seed
//! must land on the fault-free answer: bitwise-identical factors and
//! pivots, residual under `1e-12`, only the planned victim in the crashed
//! roster, and — for seeds whose faults are all benign — a byte ledger
//! identical to the fault-free baseline.
//!
//! Usage:
//!   chaos [--seeds N] [--n N] [--out DIR]
//!
//! `XHARNESS_SEEDS` overrides `--seeds` (same syntax as the test suite).
//! On the first failing seed a replay recipe is written to
//! `<out>/chaos_failure.json` and the process exits nonzero so CI uploads
//! the artifact. Child ranks (re-executed with `XMPI_CHILD_RANK` set)
//! replay the same argument parse and seed sequence to find their world,
//! then exit inside it — only the parent prints and persists the report.

use std::path::Path;
use std::sync::Arc;

use dense::gen::random_matrix;
use dense::norms::lu_residual_perm;
use factor::{conflux_lu_ft, FtConfig};
use serde_json::json;
use xharness::{seeds, ChaosMode, NetChaos};
use xmpi::Grid3;
use xtrace::invariants::check_stats_equal;

const HELP: &str = "\
usage: chaos [--seeds N] [--n N] [--out DIR]

Wire-level chaos soak: fault-tolerant COnfLUX over the socket backend under
seeded NetChaos plans (torn frames, mid-frame resets, hung ranks, refused
dials). Every seed must recover the fault-free factors bitwise, kill only
its planned victim, and finish within the failure-detector deadlines.

  --seeds N    number of chaos seeds (default 8); the XHARNESS_SEEDS env
               var overrides this and also accepts a comma list or
               `list:N` (same syntax as the test suite)
  --n N        matrix dimension (default 64, grid fixed at 2x2x2)
  --out DIR    report/artifact directory (default results)

On the first failing seed, <out>/chaos_failure.json records the seed, the
derived fault plan, and a replay command of the form
  XHARNESS_SEEDS=list:<seed> cargo test -p factor --test chaos --release
and the process exits nonzero so CI uploads the artifact. On success a
summary lands in <out>/BENCH_chaos.json.";

struct Args {
    seeds: u64,
    n: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut args = Args {
        seeds: 8,
        n: 64,
        out: "results".to_string(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--seeds" => args.seeds = val("--seeds").parse().expect("--seeds: not a number"),
            "--n" => args.n = val("--n").parse().expect("--n: not a number"),
            "--out" => args.out = val("--out"),
            "--help" | "-h" => {
                println!("{HELP}");
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}; try --help"),
        }
    }
    args
}

fn mode_name(mode: ChaosMode) -> &'static str {
    match mode {
        ChaosMode::Torn => "torn",
        ChaosMode::Reset => "reset",
        ChaosMode::Hang => "hang",
        ChaosMode::Connect => "connect",
    }
}

fn main() {
    // Fast failure detection: 50 ms heartbeats, suspicion at 3 s — a hung
    // rank costs seconds, not the 120 s receive timeout. Child ranks replay
    // this before touching any socket code, and inherit it regardless.
    std::env::set_var("XMPI_HEARTBEAT_MS", "50");
    std::env::set_var("XMPI_SUSPECT_MS", "3000");

    let args = parse_args();
    let seed_list = seeds(args.seeds);
    let quiet = xmpi::launch::is_child();
    let (n, grid) = (args.n, Grid3::new(2, 2, 2));
    let p = grid.size();
    let v = 8.min(n / 4).max(1);
    let a = random_matrix(n, n, 1001);
    let cfg = FtConfig::new(n, v, grid);

    // Fault-free baseline (in-process): the answer every chaos run must
    // reproduce bitwise.
    let base = conflux_lu_ft(&cfg, &a).expect("fault-free baseline");
    let base_resid = lu_residual_perm(&a, &base.packed, &base.perm);
    assert!(base_resid < 1e-12, "baseline residual {base_resid:e}");

    if !quiet {
        println!(
            "chaos: {} seeds, conflux-ft n={n} v={v} grid 2x2x2 over sockets",
            seed_list.len()
        );
    }

    let mut mode_counts = [0u64; 4];
    let mut total_restarts = 0u64;
    let mut fail: Option<(u64, String, String)> = None;

    'sweep: for &seed in &seed_list {
        let chaos = Arc::new(NetChaos::from_seed(seed, p));
        let mode = chaos.mode();
        let plan = format!(
            "mode {}, reset {:?}, hang {:?}, connect {:?}",
            mode_name(mode),
            chaos.reset_plan(),
            chaos.hang_plan(),
            chaos.connect_plan()
        );
        let out = xmpi::with_backend(xmpi::launch::socket_backend_reexec(), || {
            xharness::run_chaos(&chaos, || conflux_lu_ft(&cfg, &a).expect("chaos run"))
        });

        let check = || -> Result<(), String> {
            let victim = chaos
                .reset_plan()
                .map(|r| r.src)
                .or_else(|| chaos.hang_plan().map(|h| h.victim));
            match victim {
                Some(vr) if !out.report.crashed.is_empty() && out.report.crashed != vec![vr] => {
                    return Err(format!(
                        "crashed {:?}, planned victim {vr}",
                        out.report.crashed
                    ));
                }
                None if !out.report.crashed.is_empty() => {
                    return Err(format!("benign plan crashed {:?}", out.report.crashed));
                }
                _ => {}
            }
            if out.perm != base.perm {
                return Err("pivots diverged from fault-free baseline".into());
            }
            let bitwise = out.packed.rows() == base.packed.rows()
                && out
                    .packed
                    .data()
                    .iter()
                    .zip(base.packed.data())
                    .all(|(x, y)| x.to_bits() == y.to_bits());
            if !bitwise {
                return Err("factor bits diverged from fault-free baseline".into());
            }
            let res = lu_residual_perm(&a, &out.packed, &out.perm);
            if res >= 1e-12 {
                return Err(format!("residual {res:e} after recovery"));
            }
            if out.report.crashed.is_empty() {
                let bs = base.report.attempt_stats.last().expect("base attempt");
                let os = out.report.attempt_stats.last().expect("chaos attempt");
                let drift = check_stats_equal(bs, os);
                if !drift.is_empty() {
                    return Err(format!("benign chaos changed the byte ledger: {drift:?}"));
                }
            }
            Ok(())
        };
        if let Err(msg) = check() {
            fail = Some((seed, plan, msg));
            break 'sweep;
        }
        mode_counts[match mode {
            ChaosMode::Torn => 0,
            ChaosMode::Reset => 1,
            ChaosMode::Hang => 2,
            ChaosMode::Connect => 3,
        }] += 1;
        total_restarts += out.report.restarts as u64;
        if !quiet {
            println!(
                "  seed {seed}: {} — crashed {:?}, {} restart(s)",
                mode_name(mode),
                out.report.crashed,
                out.report.restarts
            );
        }
    }

    if quiet {
        // A child rank only ever reaches here if its target world was never
        // launched (the parent failed earlier); nothing to report.
        return;
    }
    let out_dir = Path::new(&args.out);
    let _ = std::fs::create_dir_all(out_dir);
    if let Some((seed, plan, msg)) = fail {
        let failure = json!({
            "suite": "chaos-soak",
            "seed": seed,
            "fault": plan,
            "n": n,
            "grid": [2, 2, 2],
            "error": msg,
            "replay": format!("XHARNESS_SEEDS=list:{seed} cargo test -p factor --test chaos --release"),
        });
        let path = out_dir.join("chaos_failure.json");
        std::fs::write(
            &path,
            serde_json::to_string_pretty(&failure).unwrap() + "\n",
        )
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        eprintln!("chaos FAILURE at seed {seed} ({plan}): {msg}");
        eprintln!("details written to {}", path.display());
        std::process::exit(1);
    }
    let summary = json!({
        "id": "BENCH_chaos",
        "seeds": seed_list,
        "n": n,
        "grid": [2, 2, 2],
        "modes": {
            "torn": mode_counts[0],
            "reset": mode_counts[1],
            "hang": mode_counts[2],
            "connect": mode_counts[3],
        },
        "total_restarts": total_restarts,
    });
    let path = out_dir.join("BENCH_chaos.json");
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&summary).unwrap() + "\n",
    )
    .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!(
        "chaos: {} seeds clean ({} torn / {} reset / {} hang / {} connect), report in {}",
        seed_list.len(),
        mode_counts[0],
        mode_counts[1],
        mode_counts[2],
        mode_counts[3],
        path.display()
    );
}
