//! Transport microbenchmark report (`bench comm` mode).
//!
//! Measures p2p ping-pong latency/throughput and broadcast wall-clock over
//! a (P, message-size) grid — the zero-copy binomial tree against a
//! seed-style linear fan-out reference — writes `results/BENCH_comm.json`,
//! and — when `--min-speedup` is given — exits nonzero if the tree-vs-linear
//! speedup at the largest `(P, size)` cell falls below the threshold (the
//! CI comm-perf gate; the headline cell is a 512×64 panel, 32768 elements,
//! at P = 16).
//!
//! ```text
//! comm [--ps 2,4,8,16] [--sizes 1024,8192,32768] [--reps 5] [--out results]
//!      [--min-speedup 5.0]
//! ```

use std::path::Path;
use std::process::ExitCode;

struct Args {
    ps: Vec<usize>,
    sizes: Vec<usize>,
    reps: usize,
    out: String,
    min_speedup: Option<f64>,
}

fn parse_list(name: &str, raw: &str) -> Result<Vec<usize>, String> {
    let vals: Vec<usize> = raw
        .split(',')
        .map(|s| {
            s.trim()
                .parse::<usize>()
                .map_err(|e| format!("bad {name} entry {s:?}: {e}"))
        })
        .collect::<Result<_, _>>()?;
    if vals.is_empty() {
        return Err(format!("{name} needs at least one value"));
    }
    Ok(vals)
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        ps: vec![2, 4, 8, 16],
        sizes: vec![1024, 8192, 32768],
        reps: 5,
        out: "results".into(),
        min_speedup: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--ps" => args.ps = parse_list("--ps", &value("--ps")?)?,
            "--sizes" => args.sizes = parse_list("--sizes", &value("--sizes")?)?,
            "--reps" => {
                args.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("bad --reps: {e}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--min-speedup" => {
                args.min_speedup = Some(
                    value("--min-speedup")?
                        .parse()
                        .map_err(|e| format!("bad --min-speedup: {e}"))?,
                );
            }
            "--help" | "-h" => {
                return Err(
                    "usage: comm [--ps P,P,..] [--sizes N,N,..] [--reps R] [--out DIR] \
                     [--min-speedup X]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if args.ps.iter().any(|&p| p < 2) {
        return Err("--ps entries must be >= 2 (a broadcast needs a peer)".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let report = bench::experiments::comm::comm(&args.ps, &args.sizes, args.reps);
    println!("== {} — {} ==\n{}", report.id, report.title, report.text);
    if let Err(e) = report.save(Path::new(&args.out)) {
        eprintln!("could not save {}/{}.json: {e}", args.out, report.id);
        return ExitCode::FAILURE;
    }

    if let Some(min) = args.min_speedup {
        let (p, n) = (
            args.ps.iter().max().copied().unwrap_or(0),
            args.sizes.iter().max().copied().unwrap_or(0),
        );
        let kpis = bench::kpi::comm_kpis(&report.json, n, p);
        let achieved = kpis.get("bcast_speedup").copied().unwrap_or(0.0);
        if achieved < min {
            eprintln!(
                "FAIL: tree bcast speedup {achieved:.2}x at P={p}, {n} elems is below \
                 the {min:.2}x gate"
            );
            return ExitCode::FAILURE;
        }
        println!("tree bcast speedup gate: {achieved:.2}x >= {min:.2}x at P={p}, {n} elems — ok");
    }
    ExitCode::SUCCESS
}
