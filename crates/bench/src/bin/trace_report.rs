//! Trace one factorization run and report its profile.
//!
//! Runs the chosen algorithm under the event recorder, then:
//!
//! * writes `chrome.json` (open in Perfetto / `chrome://tracing`) and
//!   `profile.json` (provenance-stamped profile report) to `--out`;
//! * prints the per-phase and per-collective traffic tables — the same
//!   decomposition Table 1 of the paper reports per routine — plus idle-time
//!   attribution and the α-β-γ replay's predicted time-to-solution.
//!
//! Usage:
//!   trace_report [--algo conflux|confchox|twod-lu|lu25d] [--n N] [--p P]
//!                [--seed S] [--out DIR] [--pretty]

use std::collections::BTreeMap;

use bench::table::{human_bytes, render};
use factor::{lu25d_swap::SwapLuConfig, ConfchoxConfig, ConfluxConfig, TwodConfig};
use serde_json::json;
use xmpi::trace::{capture, TraceConfig};
use xmpi::{WorldStats, WorldTrace};
use xtrace::profile::{coll_bytes_from_trace, phase_bytes_from_trace};
use xtrace::{
    chrome_trace, critical_path, path_length, profile_report, replay, Machine, Provenance, Timeline,
};

struct Args {
    algo: String,
    n: usize,
    p: usize,
    seed: u64,
    out: Option<String>,
    pretty: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        algo: "conflux".to_string(),
        n: 256,
        p: 8,
        seed: 0,
        out: None,
        pretty: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--algo" => args.algo = val("--algo"),
            "--n" => args.n = val("--n").parse().expect("--n: integer"),
            "--p" => args.p = val("--p").parse().expect("--p: integer"),
            "--seed" => args.seed = val("--seed").parse().expect("--seed: integer"),
            "--out" => args.out = Some(val("--out")),
            "--pretty" => args.pretty = true,
            "--help" | "-h" => {
                eprintln!(
                    "usage: trace_report [--algo conflux|confchox|twod-lu|lu25d] \
                     [--n N] [--p P] [--seed S] [--out DIR] [--pretty]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn run_traced(args: &Args) -> (WorldTrace, WorldStats) {
    let (stats, mut traces) = match args.algo.as_str() {
        "conflux" => {
            let a = dense::gen::random_matrix(args.n, args.n, args.seed);
            let cfg = ConfluxConfig::auto(args.n, args.p).volume_only();
            capture(TraceConfig::default(), || {
                conflux_stats(factor::conflux_lu(&cfg, &a))
            })
        }
        "confchox" => {
            let a = dense::gen::random_spd(args.n, args.seed);
            let cfg = ConfchoxConfig::auto(args.n, args.p).volume_only();
            capture(TraceConfig::default(), || {
                factor::confchox_cholesky(&cfg, &a)
                    .expect("confchox failed")
                    .stats
            })
        }
        "twod-lu" => {
            let a = dense::gen::random_matrix(args.n, args.n, args.seed);
            let cfg = TwodConfig::auto(args.n, args.p).volume_only();
            capture(TraceConfig::default(), || {
                factor::twod_lu(&cfg, &a).expect("2D LU failed").stats
            })
        }
        "lu25d" => {
            let a = dense::gen::random_matrix(args.n, args.n, args.seed);
            // Same grid/block selection COnfLUX would use, so the two are
            // directly comparable.
            let like = ConfluxConfig::auto(args.n, args.p);
            let cfg = SwapLuConfig::new(like.n, like.v, like.grid).volume_only();
            capture(TraceConfig::default(), || {
                factor::lu25d_swap::lu25d_swap(&cfg, &a)
                    .expect("2.5D LU failed")
                    .stats
            })
        }
        other => panic!("unknown --algo {other} (conflux|confchox|twod-lu|lu25d)"),
    };
    assert_eq!(traces.len(), 1, "expected exactly one traced world run");
    (traces.pop().unwrap(), stats)
}

fn conflux_stats(out: Result<factor::LuOutput, dense::Error>) -> WorldStats {
    out.expect("conflux failed").stats
}

fn main() {
    let args = parse_args();
    let (trace, stats) = run_traced(&args);

    let prov = Provenance::here(
        json!({ "algo": args.algo, "n": args.n, "p": args.p }),
        Some(args.seed),
    );
    let report = profile_report(&trace, &stats, &prov);
    let chrome = chrome_trace(&trace);

    if let Some(dir) = &args.out {
        std::fs::create_dir_all(dir).expect("create --out dir");
        let dump = |v: &serde_json::Value| {
            if args.pretty {
                serde_json::to_string_pretty(v).unwrap()
            } else {
                serde_json::to_string(v).unwrap()
            }
        };
        std::fs::write(format!("{dir}/profile.json"), dump(&report)).expect("write profile.json");
        std::fs::write(format!("{dir}/chrome.json"), dump(&chrome)).expect("write chrome.json");
        println!("wrote {dir}/profile.json and {dir}/chrome.json\n");
    }

    println!(
        "{} n={} p={} seed={}  ({} events, {} bytes moved)\n",
        args.algo,
        args.n,
        args.p,
        args.seed,
        trace.num_events(),
        stats.total_bytes_sent(),
    );

    // Per-phase traffic: the per-routine decomposition of Table 1.
    let total = stats.total_bytes_sent().max(1);
    let phases: BTreeMap<String, (u64, u64)> = phase_bytes_from_trace(&trace);
    let rows: Vec<Vec<String>> = phases
        .iter()
        .map(|(label, &(sent, recv))| {
            vec![
                label.clone(),
                human_bytes(sent as f64),
                human_bytes(recv as f64),
                format!("{:.1}%", 100.0 * sent as f64 / total as f64),
            ]
        })
        .collect();
    println!("per-phase traffic");
    println!("{}", render(&["phase", "sent", "recv", "% of sent"], &rows));

    // Per-collective-kind traffic: must partition total_bytes_sent.
    let colls = coll_bytes_from_trace(&trace);
    let rows: Vec<Vec<String>> = colls
        .iter()
        .map(|(kind, &(bs, _br, ms, _mr))| {
            vec![
                kind.name().to_string(),
                human_bytes(bs as f64),
                ms.to_string(),
                format!("{:.1}%", 100.0 * bs as f64 / total as f64),
            ]
        })
        .collect();
    println!("per-collective traffic");
    println!(
        "{}",
        render(&["collective", "sent", "msgs", "% of sent"], &rows)
    );

    // Idle time per rank (measured, host clock).
    let tl = Timeline::build(&trace);
    let rows: Vec<Vec<String>> = tl
        .ranks
        .iter()
        .map(|r| {
            vec![
                r.rank.to_string(),
                format!("{:.3}", r.end as f64 / 1e6),
                format!("{:.3}", r.wait_time() as f64 / 1e6),
                r.total_flops().to_string(),
            ]
        })
        .collect();
    println!("per-rank timeline (host clock)");
    println!("{}", render(&["rank", "end ms", "wait ms", "flops"], &rows));

    let path = critical_path(&trace);
    println!(
        "critical path: {} segment(s), {:.3} ms on-path of {:.3} ms makespan\n",
        path.len(),
        path_length(&path) as f64 / 1e6,
        tl.makespan as f64 / 1e6,
    );

    // Predicted time-to-solution under the paper's machine model.
    let m = Machine::piz_daint();
    let rp = replay(&trace, &m);
    println!(
        "α-β-γ replay (α={:.1e}s, β={:.1e}B/s, γε={:.2e}flop/s): \
         predicted makespan {:.6}s{}",
        m.alpha,
        m.beta,
        m.gamma * m.epsilon,
        rp.makespan,
        if rp.complete {
            ""
        } else {
            "  [truncated trace: lower bound]"
        },
    );
    let comp: f64 = rp.comp.iter().sum::<f64>() / rp.comp.len().max(1) as f64;
    let wait: f64 = rp.wait.iter().sum::<f64>() / rp.wait.len().max(1) as f64;
    println!("  mean per-rank: compute {comp:.6}s, blocked {wait:.6}s");
}
