//! Trace one factorization run and report its profile.
//!
//! Runs the chosen algorithm under the event recorder, then:
//!
//! * writes `chrome.json` (open in Perfetto / `chrome://tracing`) and
//!   `profile.json` (provenance-stamped profile report) to `--out`;
//! * prints the per-phase and per-collective traffic tables — the same
//!   decomposition Table 1 of the paper reports per routine — plus idle-time
//!   attribution and the α-β-γ replay's predicted time-to-solution.
//!
//! With `--overlap`, runs the chosen algorithm twice — lookahead schedule
//! vs blocking schedule — on the same input, checks that both move exactly
//! the same bytes and messages, and reports how much communication each
//! phase *hides* behind compute under the α-β-γ replay, plus the modeled
//! makespan reduction the overlap buys.
//!
//! With `--kpi`, skips the profile tables and instead emits the exact KPI
//! record shape the ablation registry stores (see `bench::kpi`), so a
//! hand-run trace can be appended to the trajectory: pass `--registry DIR`
//! to record it under the plan name `manual`.
//!
//! Usage:
//!   trace_report [--algo conflux|confchox|twod-lu|lu25d] [--n N] [--p P]
//!                [--seed S] [--out DIR] [--pretty] [--overlap]
//!                [--kpi [--registry DIR]]

use std::collections::BTreeMap;

use bench::table::{human_bytes, render};
use factor::{lu25d_swap::SwapLuConfig, ConfchoxConfig, ConfluxConfig, TwodConfig};
use serde_json::json;
use xmpi::trace::{capture, TraceConfig};
use xmpi::{WorldStats, WorldTrace};
use xtrace::profile::{coll_bytes_from_trace, phase_bytes_from_trace};
use xtrace::{
    chrome_trace, critical_path, path_length, profile_report, replay, Machine, Provenance, Timeline,
};

struct Args {
    algo: String,
    n: usize,
    p: usize,
    seed: u64,
    out: Option<String>,
    pretty: bool,
    overlap: bool,
    kpi: bool,
    registry: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        algo: "conflux".to_string(),
        n: 256,
        p: 8,
        seed: 0,
        out: None,
        pretty: false,
        overlap: false,
        kpi: false,
        registry: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .unwrap_or_else(|| panic!("{name} requires a value"))
        };
        match flag.as_str() {
            "--algo" => args.algo = val("--algo"),
            "--n" => args.n = val("--n").parse().expect("--n: integer"),
            "--p" => args.p = val("--p").parse().expect("--p: integer"),
            "--seed" => args.seed = val("--seed").parse().expect("--seed: integer"),
            "--out" => args.out = Some(val("--out")),
            "--pretty" => args.pretty = true,
            "--overlap" => args.overlap = true,
            "--kpi" => args.kpi = true,
            "--registry" => args.registry = Some(val("--registry")),
            "--help" | "-h" => {
                eprintln!(
                    "usage: trace_report [--algo conflux|confchox|twod-lu|lu25d] \
                     [--n N] [--p P] [--seed S] [--out DIR] [--pretty] [--overlap] \
                     [--kpi [--registry DIR]]"
                );
                std::process::exit(0);
            }
            other => panic!("unknown flag {other}"),
        }
    }
    args
}

fn run_traced(args: &Args, blocking: bool) -> (WorldTrace, WorldStats) {
    let (stats, mut traces) = match args.algo.as_str() {
        "conflux" => {
            let a = dense::gen::random_matrix(args.n, args.n, args.seed);
            let mut cfg = ConfluxConfig::auto(args.n, args.p).volume_only();
            if blocking {
                cfg = cfg.blocking();
            }
            capture(TraceConfig::default(), || {
                conflux_stats(factor::conflux_lu(&cfg, &a))
            })
        }
        "confchox" => {
            let a = dense::gen::random_spd(args.n, args.seed);
            let mut cfg = ConfchoxConfig::auto(args.n, args.p).volume_only();
            if blocking {
                cfg = cfg.blocking();
            }
            capture(TraceConfig::default(), || {
                factor::confchox_cholesky(&cfg, &a)
                    .expect("confchox failed")
                    .stats
            })
        }
        "twod-lu" => {
            let a = dense::gen::random_matrix(args.n, args.n, args.seed);
            let cfg = TwodConfig::auto(args.n, args.p).volume_only();
            capture(TraceConfig::default(), || {
                factor::twod_lu(&cfg, &a).expect("2D LU failed").stats
            })
        }
        "lu25d" => {
            let a = dense::gen::random_matrix(args.n, args.n, args.seed);
            // Same grid/block selection COnfLUX would use, so the two are
            // directly comparable.
            let like = ConfluxConfig::auto(args.n, args.p);
            let cfg = SwapLuConfig::new(like.n, like.v, like.grid).volume_only();
            capture(TraceConfig::default(), || {
                factor::lu25d_swap::lu25d_swap(&cfg, &a)
                    .expect("2.5D LU failed")
                    .stats
            })
        }
        other => panic!("unknown --algo {other} (conflux|confchox|twod-lu|lu25d)"),
    };
    assert_eq!(traces.len(), 1, "expected exactly one traced world run");
    (traces.pop().unwrap(), stats)
}

fn conflux_stats(out: Result<factor::LuOutput, dense::Error>) -> WorldStats {
    out.expect("conflux failed").stats
}

/// Lookahead-vs-blocking comparison: same input, same measured traffic,
/// different schedule — report what the overlap buys under the α-β-γ model.
fn overlap_report(args: &Args) {
    assert!(
        matches!(args.algo.as_str(), "conflux" | "confchox"),
        "--overlap needs a lookahead-capable algorithm (conflux|confchox)"
    );

    let (ahead_trace, ahead_stats) = run_traced(args, false);
    let (block_trace, block_stats) = run_traced(args, true);

    // Lookahead is a pure schedule change; if volumes diverge, the
    // comparison below would be meaningless.
    assert_eq!(
        ahead_stats.total_bytes_sent(),
        block_stats.total_bytes_sent(),
        "schedules moved different byte totals"
    );
    assert_eq!(
        ahead_stats.total_msgs(),
        block_stats.total_msgs(),
        "schedules moved different message counts"
    );

    let m = Machine::piz_daint();
    let ahead = replay(&ahead_trace, &m);
    let block = replay(&block_trace, &m);

    println!(
        "{} n={} p={} seed={}  overlap report ({} bytes, {} msgs in both schedules)\n",
        args.algo,
        args.n,
        args.p,
        args.seed,
        ahead_stats.total_bytes_sent(),
        ahead_stats.total_msgs(),
    );

    // Per-phase exposed vs hidden communication time, both schedules.
    let phases: std::collections::BTreeSet<&String> = ahead
        .phase_overlap
        .keys()
        .chain(block.phase_overlap.keys())
        .collect();
    let rows: Vec<Vec<String>> = phases
        .iter()
        .map(|label| {
            let a = ahead.phase_overlap.get(*label).copied().unwrap_or_default();
            let b = block.phase_overlap.get(*label).copied().unwrap_or_default();
            vec![
                (*label).clone(),
                format!("{:.6}", b.exposed),
                format!("{:.6}", b.hidden),
                format!("{:.6}", a.exposed),
                format!("{:.6}", a.hidden),
                format!("{:.1}%", 100.0 * a.hidden_fraction()),
            ]
        })
        .collect();
    println!("per-phase communication time (α-β-γ replay, seconds)");
    println!(
        "{}",
        render(
            &[
                "phase",
                "blk exposed",
                "blk hidden",
                "la exposed",
                "la hidden",
                "la hidden %",
            ],
            &rows,
        )
    );

    let reduction = 100.0 * (1.0 - ahead.makespan / block.makespan);
    println!(
        "blocking:  makespan {:.6}s  (exposed {:.6}s, hidden {:.6}s)",
        block.makespan,
        block.total_wait(),
        block.total_hidden(),
    );
    println!(
        "lookahead: makespan {:.6}s  (exposed {:.6}s, hidden {:.6}s)",
        ahead.makespan,
        ahead.total_wait(),
        ahead.total_hidden(),
    );
    println!(
        "overlap buys {reduction:.1}% of modeled makespan at identical volume{}",
        if ahead.complete && block.complete {
            ""
        } else {
            "  [truncated trace: bounds only]"
        },
    );

    if let Some(dir) = &args.out {
        std::fs::create_dir_all(dir).expect("create --out dir");
        let per_phase = serde_json::Value::Object(
            phases
                .iter()
                .map(|label| {
                    let a = ahead.phase_overlap.get(*label).copied().unwrap_or_default();
                    let b = block.phase_overlap.get(*label).copied().unwrap_or_default();
                    (
                        (*label).clone(),
                        json!({
                            "blocking": { "exposed_s": b.exposed, "hidden_s": b.hidden },
                            "lookahead": { "exposed_s": a.exposed, "hidden_s": a.hidden },
                        }),
                    )
                })
                .collect(),
        );
        let prov = Provenance::here(
            json!({ "algo": args.algo, "n": args.n, "p": args.p, "mode": "overlap" }),
            Some(args.seed),
        );
        let doc = json!({
            "provenance": { "commit": prov.commit, "params": prov.params, "seed": args.seed },
            "total_bytes_sent": ahead_stats.total_bytes_sent(),
            "total_msgs": ahead_stats.total_msgs(),
            "blocking": {
                "makespan_s": block.makespan,
                "exposed_s": block.total_wait(),
                "hidden_s": block.total_hidden(),
            },
            "lookahead": {
                "makespan_s": ahead.makespan,
                "exposed_s": ahead.total_wait(),
                "hidden_s": ahead.total_hidden(),
            },
            "makespan_reduction_pct": reduction,
            "per_phase": per_phase,
        });
        let text = if args.pretty {
            serde_json::to_string_pretty(&doc).unwrap()
        } else {
            serde_json::to_string(&doc).unwrap()
        };
        std::fs::write(format!("{dir}/overlap.json"), text).expect("write overlap.json");
        println!("\nwrote {dir}/overlap.json");
    }
}

/// `--kpi` mode: extract the ablation-registry KPI record from one traced
/// run and print (or append) it — the same shape `bench ablate run` stores,
/// so hand-run traces land on the same trajectory.
fn kpi_record(args: &Args, trace: &WorldTrace, stats: &WorldStats) {
    let algo = bench::kpi::algo_from_name(&args.algo)
        .unwrap_or_else(|| panic!("--kpi does not support algo {}", args.algo));
    let c_used = match args.algo.as_str() {
        "twod-lu" | "twod-chol" => 1,
        "confchox" => ConfchoxConfig::auto(args.n, args.p).grid.pz,
        _ => ConfluxConfig::auto(args.n, args.p).grid.pz,
    };
    let kpis = bench::kpi::factor_kpis(
        algo,
        args.n,
        args.p,
        c_used,
        stats,
        Some(trace),
        &bench::machine::Machine::piz_daint(),
    );
    let cell = bench::plan::Cell {
        algo: args.algo.clone(),
        n: args.n,
        p: args.p,
        c: 0,
        block: 0,
        lookahead: true,
        checksum: false,
        seed: args.seed,
    };
    let stamp = bench::provenance::Stamp::here(None);
    let (rows, record) = bench::registry::rows_for(&stamp, "manual", "manual", &cell.id(), &kpis);
    let text = if args.pretty {
        serde_json::to_string_pretty(&record).unwrap()
    } else {
        serde_json::to_string(&record).unwrap()
    };
    println!("{text}");
    if let Some(dir) = &args.registry {
        let reg = bench::registry::Registry::new(dir);
        let outcome = reg.append(&rows, &[record]).expect("registry append");
        eprintln!(
            "registry {}: appended {} row(s), {} duplicate(s) skipped",
            reg.csv_path().display(),
            outcome.appended,
            outcome.deduped
        );
    }
}

fn main() {
    let args = parse_args();
    if args.overlap {
        overlap_report(&args);
        return;
    }
    let (trace, stats) = run_traced(&args, false);
    if args.kpi {
        kpi_record(&args, &trace, &stats);
        return;
    }

    let prov = Provenance::here(
        json!({ "algo": args.algo, "n": args.n, "p": args.p }),
        Some(args.seed),
    );
    let report = profile_report(&trace, &stats, &prov);
    let chrome = chrome_trace(&trace);

    if let Some(dir) = &args.out {
        std::fs::create_dir_all(dir).expect("create --out dir");
        let dump = |v: &serde_json::Value| {
            if args.pretty {
                serde_json::to_string_pretty(v).unwrap()
            } else {
                serde_json::to_string(v).unwrap()
            }
        };
        std::fs::write(format!("{dir}/profile.json"), dump(&report)).expect("write profile.json");
        std::fs::write(format!("{dir}/chrome.json"), dump(&chrome)).expect("write chrome.json");
        println!("wrote {dir}/profile.json and {dir}/chrome.json\n");
    }

    println!(
        "{} n={} p={} seed={}  ({} events, {} bytes moved)\n",
        args.algo,
        args.n,
        args.p,
        args.seed,
        trace.num_events(),
        stats.total_bytes_sent(),
    );

    // Per-phase traffic: the per-routine decomposition of Table 1.
    let total = stats.total_bytes_sent().max(1);
    let phases: BTreeMap<String, (u64, u64)> = phase_bytes_from_trace(&trace);
    let rows: Vec<Vec<String>> = phases
        .iter()
        .map(|(label, &(sent, recv))| {
            vec![
                label.clone(),
                human_bytes(sent as f64),
                human_bytes(recv as f64),
                format!("{:.1}%", 100.0 * sent as f64 / total as f64),
            ]
        })
        .collect();
    println!("per-phase traffic");
    println!("{}", render(&["phase", "sent", "recv", "% of sent"], &rows));

    // Per-collective-kind traffic: must partition total_bytes_sent.
    let colls = coll_bytes_from_trace(&trace);
    let rows: Vec<Vec<String>> = colls
        .iter()
        .map(|(kind, &(bs, _br, ms, _mr))| {
            vec![
                kind.name().to_string(),
                human_bytes(bs as f64),
                ms.to_string(),
                format!("{:.1}%", 100.0 * bs as f64 / total as f64),
            ]
        })
        .collect();
    println!("per-collective traffic");
    println!(
        "{}",
        render(&["collective", "sent", "msgs", "% of sent"], &rows)
    );

    // Idle time per rank (measured, host clock).
    let tl = Timeline::build(&trace);
    let rows: Vec<Vec<String>> = tl
        .ranks
        .iter()
        .map(|r| {
            vec![
                r.rank.to_string(),
                format!("{:.3}", r.end as f64 / 1e6),
                format!("{:.3}", r.wait_time() as f64 / 1e6),
                r.total_flops().to_string(),
            ]
        })
        .collect();
    println!("per-rank timeline (host clock)");
    println!("{}", render(&["rank", "end ms", "wait ms", "flops"], &rows));

    let path = critical_path(&trace);
    println!(
        "critical path: {} segment(s), {:.3} ms on-path of {:.3} ms makespan\n",
        path.len(),
        path_length(&path) as f64 / 1e6,
        tl.makespan as f64 / 1e6,
    );

    // Predicted time-to-solution under the paper's machine model.
    let m = Machine::piz_daint();
    let rp = replay(&trace, &m);
    println!(
        "α-β-γ replay (α={:.1e}s, β={:.1e}B/s, γε={:.2e}flop/s): \
         predicted makespan {:.6}s{}",
        m.alpha,
        m.beta,
        m.gamma * m.epsilon,
        rp.makespan,
        if rp.complete {
            ""
        } else {
            "  [truncated trace: lower bound]"
        },
    );
    let comp: f64 = rp.comp.iter().sum::<f64>() / rp.comp.len().max(1) as f64;
    let wait: f64 = rp.wait.iter().sum::<f64>() / rp.wait.len().max(1) as f64;
    println!("  mean per-rank: compute {comp:.6}s, blocked {wait:.6}s");
}
