//! Regenerate the §6 lower-bound tables with the pebbling sandwich.
fn main() {
    bench::experiments::bounds_report::run().emit();
}
