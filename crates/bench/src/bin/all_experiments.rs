//! Run the full experiment suite (every table and figure of the paper's
//! evaluation) and persist all raw data under `results/`.
//!
//! Each experiment runs under a panic guard: one figure crashing no longer
//! silently truncates the rest of the suite. The run ends with a per-figure
//! status table and exits nonzero if anything failed.

use bench::experiments as ex;
use bench::table::render;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::process::ExitCode;

type Experiment = (&'static str, Box<dyn FnOnce() -> ex::Report>);

fn main() -> ExitCode {
    let t0 = std::time::Instant::now();
    let suite: Vec<Experiment> = vec![
        ("bounds_report", Box::new(ex::bounds_report::run)),
        ("table1", Box::new(|| ex::table1::run(512, 8))),
        (
            "table2",
            Box::new(|| {
                ex::table2::run(&[
                    (256, 4),
                    (256, 16),
                    (512, 16),
                    (512, 32),
                    (512, 27),
                    (1024, 64),
                ])
            }),
        ),
        (
            "fig1",
            Box::new(|| ex::fig1::fig1(&[256, 512, 1024, 2048], &[4, 16, 64])),
        ),
        (
            "fig8a",
            Box::new(|| ex::fig8::fig8a(1024, &[4, 8, 16, 32, 64])),
        ),
        (
            "fig8b",
            Box::new(|| ex::fig8::fig8b(256, &[4, 8, 16, 32, 64])),
        ),
        (
            "fig8c",
            Box::new(|| ex::fig8::fig8c(&[256, 512, 1024], &[4, 16, 64])),
        ),
        ("fig9", Box::new(|| ex::fig9::fig9(&[4, 8, 16, 32, 64]))),
        ("fig10", Box::new(|| ex::fig9::fig10(&[4, 8, 16, 32, 64]))),
        (
            "fig11",
            Box::new(|| ex::fig1::fig11(&[256, 512, 1024, 2048], &[4, 16, 64])),
        ),
        (
            "ablation_block",
            Box::new(|| {
                ex::ablations::block_size(512, xmpi::Grid3::new(2, 2, 2), &[8, 16, 32, 64, 128])
            }),
        ),
        (
            "ablation_replication",
            Box::new(|| {
                ex::ablations::replication(
                    512,
                    16,
                    &[
                        xmpi::Grid3::new(4, 4, 1),
                        xmpi::Grid3::new(2, 4, 2),
                        xmpi::Grid3::new(2, 2, 4),
                    ],
                )
            }),
        ),
        (
            "ablation_pivoting",
            Box::new(|| {
                ex::ablations::pivoting(
                    256,
                    &[
                        xmpi::Grid3::new(2, 2, 1),
                        xmpi::Grid3::new(2, 2, 2),
                        xmpi::Grid3::new(2, 2, 4),
                    ],
                )
            }),
        ),
        ("generality", Box::new(ex::generality::run)),
    ];

    let mut outcomes: Vec<(&str, Result<(), String>)> = Vec::new();
    for (name, exp) in suite {
        let started = std::time::Instant::now();
        let result = catch_unwind(AssertUnwindSafe(exp));
        match result {
            Ok(report) => {
                report.emit();
                outcomes.push((name, Ok(())));
            }
            Err(payload) => {
                let msg = payload
                    .downcast_ref::<&str>()
                    .map(|s| s.to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "panic (non-string payload)".to_string());
                eprintln!(
                    "\n[{name}] FAILED after {:.1}s: {msg}\n",
                    started.elapsed().as_secs_f64()
                );
                outcomes.push((name, Err(msg)));
            }
        }
    }

    let failed = outcomes.iter().filter(|(_, r)| r.is_err()).count();
    let rows: Vec<Vec<String>> = outcomes
        .iter()
        .map(|(name, r)| {
            vec![
                name.to_string(),
                match r {
                    Ok(()) => "ok".to_string(),
                    Err(msg) => format!("FAILED: {msg}"),
                },
            ]
        })
        .collect();
    println!("\nsuite summary");
    println!("{}", render(&["experiment", "status"], &rows));
    println!(
        "{} of {} experiment(s) succeeded in {:.1}s; raw data in results/",
        outcomes.len() - failed,
        outcomes.len(),
        t0.elapsed().as_secs_f64()
    );
    if failed > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
