//! Run the full experiment suite (every table and figure of the paper's
//! evaluation) and persist all raw data under `results/`.
use bench::experiments as ex;

fn main() {
    let t0 = std::time::Instant::now();
    ex::bounds_report::run().emit();
    ex::table1::run(512, 8).emit();
    ex::table2::run(&[
        (256, 4),
        (256, 16),
        (512, 16),
        (512, 32),
        (512, 27),
        (1024, 64),
    ])
    .emit();
    ex::fig1::fig1(&[256, 512, 1024, 2048], &[4, 16, 64]).emit();
    ex::fig8::fig8a(1024, &[4, 8, 16, 32, 64]).emit();
    ex::fig8::fig8b(256, &[4, 8, 16, 32, 64]).emit();
    ex::fig8::fig8c(&[256, 512, 1024], &[4, 16, 64]).emit();
    ex::fig9::fig9(&[4, 8, 16, 32, 64]).emit();
    ex::fig9::fig10(&[4, 8, 16, 32, 64]).emit();
    ex::fig1::fig11(&[256, 512, 1024, 2048], &[4, 16, 64]).emit();
    ex::ablations::block_size(512, xmpi::Grid3::new(2, 2, 2), &[8, 16, 32, 64, 128]).emit();
    ex::ablations::replication(
        512,
        16,
        &[
            xmpi::Grid3::new(4, 4, 1),
            xmpi::Grid3::new(2, 4, 2),
            xmpi::Grid3::new(2, 2, 4),
        ],
    )
    .emit();
    ex::ablations::pivoting(
        256,
        &[
            xmpi::Grid3::new(2, 2, 1),
            xmpi::Grid3::new(2, 2, 2),
            xmpi::Grid3::new(2, 2, 4),
        ],
    )
    .emit();
    ex::generality::run().emit();
    println!(
        "\nall experiments done in {:.1}s; raw data in results/",
        t0.elapsed().as_secs_f64()
    );
}
