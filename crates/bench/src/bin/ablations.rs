//! `bench ablate` — the declarative ablation CLI.
//!
//! Subcommands:
//!
//! * `run <plan> [--registry DIR] [--no-append]` — execute every cell of a
//!   plan file (`plans/*.toml` or `.json`), print the KPI table, and append
//!   provenance-stamped rows to the registry.
//! * `check <plan> [--registry DIR] [--append]` — run the plan and gate it
//!   against the plan's tolerances and the recorded cross-commit trend.
//!   Exits nonzero with a per-KPI regression report on any breach; with
//!   `--append` a *clean* run is recorded (the CI bless flow).
//! * `query [--plan NAME] [--kpi K] [--commit PREFIX] [--cell SUBSTR]` —
//!   print matching registry rows.
//! * `trend <plan> --kpi K [--cell SUBSTR]` — print the per-cell trajectory
//!   of one KPI, oldest first, with the current baseline.
//! * `legacy` — the original hand-written design-choice sweeps (block size,
//!   replication, pivoting) that predate the plan engine.
//!
//! The regression gate this provides replaces the old ad-hoc
//! "packed ≥ 2× naive" assertion binary: the same floor now lives in
//! `plans/kernels.toml` as an ordinary tolerance.

use bench::ablate::run_ablation;
use bench::plan::AblationPlan;
use bench::provenance::Stamp;
use bench::registry::{rows_for, Query, RegRow, Registry};
use bench::table::render;
use bench::trend::{baseline, check_outcomes, series};
use std::collections::BTreeSet;
use std::path::Path;
use std::process::ExitCode;

const USAGE: &str = "usage: ablations <subcommand>
  run   <plan.toml> [--registry DIR] [--no-append]   execute and record
  check <plan.toml> [--registry DIR] [--append]      execute and gate vs trend
  query [--registry DIR] [--plan NAME] [--kpi K] [--commit PREFIX] [--cell SUBSTR]
  trend <plan.toml> --kpi K [--registry DIR] [--cell SUBSTR]
  legacy                                             hand-written design-choice sweeps";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let rest = args.get(1..).unwrap_or(&[]);
    match args.first().map(String::as_str) {
        Some("run") => cmd_run(rest),
        Some("check") => cmd_check(rest),
        Some("query") => cmd_query(rest),
        Some("trend") => cmd_trend(rest),
        Some("legacy") => {
            legacy();
            ExitCode::SUCCESS
        }
        Some("--help" | "-h") => {
            println!("{USAGE}");
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

/// Minimal flag parser: positional plan path + `--flag [value]` pairs.
struct Flags {
    positional: Vec<String>,
    registry: String,
    plan: Option<String>,
    kpi: Option<String>,
    commit: Option<String>,
    cell: Option<String>,
    no_append: bool,
    append: bool,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        positional: Vec::new(),
        registry: "registry".to_string(),
        plan: None,
        kpi: None,
        commit: None,
        cell: None,
        no_append: false,
        append: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match a.as_str() {
            "--registry" => f.registry = val("--registry")?,
            "--plan" => f.plan = Some(val("--plan")?),
            "--kpi" => f.kpi = Some(val("--kpi")?),
            "--commit" => f.commit = Some(val("--commit")?),
            "--cell" => f.cell = Some(val("--cell")?),
            "--no-append" => f.no_append = true,
            "--append" => f.append = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            other => f.positional.push(other.to_string()),
        }
    }
    Ok(f)
}

fn fail(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    ExitCode::FAILURE
}

fn load_plan(flags: &Flags) -> Result<AblationPlan, String> {
    let path = flags
        .positional
        .first()
        .ok_or("expected a plan file argument")?;
    AblationPlan::load(Path::new(path))
}

/// Execute a plan and print the cell × KPI table plus any skipped cells.
fn execute(plan: &AblationPlan) -> bench::ablate::AblationRun {
    println!(
        "plan {} ({}): {} — {} cell(s)",
        plan.name,
        plan.hash(),
        plan.description,
        plan.cells().len()
    );
    let run = run_ablation(plan);

    let kpi_names: BTreeSet<String> = run
        .outcomes
        .iter()
        .flat_map(|o| o.kpis.keys().cloned())
        .collect();
    let headers: Vec<&str> = std::iter::once("cell")
        .chain(kpi_names.iter().map(String::as_str))
        .collect();
    let rows: Vec<Vec<String>> = run
        .outcomes
        .iter()
        .map(|o| {
            std::iter::once(o.cell.id())
                .chain(kpi_names.iter().map(|k| match o.kpis.get(k) {
                    Some(v) => format!("{v:.4}"),
                    None => "-".to_string(),
                }))
                .collect()
        })
        .collect();
    println!("{}", render(&headers, &rows));

    if !run.skipped.is_empty() {
        let rows: Vec<Vec<String>> = run
            .skipped
            .iter()
            .map(|(cell, why)| vec![cell.clone(), why.clone()])
            .collect();
        println!("skipped cells:");
        println!("{}", render(&["cell", "reason"], &rows));
    }
    run
}

fn append_run(
    reg: &Registry,
    plan: &AblationPlan,
    run: &bench::ablate::AblationRun,
) -> Result<(), String> {
    // Transport-workload cells spawn socket-backend child ranks that
    // re-execute this binary and replay the plan to find their world. A
    // child normally exits inside that world, but if its cell was skipped
    // in replay it would fall through to here — and P processes appending
    // the same rows would corrupt the registry. Only the parent records.
    if xmpi::launch::is_child() {
        return Ok(());
    }
    let stamp = Stamp::here(Some(run.plan_hash.clone()));
    let mut rows = Vec::new();
    let mut records = Vec::new();
    for o in &run.outcomes {
        let (r, rec) = rows_for(&stamp, &plan.name, &run.plan_hash, &o.cell.id(), &o.kpis);
        rows.extend(r);
        records.push(rec);
    }
    let outcome = reg.append(&rows, &records)?;
    println!(
        "registry {}: appended {} row(s), {} duplicate(s) skipped",
        reg.csv_path().display(),
        outcome.appended,
        outcome.deduped
    );
    Ok(())
}

fn cmd_run(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let plan = match load_plan(&flags) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let run = execute(&plan);
    if run.outcomes.is_empty() {
        return fail("no cell executed successfully");
    }
    if !flags.no_append {
        if let Err(e) = append_run(&Registry::new(&flags.registry), &plan, &run) {
            return fail(&e);
        }
    }
    ExitCode::SUCCESS
}

fn cmd_check(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let plan = match load_plan(&flags) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    if plan.tolerances.is_empty() {
        return fail("plan declares no [tolerances.*] — nothing to check");
    }
    let reg = Registry::new(&flags.registry);
    // Load history *before* appending, so the trend baseline never includes
    // the run under test.
    let history = match reg.load() {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    let run = execute(&plan);
    if run.outcomes.is_empty() {
        return fail("no cell executed successfully");
    }
    let commit = bench::provenance::git_head();
    let machine = bench::provenance::machine_fingerprint();
    let report = check_outcomes(&plan, &run.id_outcomes(), &history, &commit, &machine);
    println!("{}", report.render());
    if !report.is_clean() {
        return ExitCode::FAILURE;
    }
    if flags.append {
        if let Err(e) = append_run(&reg, &plan, &run) {
            return fail(&e);
        }
    }
    ExitCode::SUCCESS
}

fn cmd_query(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let q = Query {
        plan: flags.plan.clone(),
        kpi: flags.kpi.clone(),
        commit: flags.commit.clone(),
        cell: flags.cell.clone(),
    };
    let rows = match Registry::new(&flags.registry).load() {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    let hits: Vec<&RegRow> = rows.iter().filter(|r| q.matches(r)).collect();
    let table: Vec<Vec<String>> = hits
        .iter()
        .map(|r| {
            vec![
                r.timestamp.clone(),
                r.commit[..r.commit.len().min(12)].to_string(),
                r.plan.clone(),
                r.cell.clone(),
                r.kpi.clone(),
                format!("{:.4}", r.value),
            ]
        })
        .collect();
    println!(
        "{}",
        render(
            &["timestamp", "commit", "plan", "cell", "kpi", "value"],
            &table
        )
    );
    println!("{} of {} row(s) matched", hits.len(), rows.len());
    ExitCode::SUCCESS
}

fn cmd_trend(args: &[String]) -> ExitCode {
    let flags = match parse_flags(args) {
        Ok(f) => f,
        Err(e) => return fail(&e),
    };
    let plan = match load_plan(&flags) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let Some(kpi) = flags.kpi.clone() else {
        return fail("trend requires --kpi");
    };
    let rows = match Registry::new(&flags.registry).load() {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    let plan_hash = plan.hash();
    let commit = bench::provenance::git_head();
    let cells: BTreeSet<String> = rows
        .iter()
        .filter(|r| r.plan_hash == plan_hash && r.kpi == kpi)
        .filter(|r| {
            flags
                .cell
                .as_ref()
                .is_none_or(|c| r.cell.contains(c.as_str()))
        })
        .map(|r| r.cell.clone())
        .collect();
    if cells.is_empty() {
        println!(
            "no trajectory for plan {} ({plan_hash}) kpi {kpi} in {}",
            plan.name,
            Registry::new(&flags.registry).csv_path().display()
        );
        return ExitCode::SUCCESS;
    }
    for cell in cells {
        let pts = series(&rows, &plan_hash, &cell, &kpi);
        println!("{cell}  ({kpi})");
        let table: Vec<Vec<String>> = pts
            .iter()
            .map(|p| {
                vec![
                    p.unix.to_string(),
                    p.commit[..p.commit.len().min(12)].to_string(),
                    format!("{:.4}", p.value),
                ]
            })
            .collect();
        println!("{}", render(&["unix", "commit", "value"], &table));
        match baseline(&pts, &commit) {
            Some(b) => println!("current baseline (median of trailing window): {b:.4}\n"),
            None => println!("no baseline yet (all points are from this commit)\n"),
        }
    }
    ExitCode::SUCCESS
}

/// The pre-engine design-choice sweeps from DESIGN.md, kept verbatim.
fn legacy() {
    use bench::experiments::ablations;
    use xmpi::Grid3;
    ablations::block_size(512, Grid3::new(2, 2, 2), &[8, 16, 32, 64, 128]).emit();
    ablations::replication(
        512,
        16,
        &[
            Grid3::new(4, 4, 1),
            Grid3::new(2, 4, 2),
            Grid3::new(2, 2, 4),
        ],
    )
    .emit();
    ablations::pivoting(
        256,
        &[
            Grid3::new(2, 2, 1),
            Grid3::new(2, 2, 2),
            Grid3::new(2, 2, 4),
        ],
    )
    .emit();
}
