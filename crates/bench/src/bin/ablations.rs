//! Run the design-choice ablations DESIGN.md calls out: block size,
//! replication depth, and pivoting strategy.
use bench::experiments::ablations;
use xmpi::Grid3;

fn main() {
    ablations::block_size(512, Grid3::new(2, 2, 2), &[8, 16, 32, 64, 128]).emit();
    ablations::replication(
        512,
        16,
        &[
            Grid3::new(4, 4, 1),
            Grid3::new(2, 4, 2),
            Grid3::new(2, 2, 4),
        ],
    )
    .emit();
    ablations::pivoting(
        256,
        &[
            Grid3::new(2, 2, 1),
            Grid3::new(2, 2, 2),
            Grid3::new(2, 2, 4),
        ],
    )
    .emit();
}
