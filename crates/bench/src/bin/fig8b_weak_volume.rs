//! Regenerate Figure 8b (weak-scaling volume per rank, N = n0·∛P).
fn main() {
    bench::experiments::fig8::fig8b(256, &[4, 8, 16, 32, 64]).emit();
}
