//! Regenerate Table 1 (COnfLUX vs COnfCHOX per-routine costs).
fn main() {
    bench::experiments::table1::run(512, 8).emit();
}
