//! Framework-generality report: 2.5D MMM + CholeskyQR2 on the same
//! measured substrate.
fn main() {
    bench::experiments::generality::run().emit();
}
