//! Fault-tolerance overhead report (`bench recovery` mode).
//!
//! Answers the two costs a production deployment of the fault-tolerant
//! schedules would ask about:
//!
//! 1. **Fault-free checksum tax** — wall time of `conflux_lu_ft` with ABFT
//!    checksums on vs off (checkpointing disabled in both, so the delta is
//!    the encoding/verification cost alone). The run exits nonzero if the
//!    overhead exceeds `--max-overhead` (default 10%), which is the CI gate
//!    keeping the protection affordable.
//! 2. **Crash recovery accounting** — a deterministic mid-panel rank kill
//!    (via `xharness::CrashPlan`) on a checkpointing run: restarts, the
//!    resumed epoch, checkpoint-ring and recovery bytes (attributed to their
//!    own phases, outside the algorithmic volume), and bitwise identity of
//!    the recovered factors against the fault-free run.
//!
//! Writes `results/BENCH_recovery.json`.
//!
//! ```text
//! recovery [--n 512] [--p 16] [--reps 3] [--out results] [--max-overhead 0.10]
//! ```

use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

use dense::gen::random_matrix;
use dense::norms::lu_residual_perm;
use factor::{conflux_lu_ft, FtConfig, FtLuOutput};
use serde_json::json;
use xharness::{CrashPlan, PerturbConfig, Perturbator};

struct Args {
    n: usize,
    p: usize,
    reps: usize,
    out: String,
    max_overhead: f64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        n: 512,
        p: 16,
        reps: 3,
        out: "results".into(),
        max_overhead: 0.10,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match flag.as_str() {
            "--n" => args.n = value("--n")?.parse().map_err(|e| format!("bad --n: {e}"))?,
            "--p" => args.p = value("--p")?.parse().map_err(|e| format!("bad --p: {e}"))?,
            "--reps" => {
                args.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("bad --reps: {e}"))?;
            }
            "--out" => args.out = value("--out")?,
            "--max-overhead" => {
                args.max_overhead = value("--max-overhead")?
                    .parse()
                    .map_err(|e| format!("bad --max-overhead: {e}"))?;
            }
            "--help" | "-h" => {
                return Err(
                    "usage: recovery [--n N] [--p P] [--reps R] [--out DIR] [--max-overhead F]"
                        .into(),
                )
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    Ok(args)
}

/// Best-of-`reps` wall time for one configuration (min absorbs scheduler
/// noise the way the kernel benchmarks do).
fn time_best(reps: usize, f: impl Fn() -> FtLuOutput) -> (f64, FtLuOutput) {
    let mut best: Option<(f64, FtLuOutput)> = None;
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        let out = f();
        let dt = t0.elapsed().as_secs_f64();
        if best.as_ref().is_none_or(|(b, _)| dt < *b) {
            best = Some((dt, out));
        }
    }
    best.expect("reps >= 1")
}

fn bitwise_eq(a: &dense::Matrix, b: &dense::Matrix) -> bool {
    a.rows() == b.rows()
        && a.cols() == b.cols()
        && a.data()
            .iter()
            .zip(b.data())
            .all(|(x, y)| x.to_bits() == y.to_bits())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let (n, p) = (args.n, args.p);
    let a = random_matrix(n, n, 4242);
    let cfg = FtConfig::auto(n, p);
    let grid = cfg.grid;
    println!(
        "recovery: n={n}, p={p} (grid {}x{}x{}, v={}), {} reps",
        grid.px, grid.py, grid.pz, cfg.v, args.reps
    );

    // ---- 1. Fault-free checksum tax (checkpointing off in both arms) ----
    let plain_cfg = cfg.clone().checkpoint_every(0).no_checksums();
    let ck_cfg = cfg.clone().checkpoint_every(0);
    let (t_plain, out_plain) = time_best(args.reps, || {
        conflux_lu_ft(&plain_cfg, &a).expect("plain run")
    });
    let (t_ck, out_ck) = time_best(args.reps, || {
        conflux_lu_ft(&ck_cfg, &a).expect("checksummed run")
    });
    let overhead = t_ck / t_plain - 1.0;
    println!(
        "  fault-free: plain {t_plain:.3}s, checksummed {t_ck:.3}s  ->  overhead {:+.1}%",
        overhead * 100.0
    );
    assert!(
        bitwise_eq(&out_plain.packed, &out_ck.packed) && out_plain.perm == out_ck.perm,
        "checksums must not change the factors"
    );
    let resid = lu_residual_perm(&a, &out_ck.packed, &out_ck.perm);
    assert!(resid < 1e-12, "fault-free residual {resid:e}");

    // ---- 2. Crash recovery accounting (checkpointing on) ---------------
    // A mid-panel kill: far enough in that several ring checkpoints exist,
    // so the restart resumes from one instead of recomputing from scratch.
    let plan = CrashPlan {
        victim: 1,
        after_sends: 100,
    };
    let ft_cfg = cfg.clone();
    let base = conflux_lu_ft(&ft_cfg, &a).expect("fault-free checkpointing run");
    let pert = Arc::new(Perturbator::new(PerturbConfig::new(0)).with_crash(plan));
    let t0 = Instant::now();
    let crashed = xharness::run_armed(&pert, || {
        conflux_lu_ft(&ft_cfg, &a).expect("crashed run must complete")
    });
    let t_crash = t0.elapsed().as_secs_f64();
    assert!(pert.crash_fired(), "planned crash never fired");
    assert!(
        bitwise_eq(&crashed.packed, &base.packed) && crashed.perm == base.perm,
        "recovered factors must match the fault-free run bitwise"
    );
    println!(
        "  crash: victim {} at send {}, {} restart(s), resumed from epoch {:?}",
        plan.victim, plan.after_sends, crashed.report.restarts, crashed.report.resumed_from
    );
    println!(
        "  traffic: ckpt {} B, recovery {} B, algorithmic {:.0} words/rank",
        crashed.report.ckpt_bytes(),
        crashed.report.recovery_bytes(),
        crashed.report.algo_avg_rank_bytes() / 16.0
    );

    let report = json!({
        "provenance": bench::provenance::Stamp::here(None).to_json(),
        "n": n,
        "p": p,
        "grid": [grid.px, grid.py, grid.pz],
        "v": cfg.v,
        "reps": args.reps,
        "fault_free": {
            "walltime_plain_s": t_plain,
            "walltime_checksummed_s": t_ck,
            "checksum_overhead_frac": overhead,
            "max_overhead_frac": args.max_overhead,
            "residual": resid,
            "bitwise_identical_on_off": true,
        },
        "crash": {
            "victim": plan.victim,
            "after_sends": plan.after_sends,
            "restarts": crashed.report.restarts,
            "resumed_from": crashed.report.resumed_from,
            "walltime_s": t_crash,
            "ckpt_bytes": crashed.report.ckpt_bytes(),
            "recovery_bytes": crashed.report.recovery_bytes(),
            "algo_words_per_rank": crashed.report.algo_avg_rank_bytes() / 16.0,
            "bitwise_identical_to_fault_free": true,
        },
    });
    let dir = Path::new(&args.out);
    std::fs::create_dir_all(dir).expect("create output dir");
    let path = dir.join("BENCH_recovery.json");
    std::fs::write(&path, serde_json::to_string_pretty(&report).unwrap() + "\n")
        .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    println!("  wrote {}", path.display());

    if overhead > args.max_overhead {
        eprintln!(
            "recovery FAILURE: checksum overhead {:.1}% exceeds the {:.1}% budget",
            overhead * 100.0,
            args.max_overhead * 100.0
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
