//! KPI definitions — the one place every registry writer agrees on what a
//! number means.
//!
//! A KPI record is a flat `name → f64` map. The factor-workload KPIs:
//!
//! | KPI | definition | deterministic? |
//! |---|---|---|
//! | `sim_time_ms` | α-β-γ rank time on the busiest rank (ms) | yes |
//! | `gflops` | `total_flops / sim_time / 1e9` | yes |
//! | `pct_peak` | `% of P·γ` at the simulated time | yes |
//! | `words_per_rank` | `avg (sent+recv)/2` per rank, in 8-byte words | yes |
//! | `comm_factor` | `words_per_rank / Q_lower(N, P, M=c·N²/P)` | yes |
//! | `msgs_per_rank` | mean messages sent per rank | yes |
//! | `idle_frac` | receive-wait share of `P·makespan` (host clock) | no |
//! | `critpath_frac` | critical-path share of the makespan (host clock) | no |
//! | `checksum_byte_overhead` | ABFT bytes over the unprotected run − 1 | yes |
//!
//! "Deterministic" KPIs are pure functions of the measured traffic and the
//! analytic machine model, so they are bit-stable across runs of the same
//! commit — those are the ones plans gate with tolerances. The host-clock
//! KPIs (`idle_frac`, `critpath_frac`) are recorded for trajectory plots
//! but should not carry tight tolerances.
//!
//! The kernels-workload KPIs are `gflops_<kernel>` for each measured kernel
//! plus `gemm_speedup` (packed vs naive) — the quantity the CI perf gate
//! holds the floor on.

use crate::machine::Machine;
use crate::runner::Algo;
use pebbles::bounds::{cholesky_io_lower_bound, lu_io_lower_bound};
use serde_json::Value;
use std::collections::BTreeMap;
use xmpi::{WorldStats, WorldTrace};

/// Parse an ablation-axis algorithm name.
pub fn algo_from_name(name: &str) -> Option<Algo> {
    Some(match name {
        "conflux" => Algo::Conflux,
        "confchox" => Algo::Confchox,
        "twod-lu" => Algo::TwodLu,
        "twod-chol" => Algo::TwodChol,
        "lu25d" => Algo::SwapLu,
        _ => return None,
    })
}

/// The paper's I/O lower bound for `algo` at `M = c·N²/P`, in words/rank.
pub fn io_lower_bound(algo: Algo, n: usize, p: usize, c: usize) -> f64 {
    let m = (c.max(1) * n * n) as f64 / p as f64;
    match algo {
        Algo::Conflux | Algo::TwodLu | Algo::SwapLu => lu_io_lower_bound(n, p, m),
        Algo::Confchox | Algo::TwodChol => cholesky_io_lower_bound(n, p, m),
    }
}

/// Extract the factor-workload KPI record from one measured run.
///
/// `c` is the replication depth the run actually used (`grid.pz`); the
/// trace is optional — without it the host-clock KPIs are omitted, not
/// zero-filled, so a registry consumer can tell "not measured" from
/// "perfectly overlapped".
pub fn factor_kpis(
    algo: Algo,
    n: usize,
    p: usize,
    c: usize,
    stats: &WorldStats,
    trace: Option<&WorldTrace>,
    mach: &Machine,
) -> BTreeMap<String, f64> {
    let mut kpis = BTreeMap::new();
    let flops_total = algo.total_flops(n);
    let msgs = stats.total_msgs() as f64 / p as f64;
    let t = mach.rank_time(
        flops_total / p as f64,
        stats.max_rank_bytes() as f64 / 2.0,
        msgs,
    );
    let words = stats.avg_rank_bytes() / 16.0;
    kpis.insert("sim_time_ms".into(), t * 1e3);
    kpis.insert("gflops".into(), flops_total / t / 1e9);
    kpis.insert("pct_peak".into(), mach.pct_peak(flops_total, p, t));
    kpis.insert("words_per_rank".into(), words);
    kpis.insert("comm_factor".into(), words / io_lower_bound(algo, n, p, c));
    kpis.insert("msgs_per_rank".into(), msgs);
    if let Some(tr) = trace {
        let tk = xtrace::trace_kpis(tr);
        kpis.insert("idle_frac".into(), tk.idle_frac);
        kpis.insert("critpath_frac".into(), tk.critpath_frac);
        kpis.insert("makespan_ms".into(), tk.makespan_ns as f64 / 1e6);
    }
    kpis
}

/// Extract the kernels-workload KPI record at one size from the
/// [`crate::experiments::kernels`] report JSON.
pub fn kernel_kpis(report_json: &Value, n: usize) -> BTreeMap<String, f64> {
    let mut kpis = BTreeMap::new();
    if let Some(samples) = report_json["samples"].as_array() {
        for s in samples {
            if s["n"].as_u64() == Some(n as u64) {
                if let (Some(k), Some(g)) = (s["kernel"].as_str(), s["gflops"].as_f64()) {
                    kpis.insert(format!("gflops_{k}"), g);
                }
            }
        }
    }
    if let Some(speedups) = report_json["gemm_speedup_vs_naive"].as_array() {
        for s in speedups {
            if s["n"].as_u64() == Some(n as u64) {
                if let Some(v) = s["speedup"].as_f64() {
                    kpis.insert("gemm_speedup".into(), v);
                }
            }
        }
    }
    if let Some(speedups) = report_json["gemm_tuned_speedup_vs_scalar"].as_array() {
        for s in speedups {
            if s["n"].as_u64() == Some(n as u64) {
                if let Some(v) = s["speedup"].as_f64() {
                    kpis.insert("tuned_speedup".into(), v);
                }
            }
        }
    }
    kpis
}

/// Extract the comm-workload KPI record at one `(n, p)` cell from the
/// [`crate::experiments::comm`] report JSON. `n` is the broadcast message
/// size in f64 elements. `bcast_speedup` (tree vs seed linear fan-out,
/// wall-clock) is the quantity the CI perf gate holds the floor on; the
/// p2p numbers characterize the transport itself and should carry loose or
/// no tolerances (host-clock measurements).
pub fn comm_kpis(report_json: &Value, n: usize, p: usize) -> BTreeMap<String, f64> {
    let mut kpis = BTreeMap::new();
    if let Some(v) = report_json["p2p"]["latency_us"].as_f64() {
        kpis.insert("p2p_latency_us".into(), v);
    }
    if let Some(v) = report_json["p2p"]["gbps"].as_f64() {
        kpis.insert("p2p_gbps".into(), v);
    }
    if let Some(cells) = report_json["bcast"].as_array() {
        for s in cells {
            if s["elems"].as_u64() == Some(n as u64) && s["p"].as_u64() == Some(p as u64) {
                for (kpi, field) in [
                    ("bcast_tree_us", "tree_us"),
                    ("bcast_linear_us", "linear_us"),
                    ("bcast_speedup", "speedup"),
                ] {
                    if let Some(v) = s[field].as_f64() {
                        kpis.insert(kpi.into(), v);
                    }
                }
            }
        }
    }
    kpis
}

/// Extract the transport-workload KPI record at one `(n, p)` cell from the
/// [`crate::experiments::transport`] report JSON: the measured postal-model
/// α (µs) and β (GB/s) of each backend, the socket/local ratios, and the
/// measured-vs-simulated calibration gap (`alpha_model_x_*` — how many
/// times the simulated machine's α the measured one is). All of these are
/// host-clock numbers: plans should gate sanity floors only and let the
/// registry trend carry the calibration story.
pub fn transport_kpis(report_json: &Value, n: usize, p: usize) -> BTreeMap<String, f64> {
    let mut kpis = BTreeMap::new();
    let model_alpha = report_json["model"]["alpha_us"].as_f64();
    if let Some(backends) = report_json["backends"].as_array() {
        for b in backends {
            let Some(label) = b["backend"].as_str() else {
                continue;
            };
            if let Some(a) = b["alpha_us"].as_f64() {
                kpis.insert(format!("alpha_{label}_us"), a);
                if let Some(m) = model_alpha {
                    if m > 0.0 {
                        kpis.insert(format!("alpha_model_x_{label}"), a / m);
                    }
                }
            }
            if let Some(g) = b["gbps"].as_f64() {
                kpis.insert(format!("gbps_{label}"), g);
            }
            if let Some(cells) = b["oneway"].as_array() {
                for c in cells {
                    if c["elems"].as_u64() == Some(n as u64) {
                        if let Some(us) = c["us"].as_f64() {
                            kpis.insert(format!("oneway_{label}_us"), us);
                        }
                    }
                }
            }
            if let Some(cells) = b["bcast"].as_array() {
                for c in cells {
                    if c["elems"].as_u64() == Some(n as u64) && c["p"].as_u64() == Some(p as u64) {
                        if let Some(us) = c["us"].as_f64() {
                            kpis.insert(format!("bcast_{label}_us"), us);
                        }
                    }
                }
            }
        }
    }
    for ratio in ["alpha", "gbps", "oneway", "bcast"] {
        let (l, s) = match ratio {
            "alpha" => ("alpha_local_us", "alpha_socket_us"),
            "gbps" => ("gbps_local", "gbps_socket"),
            "oneway" => ("oneway_local_us", "oneway_socket_us"),
            _ => ("bcast_local_us", "bcast_socket_us"),
        };
        if let (Some(&lv), Some(&sv)) = (kpis.get(l), kpis.get(s)) {
            if lv > 0.0 {
                kpis.insert(format!("socket_over_local_{ratio}"), sv / lv);
            }
        }
    }
    kpis
}

/// Extract the tune-workload KPI record from one [`crate::tune`] sweep
/// outcome: the winner's throughput and blocking, the forced-scalar
/// baseline, and the speedup the CI floor gates on. Blocking parameters are
/// recorded as KPIs so the trend gate catches a winner silently drifting to
/// a different configuration shape across commits.
pub fn tune_kpis(outcome: &crate::tune::TuneOutcome) -> BTreeMap<String, f64> {
    let mut kpis = BTreeMap::new();
    kpis.insert("gflops_tuned".into(), outcome.best_gflops);
    kpis.insert("gflops_scalar_base".into(), outcome.scalar_gflops);
    kpis.insert(
        "tuned_speedup".into(),
        outcome.best_gflops / outcome.scalar_gflops,
    );
    kpis.insert("best_kc".into(), outcome.best.kc as f64);
    kpis.insert("best_mc".into(), outcome.best.mc as f64);
    kpis.insert("best_nc".into(), outcome.best.nc as f64);
    kpis.insert("best_mr".into(), outcome.best.variant.mr as f64);
    kpis.insert("best_nr".into(), outcome.best.variant.nr as f64);
    kpis.insert("best_unroll".into(), outcome.best.variant.unroll as f64);
    kpis.insert("best_prefetch".into(), outcome.best.variant.prefetch as f64);
    kpis.insert(
        "best_is_simd".into(),
        if outcome.best.variant.isa == dense::ukernel::Isa::Scalar {
            0.0
        } else {
            1.0
        },
    );
    kpis
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Workload;

    #[test]
    fn factor_kpis_are_complete_and_positive() {
        let mach = Machine::piz_daint();
        let w = Workload::new(32, 7);
        let cfg = factor::ConfluxConfig::auto(32, 4).volume_only();
        let out = factor::conflux_lu(&cfg, &w.general).unwrap();
        let kpis = factor_kpis(Algo::Conflux, 32, 4, cfg.grid.pz, &out.stats, None, &mach);
        for k in [
            "sim_time_ms",
            "gflops",
            "pct_peak",
            "words_per_rank",
            "comm_factor",
            "msgs_per_rank",
        ] {
            assert!(kpis[k] > 0.0, "{k} = {}", kpis[k]);
        }
        assert!(
            !kpis.contains_key("idle_frac"),
            "trace KPIs must be absent without a trace"
        );
        // Measured volume cannot beat the lower bound.
        assert!(kpis["comm_factor"] >= 1.0, "{}", kpis["comm_factor"]);
    }

    #[test]
    fn kernel_kpis_pull_the_right_size() {
        let json = serde_json::json!({
            "samples": [
                { "kernel": "gemm", "n": 24, "gflops": 5.0 },
                { "kernel": "gemm", "n": 40, "gflops": 6.0 },
                { "kernel": "gemm_naive", "n": 40, "gflops": 2.0 },
            ],
            "gemm_speedup_vs_naive": [
                { "n": 24, "speedup": 2.5 }, { "n": 40, "speedup": 3.0 },
            ],
            "gemm_tuned_speedup_vs_scalar": [
                { "n": 24, "speedup": 1.1 }, { "n": 40, "speedup": 1.8 },
            ],
        });
        let kpis = kernel_kpis(&json, 40);
        assert_eq!(kpis["gflops_gemm"], 6.0);
        assert_eq!(kpis["gflops_gemm_naive"], 2.0);
        assert_eq!(kpis["gemm_speedup"], 3.0);
        assert_eq!(kpis["tuned_speedup"], 1.8);
        assert!(!kpis.contains_key("gflops_par_gemm"));
    }

    #[test]
    fn comm_kpis_pull_the_right_cell() {
        let json = serde_json::json!({
            "p2p": { "latency_us": 1.5, "gbps": 4.0 },
            "bcast": [
                { "p": 8, "elems": 1024, "linear_us": 80.0, "tree_us": 20.0, "speedup": 4.0 },
                { "p": 16, "elems": 32768, "linear_us": 900.0, "tree_us": 100.0, "speedup": 9.0 },
            ],
        });
        let kpis = comm_kpis(&json, 32768, 16);
        assert_eq!(kpis["bcast_speedup"], 9.0);
        assert_eq!(kpis["bcast_tree_us"], 100.0);
        assert_eq!(kpis["bcast_linear_us"], 900.0);
        assert_eq!(kpis["p2p_latency_us"], 1.5);
        assert_eq!(kpis["p2p_gbps"], 4.0);
        // A cell not in the report yields only the p2p numbers.
        assert!(!comm_kpis(&json, 64, 16).contains_key("bcast_speedup"));
    }
}
