//! Local-kernel throughput trajectory: measured GFLOP/s for the packed,
//! register-blocked dense kernels (`gemm`, `gemmt`, `trsm`, `getrf`,
//! `potrf`) plus the retained naive triple-loop reference.
//!
//! The distributed schedules charge every rank `flops / machine-peak`
//! seconds per kernel call, so the modeled makespans are only as honest as
//! the local kernels are fast. This report pins the achieved single-core
//! rate of each kernel (analytic flop count over best-of-`reps` wall time)
//! and the packed-vs-naive GEMM speedup that PR gate `--min-speedup`
//! enforces in CI.

use crate::experiments::Report;
use crate::provenance::Stamp;
use crate::table::render;
use dense::flops::{gemm_flops, gemmt_flops, getrf_flops, potrf_flops, trsm_flops};
use dense::gemm::{gemm, gemmt, naive_gemm, par_gemm, CUplo, Trans};
use dense::gen::{random_matrix, random_spd};
use dense::getrf::getrf;
use dense::potrf::potrf;
use dense::trsm::{trsm, Diag, Side, Uplo};
use dense::Matrix;
use serde_json::json;
use std::hint::black_box;
use std::time::Instant;

/// Best-of-`reps` wall time for `f`, after one untimed warmup call (which
/// also grows the thread-local packing buffers to their steady-state size).
fn best_secs<F: FnMut()>(reps: usize, mut f: F) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn gflops(flops: u64, secs: f64) -> f64 {
    flops as f64 / secs / 1e9
}

/// One measured kernel at one size.
struct Sample {
    kernel: &'static str,
    n: usize,
    gflops: f64,
}

/// Measure every kernel at size `n`, appending to `out`. Returns the
/// `(naive, packed, forced-scalar)` GEMM rates so the caller can form the
/// speedup series.
fn measure_size(n: usize, reps: usize, out: &mut Vec<Sample>) -> (f64, f64, f64) {
    let a = random_matrix(n, n, 11);
    let b = random_matrix(n, n, 12);
    let fl = gemm_flops(n, n, n);

    let mut c = Matrix::zeros(n, n);
    // Naive reference gets fewer reps at large n: it is the slow side of the
    // speedup ratio and one clean repetition is representative.
    let naive_reps = if n >= 384 { 1 } else { reps };
    let t_naive = best_secs(naive_reps, || {
        naive_gemm(
            Trans::N,
            Trans::N,
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            c.as_mut(),
        );
        black_box(c.data()[0]);
    });
    let naive = gflops(fl, t_naive);
    out.push(Sample {
        kernel: "gemm_naive",
        n,
        gflops: naive,
    });

    let t_packed = best_secs(reps, || {
        gemm(
            Trans::N,
            Trans::N,
            1.0,
            a.as_ref(),
            b.as_ref(),
            0.0,
            c.as_mut(),
        );
        black_box(c.data()[0]);
    });
    let packed = gflops(fl, t_packed);
    out.push(Sample {
        kernel: "gemm",
        n,
        gflops: packed,
    });

    // The same packed engine pinned to the pre-tuning scalar baseline
    // (scalar 4×8 microkernel, default blocking): the denominator of the
    // `tuned_speedup` KPI that gates auto-tuning in CI.
    let t_scalar = best_secs(reps, || {
        dense::tuning::with_override(dense::tuning::scalar_baseline(), || {
            gemm(
                Trans::N,
                Trans::N,
                1.0,
                a.as_ref(),
                b.as_ref(),
                0.0,
                c.as_mut(),
            )
        });
        black_box(c.data()[0]);
    });
    let scalar = gflops(fl, t_scalar);
    out.push(Sample {
        kernel: "gemm_scalar",
        n,
        gflops: scalar,
    });

    let t_par = best_secs(reps, || {
        par_gemm(1.0, a.as_ref(), b.as_ref(), 0.0, c.as_mut());
        black_box(c.data()[0]);
    });
    out.push(Sample {
        kernel: "par_gemm",
        n,
        gflops: gflops(fl, t_par),
    });

    // Symmetric rank-k update with a panel-shaped k, as the factorizations
    // issue it.
    let k = 64.min(n);
    let ak = random_matrix(n, k, 13);
    let mut sym = Matrix::zeros(n, n);
    let t_gemmt = best_secs(reps, || {
        gemmt(
            CUplo::Lower,
            Trans::N,
            Trans::T,
            -1.0,
            ak.as_ref(),
            ak.as_ref(),
            1.0,
            sym.as_mut(),
        );
        black_box(sym.data()[0]);
    });
    out.push(Sample {
        kernel: "gemmt",
        n,
        gflops: gflops(gemmt_flops(n, k), t_gemmt),
    });

    let tri = {
        let mut t = random_matrix(n, n, 14);
        for i in 0..n {
            t[(i, i)] = 4.0 + t[(i, i)].abs();
        }
        t
    };
    let rhs = random_matrix(n, n, 15);
    let mut x = rhs.clone();
    let t_trsm = best_secs(reps, || {
        x.data_mut().copy_from_slice(rhs.data());
        trsm(
            Side::Left,
            Uplo::Lower,
            Trans::N,
            Diag::NonUnit,
            1.0,
            tri.as_ref(),
            x.as_mut(),
        );
        black_box(x.data()[0]);
    });
    out.push(Sample {
        kernel: "trsm",
        n,
        gflops: gflops(trsm_flops(n, n), t_trsm),
    });

    let square = random_matrix(n, n, 16);
    let mut w = square.clone();
    let t_getrf = best_secs(reps, || {
        w.data_mut().copy_from_slice(square.data());
        black_box(getrf(&mut w, 0).unwrap().len());
    });
    out.push(Sample {
        kernel: "getrf",
        n,
        gflops: gflops(getrf_flops(n, n), t_getrf),
    });

    let spd = random_spd(n, 17);
    let mut wc = spd.clone();
    let t_potrf = best_secs(reps, || {
        wc.data_mut().copy_from_slice(spd.data());
        potrf(&mut wc, 0).unwrap();
        black_box(wc.data()[0]);
    });
    out.push(Sample {
        kernel: "potrf",
        n,
        gflops: gflops(potrf_flops(n), t_potrf),
    });

    (naive, packed, scalar)
}

/// Run the kernel sweep over `sizes` with best-of-`reps` timing.
pub fn kernels(sizes: &[usize], reps: usize) -> Report {
    let mut samples = Vec::new();
    let mut speedups = Vec::new();
    let mut tuned_speedups = Vec::new();
    for &n in sizes {
        let (naive, packed, scalar) = measure_size(n, reps, &mut samples);
        speedups.push((n, packed / naive));
        tuned_speedups.push((n, packed / scalar));
    }

    let kernel_order = [
        "gemm_naive",
        "gemm",
        "gemm_scalar",
        "par_gemm",
        "gemmt",
        "trsm",
        "getrf",
        "potrf",
    ];
    let mut headers = vec!["kernel"];
    let size_labels: Vec<String> = sizes.iter().map(|n| format!("N={n}")).collect();
    headers.extend(size_labels.iter().map(|s| s.as_str()));
    let rows: Vec<Vec<String>> = kernel_order
        .iter()
        .map(|&kname| {
            let mut row = vec![kname.to_string()];
            for &n in sizes {
                let s = samples
                    .iter()
                    .find(|s| s.kernel == kname && s.n == n)
                    .expect("sample measured");
                row.push(format!("{:.2}", s.gflops));
            }
            row
        })
        .collect();
    let mut text = format!("GFLOP/s, best of {reps} reps:\n{}", render(&headers, &rows));
    text.push_str("\npacked gemm speedup over naive triple loop:\n");
    for &(n, s) in &speedups {
        text.push_str(&format!("  N={n}: {s:.2}x\n"));
    }
    text.push_str(&format!(
        "tuned gemm speedup over forced-scalar baseline ({}):\n",
        dense::tuning::active().describe()
    ));
    for &(n, s) in &tuned_speedups {
        text.push_str(&format!("  N={n}: {s:.2}x\n"));
    }

    Report {
        id: "BENCH_kernels".into(),
        title: "local kernel throughput (packed register-blocked path)".into(),
        json: json!({
            "provenance": Stamp::here(None).to_json(),
            "reps": reps,
            "sizes": sizes,
            "samples": samples.iter().map(|s| json!({
                "kernel": s.kernel, "n": s.n, "gflops": s.gflops,
            })).collect::<Vec<_>>(),
            "gemm_speedup_vs_naive": speedups.iter().map(|&(n, s)| json!({
                "n": n, "speedup": s,
            })).collect::<Vec<_>>(),
            "gemm_tuned_speedup_vs_scalar": tuned_speedups.iter().map(|&(n, s)| json!({
                "n": n, "speedup": s,
            })).collect::<Vec<_>>(),
            "tuning_config": dense::tuning::active().describe(),
        }),
        text,
    }
}

/// Largest-size packed-vs-naive GEMM speedup from a [`kernels`] report, for
/// the CI `--min-speedup` gate.
pub fn final_speedup(report: &Report) -> f64 {
    report.json["gemm_speedup_vs_naive"]
        .as_array()
        .and_then(|a| a.last())
        .and_then(|v| v["speedup"].as_f64())
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_covers_every_kernel_and_size() {
        let r = kernels(&[24, 40], 1);
        assert_eq!(r.id, "BENCH_kernels");
        assert!(
            r.json["provenance"]["commit"].as_str().is_some(),
            "report must carry the shared provenance stamp"
        );
        let samples = r.json["samples"].as_array().unwrap();
        for kernel in [
            "gemm_naive",
            "gemm",
            "gemm_scalar",
            "par_gemm",
            "gemmt",
            "trsm",
            "getrf",
            "potrf",
        ] {
            for n in [24u64, 40] {
                assert!(
                    samples.iter().any(|s| s["kernel"] == kernel
                        && s["n"].as_u64() == Some(n)
                        && s["gflops"].as_f64().unwrap() > 0.0),
                    "missing {kernel} at n={n}"
                );
            }
        }
        assert!(final_speedup(&r) > 0.0);
        let tuned = r.json["gemm_tuned_speedup_vs_scalar"].as_array().unwrap();
        assert_eq!(tuned.len(), 2, "one tuned-speedup point per size");
        assert!(tuned.iter().all(|v| v["speedup"].as_f64().unwrap() > 0.0));
    }
}
