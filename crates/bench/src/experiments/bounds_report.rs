//! Section 6 reproduction: the parallel I/O lower bounds, derived through
//! the generic pipeline and sandwiched by executable pebbling schedules.

use crate::experiments::Report;
use crate::table::render;
use pebbles::bounds::{
    cholesky_io_lower_bound, lu_io_lower_bound, mmm_io_lower_bound, schur_statement_rho,
};
use pebbles::cdag::{cholesky_cdag, lu_cdag, mmm_cdag};
use pebbles::game::{greedy_schedule, verify};
use serde_json::json;

/// Regenerate the §6 bounds report.
pub fn run() -> Report {
    // Generic-pipeline check of the hand-derived constants.
    let mut rho_rows = Vec::new();
    let mut rho_data = Vec::new();
    for m in [256.0, 1024.0, 4096.0] {
        let (x0, rho) = schur_statement_rho(m);
        rho_rows.push(vec![
            format!("{m}"),
            format!("{x0:.1}"),
            format!("{:.1}", 3.0 * m),
            format!("{rho:.2}"),
            format!("{:.2}", m.sqrt() / 2.0),
        ]);
        rho_data.push(json!({ "m": m, "x0": x0, "rho": rho }));
    }

    // Sandwich: lower bound ≤ optimal ≤ greedy schedule, on real cDAGs.
    let mut sand_rows = Vec::new();
    let mut sand_data = Vec::new();
    for (name, n, g) in [
        ("LU", 10usize, lu_cdag(10)),
        ("Cholesky", 10, cholesky_cdag(10)),
        ("MMM", 6, mmm_cdag(6)),
    ] {
        for m in [8usize, 16, 32] {
            let lb = match name {
                "LU" => lu_io_lower_bound(n, 1, m as f64),
                "Cholesky" => cholesky_io_lower_bound(n, 1, m as f64),
                _ => mmm_io_lower_bound(n, 1, m as f64),
            };
            let q = verify(&g, &greedy_schedule(&g, m), m)
                .expect("valid schedule")
                .q;
            sand_rows.push(vec![
                name.into(),
                format!("{n}"),
                format!("{m}"),
                format!("{lb:.1}"),
                format!("{q}"),
                format!("{:.2}", q as f64 / lb),
            ]);
            sand_data.push(json!({
                "kernel": name, "n": n, "m": m, "lower_bound": lb, "greedy_q": q,
            }));
        }
    }

    // Paper-scale parallel bounds.
    let mut par_rows = Vec::new();
    for p in [64usize, 512, 4096, 32768] {
        let n = 16384;
        let c = (p as f64).powf(1.0 / 3.0);
        let m = c * (n as f64) * (n as f64) / p as f64;
        par_rows.push(vec![
            format!("{p}"),
            format!("{:.3e}", lu_io_lower_bound(n, p, m)),
            format!("{:.3e}", cholesky_io_lower_bound(n, p, m)),
        ]);
    }

    let text = format!(
        "Schur-statement intensity via the generic KKT pipeline (expect X₀=3M, ρ=√M/2):\n{}\n\
         sandwich — lower bound ≤ Q_opt ≤ greedy pebbling:\n{}\n\
         parallel bounds at N=16384, M=c·N²/P, c=P^(1/3) (words/rank):\n{}",
        render(&["M", "X₀", "3M", "ρ(X₀)", "√M/2"], &rho_rows),
        render(
            &["kernel", "n", "M", "lower bound", "greedy Q", "ratio"],
            &sand_rows
        ),
        render(&["P", "LU bound", "Cholesky bound"], &par_rows)
    );
    Report {
        id: "bounds".into(),
        title: "parallel I/O lower bounds (paper §6)".into(),
        json: json!({ "schur_rho": rho_data, "sandwich": sand_data }),
        text,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn sandwich_holds_in_report() {
        let r = super::run();
        for s in r.json["sandwich"].as_array().unwrap() {
            let lb = s["lower_bound"].as_f64().unwrap();
            let q = s["greedy_q"].as_f64().unwrap();
            assert!(q >= lb, "{s}");
        }
    }
}
