//! One sub-module per paper table/figure; each produces a [`Report`]
//! (human-readable text + machine-readable JSON) so the regenerator
//! binaries and `all_experiments` share one implementation.

pub mod ablations;
pub mod bounds_report;
pub mod comm;
pub mod fig1;
pub mod fig8;
pub mod fig9;
pub mod generality;
pub mod kernels;
pub mod table1;
pub mod table2;
pub mod transport;

use serde_json::Value;
use std::io::Write;
use std::path::Path;

/// A regenerated experiment: terminal text plus raw data.
pub struct Report {
    /// Experiment id (e.g. `"fig8a"`).
    pub id: String,
    /// Paper caption this reproduces.
    pub title: String,
    /// Rendered tables/series for the terminal.
    pub text: String,
    /// Raw data for downstream plotting.
    pub json: Value,
}

impl Report {
    /// Print to stdout and persist the JSON under `results/`.
    pub fn emit(&self) {
        println!("== {} — {} ==\n{}", self.id, self.title, self.text);
        if let Err(e) = self.save(Path::new("results")) {
            eprintln!("(could not save results/{}.json: {e})", self.id);
        }
    }

    /// Write `<dir>/<id>.json`.
    pub fn save(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f = std::fs::File::create(dir.join(format!("{}.json", self.id)))?;
        writeln!(f, "{}", serde_json::to_string_pretty(&self.json)?)?;
        Ok(())
    }
}
