//! Figure 8: communication volume measurements and model predictions.
//!
//! * **8a** — strong scaling: volume per rank at fixed `N`, varying `P`
//!   (measured at simulation scale, model curves at the paper's
//!   `N = 16384` up to `P = 262144`).
//! * **8b** — weak scaling: `N = N₀·∛P` keeps work per rank constant; 2.5D
//!   schedules hold volume per rank roughly flat while 2D grows.
//! * **8c** — communication reduction of COnfLUX vs the second-best
//!   implementation over a `(P, N)` grid, measured + predicted.

use crate::experiments::Report;
use crate::machine::Machine;
use crate::runner::{run_algo, Algo, Workload};
use crate::table::render;
use factor::models::{candmc_model, conflux_model, twod_lu_model, MachineParams};
use serde_json::json;

/// Fig. 8a: strong-scaling volume, measured + paper-scale model lines.
pub fn fig8a(n: usize, ps: &[usize]) -> Report {
    let mach = Machine::piz_daint();
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for &p in ps {
        let w = Workload::new(n, 800 + p as u64);
        let cf = run_algo(Algo::Conflux, n, p, &w, &mach);
        let td = run_algo(Algo::TwodLu, n, p, &w, &mach);
        let sw = run_algo(Algo::SwapLu, n, p, &w, &mach);
        rows.push(vec![
            format!("{p}"),
            format!("{:.0}", cf.bytes_per_rank),
            format!("{:.0}", td.bytes_per_rank),
            format!("{:.0}", sw.bytes_per_rank),
            format!("{:.2}x", td.bytes_per_rank / cf.bytes_per_rank),
        ]);
        data.push(json!({
            "p": p, "n": n,
            "conflux_bytes_per_rank": cf.bytes_per_rank,
            "twod_bytes_per_rank": td.bytes_per_rank,
            "swap_bytes_per_rank": sw.bytes_per_rank,
        }));
    }
    // Paper-scale model lines (N = 16384, maximum replication, like Fig 8a).
    let mut model_rows = Vec::new();
    for exp in [2u32, 4, 6, 8, 10, 12, 14, 16, 18] {
        let p = 1usize << exp;
        let mp = MachineParams::paper_default(16384, p);
        model_rows.push(vec![
            format!("{p}"),
            format!("{:.3e}", 8.0 * conflux_model(mp)),
            format!("{:.3e}", 8.0 * twod_lu_model(mp, 128)),
            format!("{:.3e}", 8.0 * candmc_model(mp)),
        ]);
    }
    let text = format!(
        "measured (N={n}):\n{}\nmodel lines at paper scale (N=16384, c=P^(1/3), bytes/rank):\n{}",
        render(
            &[
                "P",
                "COnfLUX B/rank",
                "2D (MKL/SLATE)",
                "2.5D swap (CANDMC-like)",
                "2D/COnfLUX"
            ],
            &rows
        ),
        render(
            &["P", "COnfLUX model", "MKL/SLATE model", "CANDMC model"],
            &model_rows
        )
    );
    Report {
        id: "fig8a".into(),
        title: "communication volume per rank, strong scaling".into(),
        json: json!({ "measured": data, "model_n": 16384 }),
        text,
    }
}

/// Fig. 8b: weak scaling `N = n0·∛P` (rounded to valid block multiples).
pub fn fig8b(n0: usize, ps: &[usize]) -> Report {
    let mach = Machine::piz_daint();
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for &p in ps {
        let n_raw = (n0 as f64 * (p as f64).cbrt()) as usize;
        let n = (n_raw / 64).max(1) * 64; // keep divisibility easy
        let w = Workload::new(n, 900 + p as u64);
        let cf = run_algo(Algo::Conflux, n, p, &w, &mach);
        let td = run_algo(Algo::TwodLu, n, p, &w, &mach);
        rows.push(vec![
            format!("{p}"),
            format!("{n}"),
            format!("{:.0}", cf.bytes_per_rank),
            format!("{:.0}", td.bytes_per_rank),
        ]);
        data.push(json!({
            "p": p, "n": n,
            "conflux_bytes_per_rank": cf.bytes_per_rank,
            "twod_bytes_per_rank": td.bytes_per_rank,
        }));
    }
    let text = render(&["P", "N=n0·∛P", "COnfLUX B/rank", "2D B/rank"], &rows);
    Report {
        id: "fig8b".into(),
        title: "communication volume per rank, weak scaling (constant work per rank)".into(),
        json: json!({ "measured": data, "n0": n0 }),
        text,
    }
}

/// Fig. 8c: communication reduction of COnfLUX vs the second-best
/// implementation — measured grid plus model predictions to paper scale.
pub fn fig8c(ns: &[usize], ps: &[usize]) -> Report {
    let mach = Machine::piz_daint();
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for &n in ns {
        for &p in ps {
            if n * n / p < 64 {
                continue;
            }
            let w = Workload::new(n, 700 + (n + p) as u64);
            let cf = run_algo(Algo::Conflux, n, p, &w, &mach);
            let td = run_algo(Algo::TwodLu, n, p, &w, &mach);
            let sw = run_algo(Algo::SwapLu, n, p, &w, &mach);
            let second_best = td.bytes_per_rank.min(sw.bytes_per_rank);
            let red = second_best / cf.bytes_per_rank;
            let who = if td.bytes_per_rank <= sw.bytes_per_rank {
                "M/S"
            } else {
                "C"
            };
            rows.push(vec![
                format!("{n}"),
                format!("{p}"),
                format!("{red:.2}x ({who})"),
            ]);
            data.push(json!({ "n": n, "p": p, "reduction": red, "second_best": who }));
        }
    }
    // Predicted reductions at paper scale.
    let mut pred_rows = Vec::new();
    for exp in [6u32, 9, 12, 15, 18] {
        let p = 1usize << exp;
        for n in [16384usize, 65536, 262144] {
            let mp = MachineParams::paper_default(n, p);
            let red = twod_lu_model(mp, 128).min(candmc_model(mp)) / conflux_model(mp);
            pred_rows.push(vec![format!("{p}"), format!("{n}"), format!("{red:.2}x")]);
        }
    }
    let text = format!(
        "measured (M/S = MKL/SLATE 2D is second best, C = CANDMC-like swap):\n{}\n\
         predicted at paper scale:\n{}",
        render(&["N", "P", "reduction vs 2nd best"], &rows),
        render(&["P", "N", "predicted reduction"], &pred_rows)
    );
    Report {
        id: "fig8c".into(),
        title: "communication reduction of COnfLUX vs second-best implementation".into(),
        json: json!({ "measured": data }),
        text,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn weak_scaling_2d_grows_faster_than_25d() {
        // The defining shape of Fig. 8b: between P=8 (first replicated
        // grid, c=2) and P=64 (c=4), the 2D schedule's per-rank volume must
        // grow by a larger factor than COnfLUX's. (P=4 maps to c=1 where
        // COnfLUX degenerates to a plain 2D grid, so the series starts at
        // the first truly 2.5D point, as the paper's c=P^(1/3) caption
        // implies.)
        let r = super::fig8b(256, &[8, 64]);
        let pts = r.json["measured"].as_array().unwrap();
        let g25 = pts[1]["conflux_bytes_per_rank"].as_f64().unwrap()
            / pts[0]["conflux_bytes_per_rank"].as_f64().unwrap();
        let g2d = pts[1]["twod_bytes_per_rank"].as_f64().unwrap()
            / pts[0]["twod_bytes_per_rank"].as_f64().unwrap();
        assert!(
            g25 < g2d,
            "2.5D weak-scaling growth {g25:.2} must beat 2D {g2d:.2}"
        );
    }

    #[test]
    fn strong_scaling_conflux_beats_swap_variant() {
        let r = super::fig8a(256, &[16]);
        let m = &r.json["measured"][0];
        let cf = m["conflux_bytes_per_rank"].as_f64().unwrap();
        let sw = m["swap_bytes_per_rank"].as_f64().unwrap();
        assert!(cf < sw, "masking ({cf}) must beat swapping ({sw})");
    }
}
