//! Framework-generality report: the same substrate and measurement loop
//! applied to the two algorithm classes the paper's related work is built
//! on — 2.5D matrix multiplication (the SC'19 X-partitioning kernel) and
//! CholeskyQR2 (CAPITAL's algorithm) — with measured volume against the
//! corresponding lower bound.

use crate::experiments::Report;
use crate::table::render;
use dense::gen::random_matrix;
use factor::cholqr::{cholesky_qr, CholQrConfig};
use factor::mmm25d::{mmm25d, Mmm25dConfig};
use pebbles::bounds::mmm_io_lower_bound;
use serde_json::json;
use xmpi::Grid3;

/// Regenerate the generality report.
pub fn run() -> Report {
    // --- 2.5D MMM volume vs replication depth and bound ------------------
    let n = 192;
    let a = random_matrix(n, n, 51);
    let b = random_matrix(n, n, 52);
    let mut mmm_rows = Vec::new();
    let mut mmm_data = Vec::new();
    for grid in [
        Grid3::new(4, 4, 1),
        Grid3::new(2, 4, 2),
        Grid3::new(2, 2, 4),
    ] {
        let p = grid.size();
        let out = mmm25d(&Mmm25dConfig::new(n, 8, grid).volume_only(), &a, &b);
        let words = out.stats.avg_rank_bytes() / 16.0;
        // Working set ≈ A,B,C shares + broadcast buffers ≈ 3cN²/P.
        let m = 3.0 * (grid.pz * n * n) as f64 / p as f64;
        let bound = mmm_io_lower_bound(n, p, m);
        mmm_rows.push(vec![
            format!("[{},{},{}]", grid.px, grid.py, grid.pz),
            format!("{words:.0}"),
            format!("{bound:.0}"),
            format!("{:.2}", words / bound),
        ]);
        mmm_data.push(json!({
            "grid": [grid.px, grid.py, grid.pz],
            "measured_words": words, "bound_words": bound,
        }));
    }

    // --- CholeskyQR2: volume independent of m, orthogonal results --------
    let (nq, p) = (16usize, 8usize);
    let mut qr_rows = Vec::new();
    let mut qr_data = Vec::new();
    for m_rows in [256usize, 1024, 4096] {
        let a = random_matrix(m_rows, nq, m_rows as u64);
        let out = cholesky_qr(&CholQrConfig::new(m_rows, nq, p), &a).expect("qr failed");
        let words = out.stats.avg_rank_bytes() / 16.0;
        qr_rows.push(vec![
            format!("{m_rows}"),
            format!("{nq}"),
            format!("{words:.0}"),
        ]);
        qr_data.push(json!({ "m": m_rows, "n": nq, "measured_words": words }));
    }

    let text = format!(
        "2.5D matrix multiplication, N={n} (words/rank, measured vs bound at the used working set):\n{}\n\
         CholeskyQR2, P={p} (volume per rank must not grow with m — CAPITAL's communication-avoiding property):\n{}",
        render(&["grid", "measured w/rank", "bound w/rank", "ratio"], &mmm_rows),
        render(&["m", "n", "measured w/rank"], &qr_rows)
    );
    Report {
        id: "generality".into(),
        title: "framework generality: 2.5D MMM and CholeskyQR2 on the same substrate".into(),
        json: json!({ "mmm": mmm_data, "cholqr": qr_data }),
        text,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn generality_report_holds_its_invariants() {
        let r = super::run();
        // MMM measured above bound everywhere.
        for row in r.json["mmm"].as_array().unwrap() {
            let meas = row["measured_words"].as_f64().unwrap();
            let bound = row["bound_words"].as_f64().unwrap();
            assert!(meas >= bound, "{row}");
        }
        // CholeskyQR volume flat in m.
        let qr = r.json["cholqr"].as_array().unwrap();
        let w0 = qr[0]["measured_words"].as_f64().unwrap();
        let w2 = qr[2]["measured_words"].as_f64().unwrap();
        assert!((w0 - w2).abs() < 1.0, "volume must be independent of m");
    }
}
