//! Table 1: per-routine communication/computation comparison of COnfLUX
//! and COnfCHOX.
//!
//! The paper's table lists symbolic per-step costs per routine; we print
//! those alongside the *measured* per-phase byte totals of both algorithms
//! at the same configuration — demonstrating the table's headline: Cholesky
//! does half the arithmetic but moves the same class of volume.

use crate::experiments::Report;
use crate::table::render;
use dense::flops::{cholesky_total_flops, lu_total_flops};
use dense::gen::{random_matrix, random_spd};
use factor::confchox::ConfchoxConfig;
use factor::conflux::ConfluxConfig;
use factor::{confchox_cholesky, conflux_lu};
use serde_json::json;
use xmpi::Grid3;

/// Map the runtime's phase labels onto the paper's routine rows.
fn routine(phase: &str) -> &'static str {
    match phase {
        "pivoting" => "TournPivot / (no pivoting)",
        "bcast_a00" | "potrf_bcast" => "A00",
        "reduce_col" | "reduce_pivots" | "panel_trsm" => "A10 and A01 (reduce + trsm)",
        "scatter_panels" | "update_a11" => "A11 (scatter + local gemm)",
        _ => "other",
    }
}

/// Regenerate Table 1.
pub fn run(n: usize, p: usize) -> Report {
    let grid = Grid3::for_processors(p, p);
    let v = ConfluxConfig::auto(n, p).v;
    let a = random_matrix(n, n, 21);
    let spd = random_spd(n, 22);

    let lu = conflux_lu(&ConfluxConfig::new(n, v, grid).volume_only(), &a).expect("lu");
    let ch =
        confchox_cholesky(&ConfchoxConfig::new(n, v, grid).volume_only(), &spd).expect("cholesky");

    let mut rows_map: std::collections::BTreeMap<&'static str, (u64, u64)> = Default::default();
    for (phase, (sent, _)) in lu.stats.phase_totals() {
        rows_map.entry(routine(&phase)).or_default().0 += sent;
    }
    for (phase, (sent, _)) in ch.stats.phase_totals() {
        rows_map.entry(routine(&phase)).or_default().1 += sent;
    }

    // The symbolic per-step costs from the paper's Table 1.
    let symbolic: &[(&str, &str, &str)] = &[
        (
            "TournPivot / (no pivoting)",
            "v²·⌈log₂√P1⌉",
            "— (Cholesky has no pivoting)",
        ),
        ("A00", "v² + v broadcast", "v² broadcast (potrf)"),
        (
            "A10 and A01 (reduce + trsm)",
            "2(N−tv)vM/N²",
            "2(N−tv)vM/N² (same)",
        ),
        (
            "A11 (scatter + local gemm)",
            "2(N−tv)v/P · gemm",
            "2(N−tv)v/P · gemmt (half flops)",
        ),
    ];

    let mut rows = Vec::new();
    for (name, model_lu, model_ch) in symbolic {
        let (blu, bch) = rows_map.get(name).copied().unwrap_or((0, 0));
        rows.push(vec![
            name.to_string(),
            model_lu.to_string(),
            format!("{blu}"),
            model_ch.to_string(),
            format!("{bch}"),
        ]);
    }
    let flops_ratio = lu_total_flops(n) as f64 / cholesky_total_flops(n) as f64;
    let vol_ratio = lu.stats.total_bytes_sent() as f64 / ch.stats.total_bytes_sent() as f64;
    let text = format!(
        "{}\nN={n}, P={p}, grid=[{},{},{}], v={v}\n\
         total flops LU/Chol = {flops_ratio:.2}x (paper: 2x)\n\
         total volume LU/Chol = {vol_ratio:.2}x (paper: ~1x — same communication class)\n",
        render(
            &[
                "routine",
                "COnfLUX cost/step",
                "COnfLUX bytes",
                "COnfCHOX cost/step",
                "COnfCHOX bytes"
            ],
            &rows
        ),
        grid.px,
        grid.py,
        grid.pz
    );

    Report {
        id: "table1".into(),
        title: "per-routine comparison of COnfLUX and COnfCHOX".into(),
        json: json!({
            "n": n, "p": p, "v": v,
            "grid": [grid.px, grid.py, grid.pz],
            "lu_phase_bytes": lu.stats.phase_totals().iter().map(|(k,(s,_))| (k.clone(), s)).collect::<Vec<_>>(),
            "chol_phase_bytes": ch.stats.phase_totals().iter().map(|(k,(s,_))| (k.clone(), s)).collect::<Vec<_>>(),
            "flops_ratio": flops_ratio,
            "volume_ratio": vol_ratio,
        }),
        text,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table1_regenerates() {
        let r = super::run(128, 8);
        assert!(r.text.contains("TournPivot"));
        let ratio = r.json["flops_ratio"].as_f64().unwrap();
        assert!((ratio - 2.0).abs() < 0.1, "LU must do 2x the flops");
        let vol = r.json["volume_ratio"].as_f64().unwrap();
        assert!(
            vol > 0.5 && vol < 3.0,
            "volumes must be the same class, got {vol}"
        );
    }
}
