//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! * **block size** — the paper's `v = a·PM/N²` tuning knob: volume rises
//!   with `v` (the `O(N·v)` A00-broadcast term) while message count falls
//!   (fewer steps); the sweep exposes the trade-off the default targets.
//! * **replication depth** — `c = Pz` buys a `√c` cut of the scatter
//!   volume and pays `O(N²c/P)` in z-reductions; the sweep shows the
//!   crossover that makes 2.5D pay off only beyond a processor-count
//!   threshold (the paper's §1 observation about CANDMC/CAPITAL).
//! * **pivoting strategy** — tournament + masking vs tournament + swapping
//!   at matched grids (volume per phase).

use crate::experiments::Report;
use crate::machine::Machine;
use crate::runner::Workload;
use crate::table::render;
use factor::conflux::{conflux_lu, ConfluxConfig};
use factor::lu25d_swap::{lu25d_swap, SwapLuConfig};
use serde_json::json;
use xmpi::Grid3;

/// Block-size sweep at a fixed grid.
pub fn block_size(n: usize, grid: Grid3, vs: &[usize]) -> Report {
    let mach = Machine::piz_daint();
    let w = Workload::new(n, 77);
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for &v in vs {
        if !n.is_multiple_of(v) || !v.is_multiple_of(grid.pz) {
            continue;
        }
        let out = conflux_lu(&ConfluxConfig::new(n, v, grid).volume_only(), &w.general)
            .expect("factorization failed");
        let bytes = out.stats.avg_rank_bytes();
        let msgs = out.stats.total_msgs() as f64 / grid.size() as f64;
        let flops = dense::flops::lu_total_flops(n) as f64 / grid.size() as f64;
        let t = mach.rank_time(flops, out.stats.max_rank_bytes() as f64 / 2.0, msgs);
        rows.push(vec![
            format!("{v}"),
            format!("{bytes:.0}"),
            format!("{msgs:.0}"),
            format!("{:.2}", t * 1e3),
        ]);
        data.push(
            json!({ "v": v, "bytes_per_rank": bytes, "msgs_per_rank": msgs, "sim_ms": t * 1e3 }),
        );
    }
    Report {
        id: "ablation_block_size".into(),
        title: format!(
            "COnfLUX block-size sweep, N={n}, grid=[{},{},{}]",
            grid.px, grid.py, grid.pz
        ),
        json: json!({ "sweep": data }),
        text: render(&["v", "bytes/rank", "msgs/rank", "sim ms"], &rows),
    }
}

/// Replication-depth sweep at fixed `P` (same rank count, different `Pz`).
pub fn replication(n: usize, p: usize, grids: &[Grid3]) -> Report {
    let mach = Machine::piz_daint();
    let w = Workload::new(n, 78);
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for &grid in grids {
        assert_eq!(grid.size(), p, "sweep must hold P fixed");
        let v = factor::common::choose_block(n, grid.pz, (4 * grid.pz).max(16))
            .expect("valid block size");
        let out = conflux_lu(&ConfluxConfig::new(n, v, grid).volume_only(), &w.general)
            .expect("factorization failed");
        let bytes = out.stats.avg_rank_bytes();
        let phases = out.stats.phase_totals();
        let scatter = phases.get("scatter_panels").map_or(0, |&(s, _)| s);
        let reduces = phases.get("reduce_col").map_or(0, |&(s, _)| s)
            + phases.get("reduce_pivots").map_or(0, |&(s, _)| s);
        let msgs = out.stats.total_msgs() as f64 / p as f64;
        let flops = dense::flops::lu_total_flops(n) as f64 / p as f64;
        let t = mach.rank_time(flops, out.stats.max_rank_bytes() as f64 / 2.0, msgs);
        rows.push(vec![
            format!("[{},{},{}]", grid.px, grid.py, grid.pz),
            format!("{v}"),
            format!("{bytes:.0}"),
            format!("{scatter}"),
            format!("{reduces}"),
            format!("{:.2}", t * 1e3),
        ]);
        data.push(json!({
            "grid": [grid.px, grid.py, grid.pz], "v": v,
            "bytes_per_rank": bytes, "scatter_bytes_total": scatter,
            "reduce_bytes_total": reduces, "sim_ms": t * 1e3,
        }));
    }
    Report {
        id: "ablation_replication".into(),
        title: format!("COnfLUX replication sweep, N={n}, P={p}"),
        json: json!({ "sweep": data }),
        text: render(
            &[
                "grid",
                "v",
                "bytes/rank",
                "scatter total",
                "reduces total",
                "sim ms",
            ],
            &rows,
        ),
    }
}

/// Masking vs swapping per-phase volume at matched grids.
pub fn pivoting(n: usize, grids: &[Grid3]) -> Report {
    let w = Workload::new(n, 79);
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for &grid in grids {
        let v = factor::common::choose_block(n, grid.pz, (4 * grid.pz).max(16))
            .expect("valid block size");
        let mask = conflux_lu(&ConfluxConfig::new(n, v, grid).volume_only(), &w.general)
            .expect("mask run failed")
            .stats;
        let swap = lu25d_swap(&SwapLuConfig::new(n, v, grid).volume_only(), &w.general)
            .expect("swap run failed")
            .stats;
        let swap_phase = swap.phase_totals().get("row_swaps").map_or(0, |&(s, _)| s);
        rows.push(vec![
            format!("[{},{},{}]", grid.px, grid.py, grid.pz),
            format!("{}", mask.total_bytes_sent()),
            format!("{}", swap.total_bytes_sent()),
            format!("{swap_phase}"),
            format!(
                "{:.2}x",
                swap.total_bytes_sent() as f64 / mask.total_bytes_sent() as f64
            ),
        ]);
        data.push(json!({
            "grid": [grid.px, grid.py, grid.pz],
            "mask_total": mask.total_bytes_sent(),
            "swap_total": swap.total_bytes_sent(),
            "swap_phase_bytes": swap_phase,
        }));
    }
    Report {
        id: "ablation_pivoting".into(),
        title: format!("row masking vs row swapping, N={n}"),
        json: json!({ "sweep": data }),
        text: render(
            &[
                "grid",
                "masking total B",
                "swapping total B",
                "swap-phase B",
                "swap/mask",
            ],
            &rows,
        ),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_size_sweep_shows_volume_up_messages_down() {
        let r = block_size(256, Grid3::new(2, 2, 2), &[8, 32]);
        let s = r.json["sweep"].as_array().unwrap();
        assert_eq!(s.len(), 2);
        let (b8, m8) = (
            s[0]["bytes_per_rank"].as_f64().unwrap(),
            s[0]["msgs_per_rank"].as_f64().unwrap(),
        );
        let (b32, m32) = (
            s[1]["bytes_per_rank"].as_f64().unwrap(),
            s[1]["msgs_per_rank"].as_f64().unwrap(),
        );
        assert!(b8 < b32, "smaller v must move fewer bytes");
        assert!(m8 > m32, "smaller v must send more messages");
    }

    #[test]
    fn swap_phase_grows_with_replication() {
        let r = pivoting(96, &[Grid3::new(2, 2, 1), Grid3::new(2, 2, 4)]);
        let s = r.json["sweep"].as_array().unwrap();
        let sp1 = s[0]["swap_phase_bytes"].as_u64().unwrap();
        let sp4 = s[1]["swap_phase_bytes"].as_u64().unwrap();
        assert!(sp4 > sp1, "swap traffic must grow with c: {sp1} vs {sp4}");
    }
}
