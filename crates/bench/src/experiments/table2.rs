//! Table 2: parallelization strategies and I/O cost models of all compared
//! implementations, with model-vs-measured validation.
//!
//! The paper validates its cost models against Score-P measurements (±3%
//! for MKL/SLATE/COnfLUX/COnfCHOX; the CANDMC/CAPITAL author models
//! overapproximate by 30–40%). We rerun that loop on the simulated machine:
//! every executable schedule is measured over an `(N, P)` grid and compared
//! against its Table 2 model; CANDMC/CAPITAL appear as author-model rows
//! (as in the paper) next to the measured row-swapping ablation.

use crate::experiments::Report;
use crate::machine::Machine;
use crate::runner::{run_algo, used_memory_words, Algo, Workload};
use crate::table::render;
use factor::models::MachineParams;
use serde_json::json;

/// Regenerate Table 2 over a sweep of `(n, p)` points.
pub fn run(points: &[(usize, usize)]) -> Report {
    let mach = Machine::piz_daint();
    let algos = [
        Algo::Conflux,
        Algo::Confchox,
        Algo::TwodLu,
        Algo::TwodChol,
        Algo::SwapLu,
    ];
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for &(n, p) in points {
        let w = Workload::new(n, 1000 + n as u64);
        for algo in algos {
            let m = run_algo(algo, n, p, &w, &mach);
            // Model evaluated at the memory the run actually used.
            let mem = used_memory_words(n, p, m.c);
            let model_words = algo.model_words(MachineParams::with_memory(n, p, mem), m.block);
            // Measured "words transferred per rank": (sent+received)/2 / 8.
            let measured_words = m.bytes_per_rank / 16.0;
            let err = 100.0 * (measured_words - model_words) / model_words;
            rows.push(vec![
                algo.label().to_string(),
                format!("{n}"),
                format!("{p}"),
                format!("{}", m.c),
                format!("{measured_words:.0}"),
                format!("{model_words:.0}"),
                format!("{err:+.0}%"),
            ]);
            data.push(json!({
                "algo": algo.label(), "n": n, "p": p, "c": m.c, "block": m.block,
                "measured_words_per_rank": measured_words,
                "model_words_per_rank": model_words,
                "error_pct": err,
            }));
        }
    }
    let text = format!(
        "{}\nStrategies: COnfLUX/COnfCHOX = 2.5D + tournament pivoting + row masking;\n\
         2D rows = static 2D block-cyclic with partial pivoting (MKL, SLATE);\n\
         swap row = 2.5D with explicit swapping, compared against CANDMC's 5N³/(P√M) author model.\n",
        render(
            &["implementation", "N", "P", "c", "measured w/rank", "model w/rank", "err"],
            &rows
        )
    );
    Report {
        id: "table2".into(),
        title: "I/O cost models vs measured volume per implementation".into(),
        json: json!({ "points": data }),
        text,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn table2_models_track_measurement_within_a_small_factor() {
        let r = super::run(&[(256, 16)]);
        for point in r.json["points"].as_array().unwrap() {
            let algo = point["algo"].as_str().unwrap();
            let meas = point["measured_words_per_rank"].as_f64().unwrap();
            let model = point["model_words_per_rank"].as_f64().unwrap();
            // The CANDMC author-model row intentionally overapproximates the
            // swap ablation (the paper reports 30-40% too); executable
            // schedules must track their models within a small factor at
            // simulation scale (second-order terms are proportionally larger
            // here than at the paper's N).
            let band = if algo.contains("CANDMC") { 8.0 } else { 3.0 };
            let ratio = meas / model;
            assert!(
                ratio < band && ratio > 1.0 / band,
                "{algo}: measured/model = {ratio}"
            );
        }
    }
}
