//! Transport microbenchmark: wall-clock cost of the `xmpi` hot path.
//!
//! The paper's schedules are communication-optimal in *volume*; this report
//! pins what the runtime makes of that in *time*. Three measurements:
//!
//! * **p2p** — ping-pong latency (1 element) and throughput (1 MiB) between
//!   two ranks, the α and 1/β of the transport itself;
//! * **bcast scaling** — wall-clock per broadcast over a (P, message-size)
//!   grid, comparing the zero-copy binomial tree
//!   ([`xmpi::Comm::bcast_buf_f64`]) against a *seed-style linear fan-out*
//!   reference in which the root deep-copies the payload once per
//!   destination, serialized — the schedule the transport shipped with. The
//!   headline cell (a 512×64 panel at P = 16) is the `bcast_speedup` KPI
//!   that `plans/comm.toml` holds a floor under in CI;
//! * **per-phase wall-clock** — the headline cell traced with `xtrace`,
//!   linear and tree broadcast as separate phases, so the speedup is also
//!   visible as makespan attribution rather than a bare stopwatch ratio.
//!
//! Both schedules move identical bytes (`(P−1)·B` per broadcast — the
//! `linear_and_tree_bcast_volumes_match` test pins it), so every speedup
//! below is pure schedule + copy discipline, not traffic reduction.

use crate::experiments::Report;
use crate::provenance::Stamp;
use crate::table::render;
use serde_json::json;
use std::time::Instant;
use xmpi::{Buf, Comm, TraceConfig};

/// Tag namespace for the benchmark's hand-rolled exchanges, clear of the
/// collective tags.
const TAG_BENCH: u64 = 9_000_000;

/// Seed-style linear broadcast: the root sends the full buffer to every
/// other rank in turn — each send deep-copies the payload (slice-based
/// sends copy at the transport boundary), and the fan-out is serialized on
/// the root. This is the reference schedule the tree collective replaced.
pub fn linear_bcast_f64(comm: &Comm, root: usize, buf: &mut Vec<f64>) {
    if comm.rank() == root {
        for dst in 0..comm.size() {
            if dst != root {
                comm.send_f64(dst, TAG_BENCH, buf);
            }
        }
    } else {
        *buf = comm.recv_f64(root, TAG_BENCH);
    }
}

/// Back-to-back operations per timed block — amortizes the block's
/// `Instant` reads and the barrier-exit wakeup skew over a few ops.
const OPS_PER_BLOCK: usize = 4;

/// Wall-clock seconds per operation. Every rank builds its source buffer
/// *before* the timed region (constructing the payload is the caller's
/// cost, not the transport's), runs one untimed warmup, then `reps`
/// barrier-fenced blocks of [`OPS_PER_BLOCK`] calls each. Every rank keeps
/// its *best* block (scheduler preemptions only ever add time, so the
/// minimum is the cleanest estimate on a shared host), and the slowest
/// rank's best is the cost — the collective is not over until its last
/// rank is.
fn time_op<F>(p: usize, elems: usize, reps: usize, op: F) -> f64
where
    F: Fn(&Comm, &Buf<f64>) + Sync,
{
    let out = xmpi::run(p, |c| {
        let src = Buf::from(vec![1.0; elems]);
        op(c, &src); // warmup, excluded from timing
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            c.barrier();
            let t = Instant::now();
            for _ in 0..OPS_PER_BLOCK {
                op(c, &src);
            }
            best = best.min(t.elapsed().as_secs_f64() / OPS_PER_BLOCK as f64);
        }
        c.barrier();
        best
    });
    out.results.into_iter().fold(0.0, f64::max)
}

/// One measured broadcast cell.
struct BcastSample {
    p: usize,
    /// Message size in f64 elements.
    elems: usize,
    linear_us: f64,
    tree_us: f64,
}

impl BcastSample {
    fn speedup(&self) -> f64 {
        self.linear_us / self.tree_us
    }
}

fn measure_bcast(p: usize, elems: usize, reps: usize) -> BcastSample {
    let linear = time_op(p, elems, reps, |c, src| {
        if c.rank() == 0 {
            for dst in 1..c.size() {
                c.send_f64(dst, TAG_BENCH, src);
            }
        } else {
            std::hint::black_box(c.recv_f64(0, TAG_BENCH).len());
        }
    });
    let tree = time_op(p, elems, reps, |c, src| {
        let mine = (c.rank() == 0).then_some(src);
        std::hint::black_box(c.bcast_shared_f64(0, mine).len());
    });
    BcastSample {
        p,
        elems,
        linear_us: linear * 1e6,
        tree_us: tree * 1e6,
    }
}

/// Ping-pong between ranks 0 and 1: seconds per one-way message. The echo
/// sends the received buffer back, so both directions carry a real
/// transport-boundary copy.
fn pingpong_secs(elems: usize, reps: usize) -> f64 {
    let per_roundtrip = time_op(2, elems, reps, |c, src| {
        if c.rank() == 0 {
            c.send_f64(1, TAG_BENCH, src);
            std::hint::black_box(c.recv_f64(1, TAG_BENCH).len());
        } else {
            let got = c.recv_f64(0, TAG_BENCH);
            c.send_f64(0, TAG_BENCH, &got);
        }
    });
    per_roundtrip / 2.0
}

/// Traced run of the headline cell: linear and tree broadcast as separate
/// phases on the same world, so per-phase bytes (identical) and the xtrace
/// makespan/idle attribution land in one artifact.
fn traced_phases(p: usize, elems: usize) -> (f64, f64, u64, u64) {
    let out = xmpi::run_traced(p, &TraceConfig::default(), |c| {
        c.set_phase_with_flops("linear_bcast", 0);
        let mut buf = if c.rank() == 0 {
            vec![1.0; elems]
        } else {
            Vec::new()
        };
        linear_bcast_f64(c, 0, &mut buf);
        c.set_phase_with_flops("tree_bcast", 0);
        let data = if c.rank() == 0 { buf } else { Vec::new() };
        let b = c.bcast_buf_f64(0, data);
        c.set_phase_with_flops("_end", 0);
        std::hint::black_box(b.len());
    });
    let tk = xtrace::trace_kpis(&out.trace);
    let phases = out.stats.phase_totals();
    let linear_bytes = phases.get("linear_bcast").map_or(0, |&(s, _)| s);
    let tree_bytes = phases.get("tree_bcast").map_or(0, |&(s, _)| s);
    (
        tk.makespan_ns as f64 / 1e6,
        tk.idle_frac,
        linear_bytes,
        tree_bytes,
    )
}

/// Run the transport microbenchmark: p2p at `p = 2`, broadcast scaling over
/// `ps × sizes`, best-of-`reps` per cell. `sizes` are message lengths in
/// f64 elements (the headline 512×64 panel is 32768).
pub fn comm(ps: &[usize], sizes: &[usize], reps: usize) -> Report {
    let reps = reps.max(1);

    // --- p2p --------------------------------------------------------------
    let lat_s = pingpong_secs(1, (reps * 40).max(100));
    let big_elems = 1 << 17; // 1 MiB of f64
    let thr_s = pingpong_secs(big_elems, reps.max(5));
    let p2p_latency_us = lat_s * 1e6;
    let p2p_gbps = (big_elems * 8) as f64 / thr_s / 1e9;

    // --- bcast scaling ----------------------------------------------------
    let mut samples = Vec::new();
    for &p in ps {
        for &elems in sizes {
            samples.push(measure_bcast(p, elems, reps));
        }
    }

    // --- traced headline cell ---------------------------------------------
    let (&hp, &helems) = (
        ps.iter().max().unwrap_or(&2),
        sizes.iter().max().unwrap_or(&1024),
    );
    let (makespan_ms, idle_frac, linear_bytes, tree_bytes) = traced_phases(hp, helems);

    // --- render -----------------------------------------------------------
    let headers = vec!["P", "elems", "KiB", "linear µs", "tree µs", "speedup"];
    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.p.to_string(),
                s.elems.to_string(),
                format!("{:.0}", s.elems as f64 * 8.0 / 1024.0),
                format!("{:.1}", s.linear_us),
                format!("{:.1}", s.tree_us),
                format!("{:.2}x", s.speedup()),
            ]
        })
        .collect();
    let mut text = format!(
        "p2p ping-pong: latency {p2p_latency_us:.2} µs/msg, throughput {p2p_gbps:.2} GB/s \
         (1 MiB msgs)\n\nbroadcast wall-clock, slowest rank, best of {reps} reps:\n{}",
        render(&headers, &rows)
    );
    text.push_str(&format!(
        "\ntraced headline cell (P={hp}, {helems} elems): makespan {makespan_ms:.2} ms, \
         idle {:.0}%, per-phase bytes linear={linear_bytes} tree={tree_bytes}\n",
        idle_frac * 100.0
    ));

    Report {
        id: "BENCH_comm".into(),
        title: "transport microbenchmark: zero-copy tree vs seed linear fan-out".into(),
        json: json!({
            "provenance": Stamp::here(None).to_json(),
            "reps": reps,
            "p2p": { "latency_us": p2p_latency_us, "gbps": p2p_gbps },
            "bcast": samples.iter().map(|s| json!({
                "p": s.p, "elems": s.elems,
                "linear_us": s.linear_us, "tree_us": s.tree_us,
                "speedup": s.speedup(),
            })).collect::<Vec<_>>(),
            "traced": {
                "p": hp, "elems": helems,
                "makespan_ms": makespan_ms, "idle_frac": idle_frac,
                "linear_bytes": linear_bytes, "tree_bytes": tree_bytes,
            },
        }),
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_reference_broadcasts_correctly() {
        let out = xmpi::run(5, |c| {
            let mut buf = if c.rank() == 2 {
                vec![3.0, 4.0]
            } else {
                vec![]
            };
            linear_bcast_f64(c, 2, &mut buf);
            buf
        });
        for r in out.results {
            assert_eq!(r, vec![3.0, 4.0]);
        }
    }

    /// The tree schedule must not change traffic: both broadcasts move
    /// exactly (P−1)·B bytes in total — the cross-run stats-equality
    /// guarantee the golden volumes rely on.
    #[test]
    fn linear_and_tree_bcast_volumes_match() {
        let elems = 256;
        let p = 8;
        let linear = xmpi::run(p, |c| {
            let mut buf = if c.rank() == 0 {
                vec![1.0; elems]
            } else {
                vec![]
            };
            linear_bcast_f64(c, 0, &mut buf);
        });
        let tree = xmpi::run(p, |c| {
            let data = if c.rank() == 0 {
                vec![1.0; elems]
            } else {
                vec![]
            };
            c.bcast_buf_f64(0, data);
        });
        let expect = ((p - 1) * elems * 8) as u64;
        assert_eq!(linear.stats.total_bytes_sent(), expect);
        assert_eq!(tree.stats.total_bytes_sent(), expect);
    }

    #[test]
    fn report_covers_the_grid_and_headline_kpis() {
        let r = comm(&[2, 4], &[64, 1024], 1);
        assert_eq!(r.id, "BENCH_comm");
        assert!(r.json["provenance"]["commit"].as_str().is_some());
        assert!(r.json["p2p"]["latency_us"].as_f64().unwrap() > 0.0);
        assert!(r.json["p2p"]["gbps"].as_f64().unwrap() > 0.0);
        let cells = r.json["bcast"].as_array().unwrap();
        assert_eq!(cells.len(), 4);
        assert!(cells.iter().all(
            |c| c["tree_us"].as_f64().unwrap() > 0.0 && c["linear_us"].as_f64().unwrap() > 0.0
        ));
        // Identical per-phase volume in the traced cell.
        assert_eq!(
            r.json["traced"]["linear_bytes"].as_u64(),
            r.json["traced"]["tree_bytes"].as_u64()
        );
    }
}
