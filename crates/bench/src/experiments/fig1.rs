//! Figures 1 and 11: runtime speedup of COnfLUX / COnfCHOX vs the fastest
//! state-of-the-art library, plus achieved % of machine peak — over a
//! `(P, N)` grid.
//!
//! Time-to-solution is the simulated α-β-γ time over *measured* traffic
//! (see `machine.rs`); the second-best library is the better of the 2D
//! schedule (MKL/SLATE stand-in) and the swapping 2.5D schedule
//! (CANDMC/CAPITAL stand-in).

use crate::experiments::Report;
use crate::machine::Machine;
use crate::runner::{run_algo, Algo, Workload};
use crate::table::render;
use serde_json::json;

/// Shared implementation for Fig. 1 (LU) and Fig. 11 (Cholesky).
fn speedup_grid(
    id: &str,
    title: &str,
    ours: Algo,
    baselines: &[(Algo, &str)],
    ns: &[usize],
    ps: &[usize],
) -> Report {
    let mach = Machine::piz_daint();
    let mut rows = Vec::new();
    let mut data = Vec::new();
    for &p in ps {
        for &n in ns {
            if n * n / p < 256 {
                continue;
            }
            let w = Workload::new(n, (n * 31 + p) as u64);
            let us = run_algo(ours, n, p, &w, &mach);
            let mut best_t = f64::INFINITY;
            let mut best = "";
            for &(algo, label) in baselines {
                let m = run_algo(algo, n, p, &w, &mach);
                if m.sim_time < best_t {
                    best_t = m.sim_time;
                    best = label;
                }
            }
            let speedup = best_t / us.sim_time;
            rows.push(vec![
                format!("{p}"),
                format!("{n}"),
                format!("{speedup:.2}x ({best})"),
                format!("{:.1}%", us.pct_peak),
            ]);
            data.push(json!({
                "p": p, "n": n, "speedup": speedup, "best_baseline": best,
                "pct_peak": us.pct_peak, "sim_time": us.sim_time,
            }));
        }
    }
    let text = render(&["P", "N", "speedup vs best baseline", "% of peak"], &rows);
    Report {
        id: id.into(),
        title: title.into(),
        json: json!({ "grid": data }),
        text,
    }
}

/// Fig. 1: COnfLUX speedup + % of peak.
pub fn fig1(ns: &[usize], ps: &[usize]) -> Report {
    speedup_grid(
        "fig1",
        "COnfLUX speedup vs fastest baseline and % of machine peak",
        Algo::Conflux,
        &[(Algo::TwodLu, "M/S"), (Algo::SwapLu, "C")],
        ns,
        ps,
    )
}

/// Fig. 11: COnfCHOX speedup + % of peak. (CAPITAL has no executable proxy
/// beyond the 2D schedule at simulation scale; the paper itself reports
/// SLATE or MKL as second best in every Cholesky cell.)
pub fn fig11(ns: &[usize], ps: &[usize]) -> Report {
    speedup_grid(
        "fig11",
        "COnfCHOX speedup vs fastest baseline and % of machine peak",
        Algo::Confchox,
        &[(Algo::TwodChol, "M/S")],
        ns,
        ps,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn fig1_produces_positive_speedups_and_peaks() {
        let r = super::fig1(&[256], &[16]);
        let g = r.json["grid"].as_array().unwrap();
        assert!(!g.is_empty());
        for cell in g {
            assert!(cell["speedup"].as_f64().unwrap() > 0.3);
            let pk = cell["pct_peak"].as_f64().unwrap();
            assert!(pk > 0.0 && pk <= 100.0);
        }
    }
}
