//! Measured transport α-β: the first *real* wall-clock calibration of the
//! machine model's communication constants.
//!
//! Every performance figure in this repo converts measured traffic to time
//! through the analytic α-β-γ model ([`crate::machine::Machine`]) — until
//! now the α and β in that model were literature constants, never numbers
//! this runtime produced. This experiment measures them, twice:
//!
//! * **local backend** — ranks are threads, delivery is an `Arc` move
//!   through a sharded mailbox. The measured α is the mailbox + wakeup
//!   cost; β is effectively memcpy bandwidth (the transport boundary copy).
//! * **socket backend** — ranks are child processes on a UNIX-domain
//!   socket mesh, every payload framed through the wire codec. The
//!   measured α adds two syscalls and a scheduler hop; β adds
//!   serialize + kernel copy + deserialize.
//!
//! Both backends run the *same* closures through [`xmpi::launch::run`] —
//! the socket measurements are what the conformance suite's bitwise
//! equality makes meaningful (same bytes, same schedule, different clock).
//! The fit is the classic two-point postal model: α from a 1-element
//! ping-pong, β from a large-message ping-pong with the α share removed.
//!
//! The report records the model constants next to the measured ones, so
//! the registry tracks the measured-vs-simulated calibration gap as an
//! ordinary KPI trend (`plans/transport.toml` gates only sanity floors —
//! host-clock numbers on shared CI hardware must not carry tight bounds).

use crate::experiments::Report;
use crate::machine::Machine;
use crate::provenance::Stamp;
use crate::table::render;
use serde_json::json;
use std::time::Instant;
use xmpi::{Buf, Comm};

/// Tag namespace for the benchmark's exchanges, clear of collective tags
/// and of `experiments::comm`'s range.
const TAG_XPORT: u64 = 9_100_000;

/// Back-to-back operations per timed block (amortizes `Instant` reads and
/// barrier-exit wakeup skew).
const OPS_PER_BLOCK: usize = 4;

/// Wall-clock seconds per operation on the *ambient* backend: this is
/// [`crate::experiments::comm::comm`]'s protocol (best barrier-fenced
/// block per rank, slowest rank wins) but launched through
/// [`xmpi::launch::run`], so an armed [`xmpi::Backend::Socket`] runs the
/// same closure across child processes.
fn time_op<F>(p: usize, elems: usize, reps: usize, op: F) -> f64
where
    F: Fn(&Comm, &Buf<f64>) + Sync,
{
    let out = xmpi::launch::run(p, |c| {
        let src = Buf::from(vec![1.0; elems]);
        op(c, &src); // warmup, excluded from timing
        let mut best = f64::INFINITY;
        for _ in 0..reps.max(1) {
            c.barrier();
            let t = Instant::now();
            for _ in 0..OPS_PER_BLOCK {
                op(c, &src);
            }
            best = best.min(t.elapsed().as_secs_f64() / OPS_PER_BLOCK as f64);
        }
        c.barrier();
        best
    });
    out.results.into_iter().fold(0.0, f64::max)
}

/// One-way seconds per message of `elems` f64s (half a ping-pong round
/// trip; the echo carries a real transport-boundary copy in each
/// direction).
fn pingpong_secs(elems: usize, reps: usize) -> f64 {
    let per_roundtrip = time_op(2, elems, reps, |c, src| {
        if c.rank() == 0 {
            c.send_f64(1, TAG_XPORT, src);
            std::hint::black_box(c.recv_f64(1, TAG_XPORT).len());
        } else {
            let got = c.recv_f64(0, TAG_XPORT);
            c.send_f64(0, TAG_XPORT, &got);
        }
    });
    per_roundtrip / 2.0
}

/// Tree-broadcast seconds at `(p, elems)`.
fn bcast_secs(p: usize, elems: usize, reps: usize) -> f64 {
    time_op(p, elems, reps, |c, src| {
        let mine = (c.rank() == 0).then_some(src);
        std::hint::black_box(c.bcast_shared_f64(0, mine).len());
    })
}

/// Measured postal-model constants for one backend.
struct BackendFit {
    label: &'static str,
    /// Per-message latency (µs): the 1-element one-way time.
    alpha_us: f64,
    /// Large-message bandwidth (GB/s) after removing the α share.
    gbps: f64,
    /// One-way µs per probed message size.
    oneway_us: Vec<(usize, f64)>,
    /// Tree-broadcast µs per `(p, elems)` cell.
    bcast_us: Vec<(usize, usize, f64)>,
}

/// Run the full measurement set on whatever backend is ambient when
/// `measure` is called. All world shapes are fixed up front: a socket
/// child replays this exact launch sequence to find its world, so nothing
/// here may branch on a measured value.
fn measure(label: &'static str, ps: &[usize], sizes: &[usize], reps: usize) -> BackendFit {
    let alpha_s = pingpong_secs(1, (reps * 40).max(100));
    let big_elems = (1usize << 17).max(sizes.iter().copied().max().unwrap_or(0));
    let big_s = pingpong_secs(big_elems, reps.max(3));
    let beta_s_per_byte = (big_s - alpha_s).max(f64::EPSILON) / (big_elems * 8) as f64;

    let oneway_us = sizes
        .iter()
        .map(|&elems| (elems, pingpong_secs(elems, reps) * 1e6))
        .collect();
    let mut bcast_us = Vec::new();
    for &p in ps {
        for &elems in sizes {
            bcast_us.push((p, elems, bcast_secs(p, elems, reps) * 1e6));
        }
    }
    BackendFit {
        label,
        alpha_us: alpha_s * 1e6,
        gbps: 1.0 / beta_s_per_byte / 1e9,
        oneway_us,
        bcast_us,
    }
}

/// Run the transport α-β calibration: every measurement on the in-process
/// backend, then the identical sequence on the socket backend (child
/// processes re-execute the current binary — callers must reach this
/// function deterministically from `main`). `sizes` are message lengths in
/// f64 elements; `ps` are broadcast world sizes.
pub fn transport(ps: &[usize], sizes: &[usize], reps: usize) -> Report {
    let reps = reps.max(1);
    let local = measure("local", ps, sizes, reps);
    let socket = xmpi::with_backend(xmpi::launch::socket_backend_reexec(), || {
        measure("socket", ps, sizes, reps)
    });
    let model = Machine::piz_daint();
    let model_alpha_us = model.alpha * 1e6;
    let model_gbps = model.beta / 1e9;

    let headers = vec!["backend", "α µs", "GB/s", "α/model", "GB/s / model"];
    let rows: Vec<Vec<String>> = [&local, &socket]
        .iter()
        .map(|b| {
            vec![
                b.label.to_string(),
                format!("{:.2}", b.alpha_us),
                format!("{:.2}", b.gbps),
                format!("{:.2}x", b.alpha_us / model_alpha_us),
                format!("{:.2}x", b.gbps / model_gbps),
            ]
        })
        .collect();
    let mut text = format!(
        "measured postal model vs the simulated machine (α {model_alpha_us:.1} µs, \
         β {model_gbps:.1} GB/s):\n{}",
        render(&headers, &rows)
    );
    text.push_str("\none-way µs per message size:\n");
    let headers = vec!["elems", "KiB", "local µs", "socket µs", "socket/local"];
    let rows: Vec<Vec<String>> = local
        .oneway_us
        .iter()
        .zip(&socket.oneway_us)
        .map(|(&(elems, l_us), &(_, s_us))| {
            vec![
                elems.to_string(),
                format!("{:.0}", elems as f64 * 8.0 / 1024.0),
                format!("{l_us:.1}"),
                format!("{s_us:.1}"),
                format!("{:.2}x", s_us / l_us),
            ]
        })
        .collect();
    text.push_str(&render(&headers, &rows));

    let backend_json = |b: &BackendFit| {
        json!({
            "backend": b.label,
            "alpha_us": b.alpha_us,
            "gbps": b.gbps,
            "oneway": b.oneway_us.iter().map(|&(elems, us)| json!({
                "elems": elems, "us": us,
            })).collect::<Vec<_>>(),
            "bcast": b.bcast_us.iter().map(|&(p, elems, us)| json!({
                "p": p, "elems": elems, "us": us,
            })).collect::<Vec<_>>(),
        })
    };
    Report {
        id: "BENCH_transport".into(),
        title: "measured transport α-β: in-process vs socket backend, vs the simulated model"
            .into(),
        json: json!({
            "provenance": Stamp::here(None).to_json(),
            "reps": reps,
            "model": { "alpha_us": model_alpha_us, "gbps": model_gbps },
            "backends": [backend_json(&local), backend_json(&socket)],
        }),
        text,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The in-process half of the report (the socket half re-executes the
    /// current binary, which inside libtest would re-run the whole test
    /// process — the socket path is covered by `tests/transport_plan.rs`
    /// driving the real `ablations` binary).
    #[test]
    fn local_measurement_produces_a_sane_fit() {
        let fit = measure("local", &[2], &[64], 1);
        assert!(fit.alpha_us > 0.0);
        assert!(fit.gbps > 0.0);
        assert_eq!(fit.oneway_us.len(), 1);
        assert_eq!(fit.bcast_us.len(), 1);
        assert!(fit.bcast_us[0].2 > 0.0);
    }
}
