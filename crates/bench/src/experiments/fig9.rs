//! Figures 9 and 10: achieved % of machine peak for LU (9) and Cholesky
//! (10) — strong scaling at two fixed matrix sizes plus a weak-scaling
//! series (constant `N²/P` per rank), for every implementation.

use crate::experiments::Report;
use crate::machine::Machine;
use crate::runner::{run_algo, Algo, Workload};
use crate::table::render;
use serde_json::json;

fn perf_series(
    id: &str,
    title: &str,
    algos: &[(Algo, &str)],
    strong_ns: &[usize],
    ps: &[usize],
    weak_elems_per_rank: usize,
) -> Report {
    let mach = Machine::piz_daint();
    let mut sections = String::new();
    let mut data = Vec::new();

    // Strong scaling panels (a), (b).
    for &n in strong_ns {
        let mut rows = Vec::new();
        for &p in ps {
            if n * n / p < 64 {
                continue;
            }
            let w = Workload::new(n, (n + 13 * p) as u64);
            let mut row = vec![format!("{p}")];
            for &(algo, label) in algos {
                let m = run_algo(algo, n, p, &w, &mach);
                row.push(format!("{:.1}%", m.pct_peak));
                data.push(json!({
                    "mode": "strong", "n": n, "p": p, "algo": label, "pct_peak": m.pct_peak,
                }));
            }
            rows.push(row);
        }
        let mut headers = vec!["P"];
        headers.extend(algos.iter().map(|&(_, l)| l));
        sections.push_str(&format!(
            "strong scaling, N={n}:\n{}\n",
            render(&headers, &rows)
        ));
    }

    // Weak scaling panel (c): N = √(elems_per_rank · P).
    let mut rows = Vec::new();
    for &p in ps {
        let n_raw = ((weak_elems_per_rank * p) as f64).sqrt() as usize;
        let n = (n_raw / 64).max(1) * 64;
        let w = Workload::new(n, (n + 17 * p) as u64);
        let mut row = vec![format!("{p}"), format!("{n}")];
        for &(algo, label) in algos {
            let m = run_algo(algo, n, p, &w, &mach);
            row.push(format!("{:.1}%", m.pct_peak));
            data.push(json!({
                "mode": "weak", "n": n, "p": p, "algo": label, "pct_peak": m.pct_peak,
            }));
        }
        rows.push(row);
    }
    let mut headers = vec!["P", "N"];
    headers.extend(algos.iter().map(|&(_, l)| l));
    sections.push_str(&format!(
        "weak scaling, N²/P = {weak_elems_per_rank} elements per rank:\n{}",
        render(&headers, &rows)
    ));

    Report {
        id: id.into(),
        title: title.into(),
        json: json!({ "series": data }),
        text: sections,
    }
}

/// Fig. 9: % of peak for LU.
pub fn fig9(ps: &[usize]) -> Report {
    perf_series(
        "fig9",
        "% of machine peak, LU factorization (strong + weak scaling)",
        &[
            (Algo::Conflux, "COnfLUX"),
            (Algo::TwodLu, "MKL/SLATE 2D"),
            (Algo::SwapLu, "CANDMC-like"),
        ],
        &[512, 1024],
        ps,
        16384,
    )
}

/// Fig. 10: % of peak for Cholesky.
pub fn fig10(ps: &[usize]) -> Report {
    perf_series(
        "fig10",
        "% of machine peak, Cholesky factorization (strong + weak scaling)",
        &[
            (Algo::Confchox, "COnfCHOX"),
            (Algo::TwodChol, "MKL/SLATE 2D"),
        ],
        &[512, 1024],
        ps,
        16384,
    )
}

#[cfg(test)]
mod tests {
    #[test]
    fn strong_scaling_peaks_decrease_with_p() {
        // Fixed N: more ranks → less work each → latency/volume overheads
        // grow relative to compute → % of peak falls (the paper's panels
        // show exactly this decay).
        let r = super::fig9(&[4, 16]);
        let series = r.json["series"].as_array().unwrap();
        let peak_at = |p: u64| -> f64 {
            series
                .iter()
                .find(|s| {
                    s["mode"] == "strong"
                        && s["p"].as_u64() == Some(p)
                        && s["n"].as_u64() == Some(1024)
                        && s["algo"] == "COnfLUX"
                })
                .unwrap()["pct_peak"]
                .as_f64()
                .unwrap()
        };
        assert!(peak_at(4) > peak_at(16), "strong scaling must decay");
    }
}
