//! Run one factorization algorithm at one configuration and collect a
//! measurement record.

use crate::machine::Machine;
use dense::flops::{cholesky_total_flops, lu_total_flops};
use dense::gen::{random_matrix, random_spd};
use dense::Matrix;
use factor::confchox::ConfchoxConfig;
use factor::conflux::ConfluxConfig;
use factor::lu25d_swap::{lu25d_swap, SwapLuConfig};
use factor::models::{self, MachineParams};
use factor::twod::TwodConfig;
use factor::{confchox_cholesky, conflux_lu, twod_cholesky, twod_lu};
use serde::Serialize;
use xmpi::{Grid2, Grid3, WorldStats};

/// Algorithms the harness can run or model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
#[allow(missing_docs)]
pub enum Algo {
    /// COnfLUX (2.5D LU, tournament pivoting + row masking).
    Conflux,
    /// COnfCHOX (2.5D Cholesky).
    Confchox,
    /// 2D partial-pivoting LU — MKL / SLATE stand-in.
    TwodLu,
    /// 2D Cholesky — MKL / SLATE stand-in.
    TwodChol,
    /// 2.5D LU with explicit row swapping — CANDMC-style ablation.
    SwapLu,
}

impl Algo {
    /// Display name, with the library the paper compares it to.
    pub fn label(self) -> &'static str {
        match self {
            Algo::Conflux => "COnfLUX",
            Algo::Confchox => "COnfCHOX",
            Algo::TwodLu => "2D LU (MKL/SLATE)",
            Algo::TwodChol => "2D Chol (MKL/SLATE)",
            Algo::SwapLu => "2.5D LU swap (CANDMC-like)",
        }
    }

    /// Total flops of the factorization this algorithm performs.
    pub fn total_flops(self, n: usize) -> f64 {
        match self {
            Algo::Conflux | Algo::TwodLu | Algo::SwapLu => lu_total_flops(n) as f64,
            Algo::Confchox | Algo::TwodChol => cholesky_total_flops(n) as f64,
        }
    }

    /// The Table 2 model for this algorithm (words per rank).
    pub fn model_words(self, mp: MachineParams, nb: usize) -> f64 {
        match self {
            Algo::Conflux => models::conflux_model(mp),
            Algo::Confchox => models::confchox_model(mp),
            Algo::TwodLu => models::twod_lu_model(mp, nb),
            Algo::TwodChol => models::twod_cholesky_model(mp, nb),
            Algo::SwapLu => models::candmc_model(mp),
        }
    }
}

/// One measured (or simulated-time) data point.
#[derive(Debug, Clone, Serialize)]
pub struct Measurement {
    /// Algorithm.
    pub algo: Algo,
    /// Matrix dimension.
    pub n: usize,
    /// Rank count.
    pub p: usize,
    /// Block size used.
    pub block: usize,
    /// Replication depth (1 for 2D schedules).
    pub c: usize,
    /// Mean bytes (sent+received) per rank.
    pub bytes_per_rank: f64,
    /// Maximum bytes (sent+received) over ranks.
    pub bytes_max_rank: f64,
    /// Mean messages sent per rank.
    pub msgs_per_rank: f64,
    /// Simulated time-to-solution (s) under [`Machine`].
    pub sim_time: f64,
    /// Percent of machine peak at that simulated time.
    pub pct_peak: f64,
}

fn measurement(
    algo: Algo,
    n: usize,
    p: usize,
    block: usize,
    c: usize,
    stats: &WorldStats,
    mach: &Machine,
) -> Measurement {
    let bytes_max = stats.max_rank_bytes() as f64;
    let msgs = stats.total_msgs() as f64 / p as f64;
    let flops_rank = algo.total_flops(n) / p as f64;
    let t = mach.rank_time(flops_rank, bytes_max / 2.0, msgs);
    Measurement {
        algo,
        n,
        p,
        block,
        c,
        bytes_per_rank: stats.avg_rank_bytes(),
        bytes_max_rank: bytes_max,
        msgs_per_rank: msgs,
        sim_time: t,
        pct_peak: mach.pct_peak(algo.total_flops(n), p, t),
    }
}

/// Inputs reused across algorithms for one `(n, seed)` workload.
pub struct Workload {
    /// General matrix for LU.
    pub general: Matrix,
    /// SPD matrix for Cholesky.
    pub spd: Matrix,
}

impl Workload {
    /// Deterministic workload for dimension `n`.
    pub fn new(n: usize, seed: u64) -> Self {
        Workload {
            general: random_matrix(n, n, seed),
            spd: random_spd(n, seed + 1),
        }
    }
}

/// Run `algo` at `(n, p)` with automatic grid/block selection and measure.
///
/// # Panics
/// If the factorization fails (workloads are generated non-singular).
pub fn run_algo(algo: Algo, n: usize, p: usize, w: &Workload, mach: &Machine) -> Measurement {
    match algo {
        Algo::Conflux => {
            let cfg = ConfluxConfig::auto(n, p).volume_only();
            let out = conflux_lu(&cfg, &w.general).expect("conflux failed");
            measurement(algo, n, p, cfg.v, cfg.grid.pz, &out.stats, mach)
        }
        Algo::Confchox => {
            let cfg = ConfchoxConfig::auto(n, p).volume_only();
            let out = confchox_cholesky(&cfg, &w.spd).expect("confchox failed");
            measurement(algo, n, p, cfg.v, cfg.grid.pz, &out.stats, mach)
        }
        Algo::TwodLu => {
            let cfg = TwodConfig::auto(n, p).volume_only();
            let out = twod_lu(&cfg, &w.general).expect("2d lu failed");
            measurement(algo, n, p, cfg.nb, 1, &out.stats, mach)
        }
        Algo::TwodChol => {
            let cfg = TwodConfig::auto(n, p).volume_only();
            let out = twod_cholesky(&cfg, &w.spd).expect("2d chol failed");
            measurement(algo, n, p, cfg.nb, 1, &out.stats, mach)
        }
        Algo::SwapLu => {
            let auto = ConfluxConfig::auto(n, p);
            let cfg = SwapLuConfig::new(n, auto.v, auto.grid).volume_only();
            let out = lu25d_swap(&cfg, &w.general).expect("swap lu failed");
            measurement(algo, n, p, cfg.v, cfg.grid.pz, &out.stats, mach)
        }
    }
}

/// Explicit-grid variants used by experiments that sweep decompositions.
pub fn run_conflux_grid(
    n: usize,
    v: usize,
    grid: Grid3,
    w: &Workload,
    mach: &Machine,
) -> Measurement {
    let cfg = ConfluxConfig::new(n, v, grid).volume_only();
    let out = conflux_lu(&cfg, &w.general).expect("conflux failed");
    measurement(Algo::Conflux, n, grid.size(), v, grid.pz, &out.stats, mach)
}

/// 2D LU at an explicit grid and block size.
pub fn run_twod_lu_grid(
    n: usize,
    nb: usize,
    grid: Grid2,
    w: &Workload,
    mach: &Machine,
) -> Measurement {
    let cfg = TwodConfig::new(n, nb, grid).volume_only();
    let out = twod_lu(&cfg, &w.general).expect("2d lu failed");
    measurement(Algo::TwodLu, n, grid.size(), nb, 1, &out.stats, mach)
}

/// Memory-per-rank convention for model evaluation at a measured point:
/// the replication the run actually used, `M = c·N²/P`.
pub fn used_memory_words(n: usize, p: usize, c: usize) -> f64 {
    (c as f64) * (n as f64) * (n as f64) / p as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_each_algo_smoke() {
        let mach = Machine::piz_daint();
        let w = Workload::new(32, 7);
        for algo in [
            Algo::Conflux,
            Algo::Confchox,
            Algo::TwodLu,
            Algo::TwodChol,
            Algo::SwapLu,
        ] {
            let m = run_algo(algo, 32, 4, &w, &mach);
            assert!(m.sim_time > 0.0, "{algo:?}");
            assert!(
                m.pct_peak > 0.0 && m.pct_peak <= 100.0,
                "{algo:?}: {}",
                m.pct_peak
            );
            if m.p > 1 {
                assert!(m.bytes_per_rank > 0.0, "{algo:?}");
            }
        }
    }

    #[test]
    fn measurement_serializes() {
        let mach = Machine::piz_daint();
        let w = Workload::new(16, 3);
        let m = run_algo(Algo::Conflux, 16, 2, &w, &mach);
        let s = serde_json::to_string(&m).unwrap();
        assert!(s.contains("\"Conflux\""));
    }
}
