//! Unified provenance stamping for every measurement artifact the harness
//! writes (`registry/ablations.*`, `BENCH_kernels.json`,
//! `BENCH_recovery.json`, `trace_report --kpi` records).
//!
//! A performance number with no record of *which code, which machine, when,
//! under which plan* produced it is unverifiable drift the moment the next
//! commit lands. Every writer therefore emits the same four-field header
//! built here: git commit, machine fingerprint, ISO-8601 UTC timestamp, and
//! (for plan-driven runs) the plan hash.

use serde_json::{json, Value};
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

/// The shared provenance header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Stamp {
    /// Git `HEAD` of the producing checkout (`"unknown"` outside git).
    pub commit: String,
    /// Machine fingerprint, e.g. `linux-x86_64-c8-buildhost`.
    pub machine: String,
    /// ISO-8601 UTC timestamp, second resolution.
    pub timestamp: String,
    /// Seconds since the UNIX epoch (the sortable form of `timestamp`).
    pub unix_secs: u64,
    /// Hash of the plan that drove the run, when one did.
    pub plan_hash: Option<String>,
}

impl Stamp {
    /// Stamp for a run happening right now on this machine.
    pub fn here(plan_hash: Option<String>) -> Stamp {
        let unix_secs = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        Stamp {
            commit: git_head(),
            machine: machine_fingerprint(),
            timestamp: iso_timestamp(unix_secs),
            unix_secs,
            plan_hash,
        }
    }

    /// The header object embedded in every JSON artifact.
    pub fn to_json(&self) -> Value {
        json!({
            "commit": self.commit,
            "machine": self.machine,
            "timestamp": self.timestamp,
            "unix_secs": self.unix_secs,
            "plan_hash": match &self.plan_hash {
                Some(h) => json!(h),
                None => Value::Null,
            },
        })
    }
}

/// Current git `HEAD`, or `"unknown"` outside a checkout.
pub fn git_head() -> String {
    Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string())
}

/// `{os}-{arch}-c{cpus}-{hostname}`, commas/whitespace sanitized so the
/// fingerprint is safe inside a CSV cell.
///
/// Delegates to [`dense::tuning::machine_fingerprint`], which owns the
/// definition: the *same* string keys both the ablation registry rows and
/// the kernel tuning registry (`registry/tuning.json`), so a machine's
/// tuned config and its KPI trajectory can always be joined.
pub fn machine_fingerprint() -> String {
    dense::tuning::machine_fingerprint()
}

/// 64-bit FNV-1a as a 16-hex-digit string — the stable content hash used
/// for plan identity. Not cryptographic; collision resistance at the scale
/// of "plans in one repository" is all that is required.
pub fn fnv1a_hex(bytes: &[u8]) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Seconds-since-epoch → `YYYY-MM-DDThh:mm:ssZ` (proleptic Gregorian,
/// Hinnant's `civil_from_days`). Hand-rolled because the build environment
/// has no date-time crate.
pub fn iso_timestamp(unix_secs: u64) -> String {
    let days = (unix_secs / 86_400) as i64;
    let secs = unix_secs % 86_400;
    let (y, m, d) = civil_from_days(days);
    format!(
        "{y:04}-{m:02}-{d:02}T{:02}:{:02}:{:02}Z",
        secs / 3600,
        (secs / 60) % 60,
        secs % 60
    )
}

fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097); // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iso_timestamps_hit_known_instants() {
        assert_eq!(iso_timestamp(0), "1970-01-01T00:00:00Z");
        assert_eq!(iso_timestamp(951_782_400), "2000-02-29T00:00:00Z");
        assert_eq!(iso_timestamp(1_700_000_000), "2023-11-14T22:13:20Z");
        assert_eq!(iso_timestamp(4_102_444_799), "2099-12-31T23:59:59Z");
    }

    #[test]
    fn fnv_is_stable_and_input_sensitive() {
        assert_eq!(fnv1a_hex(b""), "cbf29ce484222325");
        assert_eq!(fnv1a_hex(b"a"), fnv1a_hex(b"a"));
        assert_ne!(fnv1a_hex(b"a"), fnv1a_hex(b"b"));
    }

    #[test]
    fn fingerprint_is_csv_safe() {
        let f = machine_fingerprint();
        assert!(!f.contains(','), "{f}");
        assert!(!f.contains(char::is_whitespace), "{f}");
        assert!(f.starts_with(std::env::consts::OS));
    }

    #[test]
    fn stamp_serializes_with_all_fields() {
        let s = Stamp::here(Some("abc123".into()));
        let v = s.to_json();
        assert_eq!(v["plan_hash"].as_str(), Some("abc123"));
        assert!(v["timestamp"].as_str().unwrap().ends_with('Z'));
        assert!(!v["commit"].as_str().unwrap().is_empty());
    }
}
