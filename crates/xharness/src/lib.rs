//! `xharness` — deterministic schedule-perturbation and fault-injection
//! testing for the simulated runtime.
//!
//! **Paper map** (Kwasniewski et al., SC'21): the paper's volume claims —
//! `2N³/(3P√M)` for COnfLUX, `N³/(3P√M)` for COnfCHOX — are *exact byte
//! counts*, measured here by `xmpi`. But a schedule can match the count
//! under the one thread interleaving a test run happens to see and still
//! harbor ordering bugs (tournament pivoting and lookahead overlap are the
//! sensitive spots; see Tang's reexamination of COnfLUX, arXiv:2404.06713).
//! This crate makes the interleaving adversarial *and reproducible*:
//!
//! * [`Perturbator`] implements [`xmpi::SchedHooks`], injecting in-flight
//!   message delays, dropped-then-retransmitted first transmissions,
//!   receive/wait-completion stalls, and phase-boundary rank skews — every
//!   decision a pure function of one `u64` seed and the decision's channel
//!   identity, so a failing seed replays its exact fault pattern
//!   ([`perturb`] documents the determinism model);
//! * [`run_perturbed`] / [`run_perturbed_traced`] wrap an unmodified driver
//!   (anything that calls [`xmpi::run`] internally) in a seeded
//!   perturbation, optionally recording the event trace for the
//!   [`xtrace::invariants`] checkers;
//! * [`golden`] pins per-rank/per-phase byte counts to committed golden
//!   JSON, so traffic changes are explicit diffs, never silent drift;
//! * [`seeds`] reads the `XHARNESS_SEEDS` environment variable so CI can
//!   widen the sweep and a developer can replay one failing seed.
//!
//! The conformance contract a perturbed run must uphold (asserted by
//! `crates/factor/tests/conformance.rs`): bitwise-identical factors,
//! bitwise-identical per-rank and per-phase byte counts, clean runtime
//! invariants, and residuals/volumes within the paper's bounds.

#![warn(missing_docs)]

pub mod golden;
pub mod netchaos;
pub mod perturb;
pub mod rng;

pub use golden::{check_golden, golden_mode, snapshot, GoldenMode};
pub use netchaos::{ChaosMode, ConnectPlan, HangPlan, NetChaos, NetChaosConfig, ResetPlan};
pub use perturb::{CorruptPlan, CrashPlan, PerturbConfig, Perturbator};

use std::sync::Arc;
use xmpi::trace::{capture, TraceConfig, WorldTrace};

/// Run `f` with a seeded [`Perturbator`] armed on this thread: every world
/// `f` launches (directly or deep inside a factorization driver) has the
/// perturbation hooks installed. Results must be bitwise-independent of the
/// seed — that is the property the conformance suite exists to check.
pub fn run_perturbed<R>(cfg: &PerturbConfig, f: impl FnOnce() -> R) -> R {
    xmpi::with_hooks(Arc::new(Perturbator::new(cfg.clone())), f)
}

/// [`run_perturbed`] with a caller-built perturbator — the entry point for
/// fault-injection runs, where the instance matters: its one-shot crash and
/// corruption latches span every world `f` launches, so a fault-tolerant
/// driver that crashes one world and restarts another gets exactly one
/// injected fault across the whole attempt sequence.
///
/// # Replaying a failing crash seed locally
///
/// The `faults` CI job prints the failing seed; replay it by pinning the
/// seed and re-arming the same crash preset:
///
/// ```
/// use std::sync::Arc;
/// use xharness::{CrashPlan, PerturbConfig, Perturbator, run_armed};
///
/// let seed = 17; // the failing seed from CI / results/faults_failure.json
/// let p = 4; // world size of the failing test
/// // The crash preset: the seed derives a non-root victim and the send
/// // index it dies at (the conformance suite uses the same construction,
/// // so the kill replays exactly — same victim, same logical instant).
/// let plan = CrashPlan::from_seed(seed, p, 8);
/// let perturbator =
///     Arc::new(Perturbator::new(PerturbConfig::new(seed)).with_crash(plan));
/// let out = run_armed(&perturbator, || {
///     xmpi::run_ft(p, |c| {
///         // ... the failing driver; `factor::conflux_lu_ft` in the real
///         // test. Here: everyone streams ten messages to the root.
///         if c.rank() > 0 {
///             for i in 0..10 {
///                 c.send_f64(0, i, &[c.rank() as f64]);
///             }
///         } else {
///             for src in 1..c.size() {
///                 for i in 0..10 {
///                     if c.try_recv_f64(src, i).is_err() {
///                         break;
///                     }
///                 }
///             }
///         }
///     })
/// });
/// assert_eq!(out.crashed, vec![plan.victim]);
/// assert!(perturbator.crash_fired());
/// ```
pub fn run_armed<R>(perturbator: &Arc<Perturbator>, f: impl FnOnce() -> R) -> R {
    xmpi::with_hooks(perturbator.clone(), f)
}

/// Run `f` with a seeded [`NetChaos`] plan armed on this thread: every
/// world `f` launches has wire-level fault injection installed — torn
/// frames, one-shot connection resets and silent hangs, refused and
/// delayed mesh dials (see [`netchaos`] for the determinism model). Like
/// [`run_armed`], the caller keeps the `Arc` so one-shot latches span a
/// fault-tolerant driver's whole restart sequence and the test can assert
/// `chaos.reset_fired()` / `chaos.hang_fired()` afterwards.
pub fn run_chaos<R>(chaos: &Arc<NetChaos>, f: impl FnOnce() -> R) -> R {
    xmpi::with_net_faults(chaos.clone(), f)
}

/// [`run_perturbed`] with event tracing: returns `f`'s result plus one
/// [`WorldTrace`] per world launched, ready for
/// [`xtrace::invariants::check_trace`]. This is the composition the
/// negative tests rely on — inject faults *and* watch the runtime contract.
pub fn run_perturbed_traced<R>(
    cfg: &PerturbConfig,
    tc: TraceConfig,
    f: impl FnOnce() -> R,
) -> (R, Vec<WorldTrace>) {
    capture(tc, || run_perturbed(cfg, f))
}

/// The perturbation-seed matrix, from the `XHARNESS_SEEDS` environment
/// variable:
///
/// * unset/empty — `0..default_count` (the tier-1 quick sweep);
/// * a number `N` — seeds `0..N` (CI's stress job sets `32`);
/// * a comma-separated list `17,3` — exactly those seeds (replaying a
///   failure).
///
/// # Panics
/// If the variable is set but unparseable — a typo'd replay must not
/// silently fall back to the default sweep.
pub fn seeds(default_count: u64) -> Vec<u64> {
    match std::env::var("XHARNESS_SEEDS") {
        Err(_) => (0..default_count).collect(),
        Ok(s) if s.trim().is_empty() => (0..default_count).collect(),
        Ok(s) => parse_seeds(&s).unwrap_or_else(|| {
            panic!("XHARNESS_SEEDS={s:?} is neither a count nor a comma-separated seed list")
        }),
    }
}

/// Expand a *plan-declared* seed-axis spec into concrete seeds — the bridge
/// between the `XHARNESS_SEEDS` seed-matrix convention and the declarative
/// `AblationPlan` axes of the experiments engine (`bench ablate`):
///
/// * `"env"` — defer to the `XHARNESS_SEEDS` environment variable exactly
///   as [`seeds`] does (so one nightly-CI variable widens every plan);
/// * `"N"` — seeds `0..N`;
/// * `"a,b,…"` / `"list:a,b,…"` — exactly those seeds.
///
/// Returns `None` when the spec parses as none of the above; callers should
/// surface that as a plan error, not fall back silently.
pub fn seed_axis(spec: &str, default_count: u64) -> Option<Vec<u64>> {
    if spec.trim() == "env" {
        Some(seeds(default_count))
    } else {
        parse_seeds(spec)
    }
}

fn parse_seeds(s: &str) -> Option<Vec<u64>> {
    let s = s.trim();
    if let Some(list) = s.strip_prefix("list:") {
        // Explicit list form, unambiguous even for a single seed.
        return list.split(',').map(|t| t.trim().parse().ok()).collect();
    }
    if s.contains(',') {
        return s.split(',').map(|t| t.trim().parse().ok()).collect();
    }
    s.parse::<u64>().ok().map(|n| (0..n).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use xtrace::invariants::{check_stats_equal, check_trace};

    /// The driver every integration test perturbs: a little SPMD program
    /// exercising p2p, nonblocking requests, collectives, and phases.
    fn driver(p: usize) -> (Vec<f64>, xmpi::WorldStats) {
        let out = xmpi::run(p, |c| {
            c.set_phase("exchange");
            let right = (c.rank() + 1) % c.size();
            let left = (c.rank() + c.size() - 1) % c.size();
            let req = c.irecv(left, 1);
            c.send_f64(right, 1, &[c.rank() as f64 + 0.5]);
            let got = req.wait_f64();
            c.set_phase("reduce");
            let mut v = vec![got[0]];
            c.allreduce_sum(&mut v);
            c.barrier();
            v[0]
        });
        (out.results, out.stats)
    }

    /// Perturbed runs must be bitwise result- and volume-identical to the
    /// unperturbed baseline, for every seed.
    #[test]
    fn perturbation_changes_nothing_observable() {
        let (base_results, base_stats) = driver(4);
        for seed in 0..6 {
            let cfg = PerturbConfig::aggressive(seed);
            let (results, stats) = run_perturbed(&cfg, || driver(4));
            assert_eq!(
                results.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                base_results.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                "seed {seed} changed results"
            );
            let drift = check_stats_equal(&base_stats, &stats);
            assert!(drift.is_empty(), "seed {seed} drifted: {drift:?}");
        }
    }

    /// A perturbed *and traced* run must uphold the runtime invariants —
    /// faults shift the schedule, never the contract.
    #[test]
    fn perturbed_traces_satisfy_invariants() {
        for seed in [0, 13] {
            let cfg = PerturbConfig::aggressive(seed);
            let (_, traces) =
                run_perturbed_traced(&cfg, xmpi::TraceConfig::default(), || driver(4));
            assert_eq!(traces.len(), 1);
            let report = check_trace(&traces[0]);
            report.assert_clean();
        }
    }

    /// Dropped-then-retransmitted messages must still arrive in channel
    /// order under a retry-tolerant wait policy.
    #[test]
    fn drops_preserve_channel_fifo() {
        let mut cfg = PerturbConfig::aggressive(42);
        cfg.drop_prob = 0.5; // every other message loses its first transmission
        let out = run_perturbed(&cfg, || {
            xmpi::run(2, |c| {
                if c.rank() == 0 {
                    for i in 0..16 {
                        c.send_f64(1, 3, &[i as f64]);
                    }
                    vec![]
                } else {
                    (0..16).map(|_| c.recv_f64(0, 3)[0]).collect()
                }
            })
        });
        let expect: Vec<f64> = (0..16).map(|i| i as f64).collect();
        assert_eq!(out.results[1], expect);
    }

    #[test]
    fn seed_list_parsing() {
        assert_eq!(parse_seeds("4"), Some(vec![0, 1, 2, 3]));
        assert_eq!(parse_seeds("17,3"), Some(vec![17, 3]));
        assert_eq!(parse_seeds("list:9"), Some(vec![9]));
        assert_eq!(parse_seeds(" 1 , 2 "), Some(vec![1, 2]));
        assert_eq!(parse_seeds("banana"), None);
    }

    #[test]
    fn seed_axis_specs_expand() {
        assert_eq!(seed_axis("3", 8), Some(vec![0, 1, 2]));
        assert_eq!(seed_axis("list:5,7", 8), Some(vec![5, 7]));
        assert_eq!(seed_axis("kiwi", 8), None);
        // "env" defers to XHARNESS_SEEDS; when unset in the test harness it
        // is the 0..default sweep. (The variable is not set by cargo test.)
        if std::env::var("XHARNESS_SEEDS").is_err() {
            assert_eq!(seed_axis("env", 2), Some(vec![0, 1]));
        }
    }
}
