//! Golden-volume regression support.
//!
//! The paper's claims are exact per-rank byte counts, so the conformance
//! suite pins the measured traffic of fixed `(N, P, M)` runs to committed
//! golden values: any schedule change that alters traffic — an extra
//! broadcast, a widened panel, a collective swapped for another algorithm —
//! fails the diff explicitly instead of silently shifting the measured
//! curves. Golden files are blessed by rerunning with `GOLDEN_BLESS=1`,
//! which rewrites the entry and leaves the diff to code review.
//!
//! The serialized snapshot keeps per-rank totals *and* the per-phase
//! breakdown, so a regression names the phase that drifted (e.g.
//! `update_a11` grew on layer-0 ranks) rather than just the total.

use std::fs;
use std::path::Path;
use xmpi::WorldStats;

/// How [`check_golden`] treats a mismatch or missing entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GoldenMode {
    /// Compare; mismatches and missing entries are errors.
    Check,
    /// Rewrite the entry with the measured values (then still return `Ok`).
    Bless,
}

/// Read the blessing switch: `GOLDEN_BLESS=1` in the environment selects
/// [`GoldenMode::Bless`].
///
/// A socket-backend child rank never blesses, whatever the environment
/// says: children inherit the parent's variables while replaying the test
/// body, and p concurrent processes rewriting the same golden file would
/// race (and a child's replayed worlds are not the measured run anyway).
pub fn golden_mode() -> GoldenMode {
    if xmpi::launch::is_child() {
        return GoldenMode::Check;
    }
    match std::env::var("GOLDEN_BLESS") {
        Ok(v) if v == "1" || v.eq_ignore_ascii_case("true") => GoldenMode::Bless,
        _ => GoldenMode::Check,
    }
}

/// Serialize a world's traffic into a canonical JSON value: per-rank
/// `{sent, recv, phases}` with phase keys sorted, so equal stats always
/// produce byte-identical JSON (the file diff in CI is meaningful).
pub fn snapshot(stats: &WorldStats) -> serde_json::Value {
    use serde_json::Value;
    let ranks: Vec<Value> = stats
        .ranks
        .iter()
        .map(|r| {
            let mut phases: Vec<(&String, &(u64, u64))> = r.per_phase.iter().collect();
            phases.sort_by_key(|(name, _)| name.as_str());
            let phase_obj: Vec<(String, Value)> = phases
                .into_iter()
                .map(|(name, &(s, v))| {
                    (
                        name.clone(),
                        Value::Array(vec![Value::UInt(s), Value::UInt(v)]),
                    )
                })
                .collect();
            Value::Object(vec![
                ("sent".to_string(), Value::UInt(r.bytes_sent)),
                ("recv".to_string(), Value::UInt(r.bytes_recv)),
                ("phases".to_string(), Value::Object(phase_obj)),
            ])
        })
        .collect();
    Value::Object(vec![("ranks".to_string(), Value::Array(ranks))])
}

/// Compare `stats` against the golden entry `key` in the JSON file at
/// `path` (an object keyed by run label). In [`GoldenMode::Bless`] the
/// entry (and file, if missing) is created or rewritten instead.
///
/// Errors carry a human-readable description of the first divergence —
/// which rank, which phase, expected vs measured bytes — plus the bless
/// instructions.
pub fn check_golden(
    path: &Path,
    key: &str,
    stats: &WorldStats,
    mode: GoldenMode,
) -> Result<(), String> {
    use serde_json::Value;
    let measured = snapshot(stats);

    let mut root = match fs::read_to_string(path) {
        Ok(text) => serde_json::from_str(&text)
            .map_err(|e| format!("golden file {} is not valid JSON: {e}", path.display()))?,
        Err(_) if mode == GoldenMode::Bless => Value::Object(Vec::new()),
        Err(e) => {
            return Err(format!(
                "golden file {} unreadable ({e}); run with GOLDEN_BLESS=1 to create it",
                path.display()
            ))
        }
    };

    if mode == GoldenMode::Bless {
        let entries = match &mut root {
            Value::Object(entries) => entries,
            _ => return Err(format!("golden file {} is not an object", path.display())),
        };
        match entries.iter_mut().find(|(k, _)| k == key) {
            Some((_, v)) => *v = measured,
            None => entries.push((key.to_string(), measured)),
        }
        entries.sort_by(|(a, _), (b, _)| a.cmp(b));
        if let Some(dir) = path.parent() {
            fs::create_dir_all(dir).map_err(|e| format!("mkdir {}: {e}", dir.display()))?;
        }
        let text = serde_json::to_string_pretty(&root).map_err(|e| e.to_string())?;
        fs::write(path, text + "\n").map_err(|e| format!("write {}: {e}", path.display()))?;
        return Ok(());
    }

    let golden = root.get(key).ok_or_else(|| {
        format!(
            "no golden entry {key:?} in {}; run with GOLDEN_BLESS=1 to record it",
            path.display()
        )
    })?;
    diff(key, golden, &measured)
}

/// First-divergence diff between a golden and a measured snapshot.
fn diff(key: &str, golden: &serde_json::Value, measured: &serde_json::Value) -> Result<(), String> {
    if golden == measured {
        return Ok(());
    }
    let g_ranks = golden.get("ranks").and_then(|v| v.as_array());
    let m_ranks = measured.get("ranks").and_then(|v| v.as_array());
    let detail = match (g_ranks, m_ranks) {
        (Some(g), Some(m)) if g.len() != m.len() => {
            format!(
                "world size changed: golden {} ranks, measured {}",
                g.len(),
                m.len()
            )
        }
        (Some(g), Some(m)) => {
            let mut msg = String::from("first divergence: ");
            'outer: {
                for (rank, (gr, mr)) in g.iter().zip(m).enumerate() {
                    for field in ["sent", "recv"] {
                        let gv = gr.get(field).and_then(|v| v.as_u64());
                        let mv = mr.get(field).and_then(|v| v.as_u64());
                        if gv != mv {
                            msg +=
                                &format!("rank {rank} {field}: golden {gv:?} B, measured {mv:?} B");
                            break 'outer;
                        }
                    }
                    let (gp, mp) = (gr.get("phases"), mr.get("phases"));
                    if gp != mp {
                        msg += &format!(
                            "rank {rank} per-phase breakdown: golden {}, measured {}",
                            gp.map(|v| v.to_string()).unwrap_or_default(),
                            mp.map(|v| v.to_string()).unwrap_or_default()
                        );
                        break 'outer;
                    }
                }
                msg += "snapshots differ structurally";
            }
            msg
        }
        _ => "snapshot missing 'ranks' array".to_string(),
    };
    Err(format!(
        "golden-volume mismatch for {key:?}: {detail}. If the traffic change is \
         intentional, rebless with GOLDEN_BLESS=1 and commit the diff."
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use xmpi::run;

    fn sample_stats(extra: bool) -> WorldStats {
        run(2, |c| {
            c.set_phase("talk");
            if c.rank() == 0 {
                c.send_f64(1, 0, &[1.0, 2.0]);
                if extra {
                    c.send_f64(1, 1, &[3.0]);
                }
            } else {
                c.recv_f64(0, 0);
                if extra {
                    c.recv_f64(0, 1);
                }
            }
        })
        .stats
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("xharness-golden-{name}-{}", std::process::id()));
        p
    }

    #[test]
    fn bless_then_check_roundtrip() {
        let path = temp_path("roundtrip");
        let _ = fs::remove_file(&path);
        let stats = sample_stats(false);
        check_golden(&path, "k", &stats, GoldenMode::Bless).unwrap();
        check_golden(&path, "k", &stats, GoldenMode::Check).unwrap();
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn drifted_traffic_is_rejected_with_rank_detail() {
        let path = temp_path("drift");
        let _ = fs::remove_file(&path);
        check_golden(&path, "k", &sample_stats(false), GoldenMode::Bless).unwrap();
        let err = check_golden(&path, "k", &sample_stats(true), GoldenMode::Check).unwrap_err();
        assert!(err.contains("rank 0 sent"), "error was: {err}");
        assert!(err.contains("GOLDEN_BLESS"), "error was: {err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn missing_entry_and_missing_file_are_actionable() {
        let path = temp_path("missing");
        let _ = fs::remove_file(&path);
        let stats = sample_stats(false);
        let err = check_golden(&path, "k", &stats, GoldenMode::Check).unwrap_err();
        assert!(err.contains("GOLDEN_BLESS"), "error was: {err}");
        check_golden(&path, "other", &stats, GoldenMode::Bless).unwrap();
        let err = check_golden(&path, "k", &stats, GoldenMode::Check).unwrap_err();
        assert!(err.contains("no golden entry"), "error was: {err}");
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn snapshot_is_canonical_and_stable() {
        let a = snapshot(&sample_stats(false));
        let b = snapshot(&sample_stats(false));
        assert_eq!(
            serde_json::to_string_pretty(&a).unwrap(),
            serde_json::to_string_pretty(&b).unwrap()
        );
    }

    #[test]
    fn blessed_entries_stay_sorted() {
        let path = temp_path("sorted");
        let _ = fs::remove_file(&path);
        let stats = sample_stats(false);
        for key in ["zeta", "alpha", "mid"] {
            check_golden(&path, key, &stats, GoldenMode::Bless).unwrap();
        }
        let root = serde_json::from_str(&fs::read_to_string(&path).unwrap()).unwrap();
        let keys: Vec<&str> = root
            .as_object()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert_eq!(keys, vec!["alpha", "mid", "zeta"]);
        let _ = fs::remove_file(&path);
    }
}
