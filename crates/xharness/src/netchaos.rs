//! The seeded network-chaos plan: an [`xmpi::NetFaults`] implementation
//! whose every wire- and dial-level decision is a pure function of
//! `(seed, decision identity)` — the transport-breaking counterpart of the
//! schedule-level [`crate::Perturbator`].
//!
//! # Determinism model
//!
//! A frame decision's identity is its `(src, dst)` pair plus a
//! per-`(src, dst)` frame sequence number. The shared send path consults
//! the plan once per non-self-send in program order on the sender's
//! thread, so the k-th frame from `src` to `dst` is the same logical
//! message on every run *and on every backend* — which is what lets the
//! chaos conformance suite run the same seed against the in-process
//! mirror and the real socket mesh and compare outcomes.
//!
//! The fatal plans ([`ResetPlan`], [`HangPlan`]) are **one-shot per
//! instance**, like [`crate::CrashPlan`]: a fault-tolerant driver reuses
//! the instance across the broken world and its checkpoint-restart, and
//! the restarted world must run fault-free to completion. Torn-write
//! noise keeps flowing across restarts — it is observably benign by
//! contract (the receiver reassembles split frames), so it must never
//! change results, counts, or rosters.
//!
//! Connection faults ([`ConnectPlan`]) are pure functions of the dial
//! attempt index, so they need no latch: the first `refuse_first`
//! attempts at the planned listener are refused (each burning one bounded
//! retry without sleeping), the next is delayed, and the rest proceed.

use crate::rng::{hash, unit_f64};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use xmpi::{ConnectFault, NetFaults, WireFault};

/// Decision-domain tags, disjoint from the [`crate::Perturbator`] domains
/// (1–7) so arming chaos never shifts a seeded schedule-perturbation
/// stream.
mod domain {
    pub const WRITE: u64 = 8;
    pub const RESET: u64 = 9;
    pub const HANG: u64 = 10;
    pub const CONNECT: u64 = 11;
    pub const MODE: u64 = 12;
}

/// Rates and magnitudes for the always-on torn-write noise of a
/// [`NetChaos`] plan.
#[derive(Debug, Clone, PartialEq)]
pub struct NetChaosConfig {
    /// Seed every decision derives from.
    pub seed: u64,
    /// Probability an outbound frame is written in two pieces around a
    /// stall.
    pub torn_prob: f64,
    /// Maximum mid-frame stall (µs) of a torn write.
    pub max_stall_us: u64,
}

impl NetChaosConfig {
    /// The default noise level: roughly one frame in seven torn, stalls up
    /// to 200 µs — enough to exercise every partial-read path without
    /// slowing a test run noticeably.
    pub fn new(seed: u64) -> Self {
        NetChaosConfig {
            seed,
            torn_prob: 0.15,
            max_stall_us: 200,
        }
    }
}

/// A deterministic one-shot mid-frame connection reset: the `on_frame`-th
/// frame from `src` to `dst` is cut after a seed-drawn prefix and the
/// stream's write half shut down. The socket peer observes a mid-frame
/// EOF and classifies `src` dead; the in-process mirror kills `src` at
/// the same program-ordered send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResetPlan {
    /// Sending world rank (the rank that ends up dead).
    pub src: usize,
    /// Destination whose stream is reset.
    pub dst: usize,
    /// Zero-based index among `src→dst` frames at which the reset fires.
    pub on_frame: u64,
}

impl ResetPlan {
    /// Seed-derived plan: a non-root `src` (killing rank 0 tests the
    /// driver, not the recovery protocol), any other rank as `dst`, reset
    /// within the first few frames of the pair.
    pub fn from_seed(seed: u64, p: usize) -> ResetPlan {
        assert!(p > 1, "reset plan needs a peer pair");
        let src = 1 + (hash(&[seed, domain::RESET, 0]) as usize) % (p - 1);
        let d = (hash(&[seed, domain::RESET, 1]) as usize) % (p - 1);
        let dst = if d >= src { d + 1 } else { d };
        ResetPlan {
            src,
            dst,
            on_frame: hash(&[seed, domain::RESET, 2]) % 6,
        }
    }
}

/// A deterministic one-shot silent hang: after its `after_frames`-th
/// outbound frame, `victim` transmits nothing — data, `Fin`s, heartbeats —
/// while its process stays alive. Only the heartbeat failure detector can
/// classify this; the in-process mirror kills `victim` at the same
/// program-ordered send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HangPlan {
    /// World rank that goes silent.
    pub victim: usize,
    /// Zero-based index among the victim's outbound frames at which it
    /// hangs.
    pub after_frames: u64,
}

impl HangPlan {
    /// Seed-derived plan: a non-root victim hanging within its first few
    /// frames.
    pub fn from_seed(seed: u64, p: usize) -> HangPlan {
        assert!(p > 1, "hang plan needs a non-root victim");
        HangPlan {
            victim: 1 + (hash(&[seed, domain::HANG, 0]) as usize) % (p - 1),
            after_frames: hash(&[seed, domain::HANG, 1]) % 6,
        }
    }
}

/// A deterministic bounded connect fault against one mesh listener: the
/// first `refuse_first` dial attempts at rank `dst` are refused (each
/// burning one bounded retry, without sleeping), the next attempt is
/// held back `delay_us`, and every later attempt proceeds — so the mesh
/// converges, just late. Unbounded refusal (for typed-failure tests) is
/// expressed by setting `refuse_first` at or above the dial budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConnectPlan {
    /// Rank whose listener misbehaves.
    pub dst: usize,
    /// Dial attempts refused before any can succeed.
    pub refuse_first: u64,
    /// Delay (µs) imposed on the first non-refused attempt.
    pub delay_us: u64,
}

impl ConnectPlan {
    /// Seed-derived plan: a listener that every higher rank must dial
    /// (`dst < p-1`), 1–3 refusals, a sub-millisecond delay.
    pub fn from_seed(seed: u64, p: usize) -> ConnectPlan {
        assert!(p > 1, "connect plan needs a dialed listener");
        ConnectPlan {
            dst: (hash(&[seed, domain::CONNECT, 0]) as usize) % (p - 1),
            refuse_first: 1 + hash(&[seed, domain::CONNECT, 1]) % 3,
            delay_us: hash(&[seed, domain::CONNECT, 2]) % 500,
        }
    }
}

/// Which fault family a seed-derived plan exercises (see
/// [`NetChaos::from_seed`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Torn-write noise only — strictly observably benign.
    Torn,
    /// Noise plus one mid-frame connection reset.
    Reset,
    /// Noise plus one silent rank hang.
    Hang,
    /// Noise plus a bounded refuse/delay pattern on one mesh listener.
    Connect,
}

/// Per-key monotone sequence counters (the deterministic part of a frame
/// decision's identity).
#[derive(Default)]
struct SeqTable<K: std::hash::Hash + Eq + Copy> {
    map: Mutex<HashMap<K, u64>>,
}

impl<K: std::hash::Hash + Eq + Copy> SeqTable<K> {
    fn next(&self, key: K) -> u64 {
        let mut map = self.map.lock().expect("seq table poisoned");
        let ctr = map.entry(key).or_insert(0);
        let seq = *ctr;
        *ctr += 1;
        seq
    }
}

/// The seeded network-chaos plan. Install with [`crate::run_chaos`]
/// (ambient, covers every world a driver launches) or build one per
/// scripted scenario with the `with_*` constructors.
pub struct NetChaos {
    cfg: NetChaosConfig,
    mode: ChaosMode,
    /// Per-`(src, dst)` outbound-frame counter.
    frame_seq: SeqTable<(usize, usize)>,
    /// Per-src counter of *all* outbound frames, for the hang plan.
    hang_seq: SeqTable<usize>,
    reset: Option<(ResetPlan, AtomicBool)>,
    hang: Option<(HangPlan, AtomicBool)>,
    connect: Option<ConnectPlan>,
}

impl NetChaos {
    /// A plan with torn-write noise only.
    pub fn new(cfg: NetChaosConfig) -> Self {
        NetChaos {
            cfg,
            mode: ChaosMode::Torn,
            frame_seq: SeqTable::default(),
            hang_seq: SeqTable::default(),
            reset: None,
            hang: None,
            connect: None,
        }
    }

    /// Arm a one-shot [`ResetPlan`].
    pub fn with_reset(mut self, plan: ResetPlan) -> Self {
        self.reset = Some((plan, AtomicBool::new(false)));
        self.mode = ChaosMode::Reset;
        self
    }

    /// Arm a one-shot [`HangPlan`].
    pub fn with_hang(mut self, plan: HangPlan) -> Self {
        self.hang = Some((plan, AtomicBool::new(false)));
        self.mode = ChaosMode::Hang;
        self
    }

    /// Arm a [`ConnectPlan`] (stateless, no latch).
    pub fn with_connect(mut self, plan: ConnectPlan) -> Self {
        self.connect = Some(plan);
        self.mode = ChaosMode::Connect;
        self
    }

    /// The seed-matrix constructor: the seed picks one of the four
    /// [`ChaosMode`]s and derives that mode's plan, so a sweep over
    /// `XHARNESS_SEEDS` covers every fault family and a failing seed
    /// replays its exact fault pattern.
    pub fn from_seed(seed: u64, p: usize) -> NetChaos {
        let chaos = NetChaos::new(NetChaosConfig::new(seed));
        match hash(&[seed, domain::MODE]) % 4 {
            0 => chaos,
            1 => chaos.with_reset(ResetPlan::from_seed(seed, p)),
            2 => chaos.with_hang(HangPlan::from_seed(seed, p)),
            _ => chaos.with_connect(ConnectPlan::from_seed(seed, p)),
        }
    }

    /// Which fault family this plan exercises.
    pub fn mode(&self) -> ChaosMode {
        self.mode
    }

    /// The armed reset plan, if any.
    pub fn reset_plan(&self) -> Option<ResetPlan> {
        self.reset.as_ref().map(|(p, _)| *p)
    }

    /// The armed hang plan, if any.
    pub fn hang_plan(&self) -> Option<HangPlan> {
        self.hang.as_ref().map(|(p, _)| *p)
    }

    /// The armed connect plan, if any.
    pub fn connect_plan(&self) -> Option<ConnectPlan> {
        self.connect
    }

    /// Has the armed reset plan fired yet (in this process)?
    pub fn reset_fired(&self) -> bool {
        self.reset
            .as_ref()
            .is_some_and(|(_, fired)| fired.load(Ordering::SeqCst))
    }

    /// Has the armed hang plan fired yet (in this process)?
    pub fn hang_fired(&self) -> bool {
        self.hang
            .as_ref()
            .is_some_and(|(_, fired)| fired.load(Ordering::SeqCst))
    }

    /// Uniform draw in `[0,1)` for a decision identity.
    fn roll(&self, parts: &[u64]) -> f64 {
        let mut key = Vec::with_capacity(parts.len() + 1);
        key.push(self.cfg.seed);
        key.extend_from_slice(parts);
        unit_f64(hash(&key))
    }
}

impl NetFaults for NetChaos {
    fn wire_fault(&self, src: usize, dst: usize, frame_len: usize) -> WireFault {
        let seq = self.frame_seq.next((src, dst));
        // Fatal one-shot plans are checked before the torn noise so their
        // firing frame is exact. Counters keep advancing after a latch
        // fires, so a restarted world's frame indices stay well-defined.
        if let Some((plan, fired)) = &self.reset {
            if src == plan.src
                && dst == plan.dst
                && seq == plan.on_frame
                && !fired.swap(true, Ordering::SeqCst)
            {
                let prefix =
                    (hash(&[self.cfg.seed, domain::RESET, 3, seq]) as usize) % frame_len.max(1);
                return WireFault::Reset { prefix };
            }
        }
        if let Some((plan, fired)) = &self.hang {
            if src == plan.victim {
                let vseq = self.hang_seq.next(src);
                if vseq == plan.after_frames && !fired.swap(true, Ordering::SeqCst) {
                    return WireFault::Hang;
                }
            }
        }
        let id = [domain::WRITE, src as u64, dst as u64, seq];
        if frame_len >= 2 && self.roll(&id) < self.cfg.torn_prob {
            let h = hash(&[self.cfg.seed, domain::WRITE, src as u64, dst as u64, seq, 1]);
            return WireFault::Torn {
                prefix: 1 + (h as usize) % (frame_len - 1),
                stall: Duration::from_micros(1 + (h >> 32) % self.cfg.max_stall_us.max(1)),
            };
        }
        WireFault::Deliver
    }

    fn connect_fault(&self, _src: usize, dst: usize, attempt: u64) -> ConnectFault {
        let Some(plan) = &self.connect else {
            return ConnectFault::Allow;
        };
        if dst != plan.dst {
            return ConnectFault::Allow;
        }
        if attempt < plan.refuse_first {
            return ConnectFault::Refuse;
        }
        if attempt == plan.refuse_first && plan.delay_us > 0 {
            return ConnectFault::Delay(Duration::from_micros(plan.delay_us));
        }
        ConnectFault::Allow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replay the same scripted frame sequence twice: identical faults.
    #[test]
    fn wire_faults_replay_exactly_under_a_seed() {
        let script = |c: &NetChaos| -> Vec<WireFault> {
            (0..300)
                .map(|i| c.wire_fault(i % 4, (i + 1) % 4, 41 + 8 * (i % 13)))
                .collect()
        };
        let a = script(&NetChaos::from_seed(7, 4));
        let b = script(&NetChaos::from_seed(7, 4));
        assert_eq!(a, b);
    }

    /// Torn faults are well-formed: the split lands strictly inside the
    /// frame and the stall is bounded by the config.
    #[test]
    fn torn_faults_are_well_formed() {
        let c = NetChaos::new(NetChaosConfig {
            seed: 3,
            torn_prob: 1.0,
            max_stall_us: 50,
        });
        for i in 0..200 {
            let frame_len = 41 + 8 * (i % 9);
            match c.wire_fault(0, 1, frame_len) {
                WireFault::Torn { prefix, stall } => {
                    assert!(prefix >= 1 && prefix < frame_len);
                    assert!(stall >= Duration::from_micros(1));
                    assert!(stall <= Duration::from_micros(50));
                }
                f => panic!("torn_prob=1.0 must always tear, got {f:?}"),
            }
        }
    }

    #[test]
    fn reset_plan_fires_exactly_once_on_its_pair() {
        let c = NetChaos::new(NetChaosConfig {
            seed: 11,
            torn_prob: 0.0,
            max_stall_us: 1,
        })
        .with_reset(ResetPlan {
            src: 2,
            dst: 0,
            on_frame: 2,
        });
        assert!(!c.reset_fired());
        // Other pairs never reset and never advance the pair's counter.
        for _ in 0..10 {
            assert_eq!(c.wire_fault(2, 1, 100), WireFault::Deliver);
            assert_eq!(c.wire_fault(0, 2, 100), WireFault::Deliver);
        }
        assert_eq!(c.wire_fault(2, 0, 100), WireFault::Deliver); // frame 0
        assert_eq!(c.wire_fault(2, 0, 100), WireFault::Deliver); // frame 1
        let f = c.wire_fault(2, 0, 100); // frame 2: fires
        let WireFault::Reset { prefix } = f else {
            panic!("expected reset, got {f:?}");
        };
        assert!(prefix < 100);
        assert!(c.reset_fired());
        // One-shot thereafter — a restarted world runs clean.
        for _ in 0..20 {
            assert_eq!(c.wire_fault(2, 0, 100), WireFault::Deliver);
        }
    }

    #[test]
    fn hang_plan_counts_all_victim_frames() {
        let c = NetChaos::new(NetChaosConfig {
            seed: 5,
            torn_prob: 0.0,
            max_stall_us: 1,
        })
        .with_hang(HangPlan {
            victim: 1,
            after_frames: 3,
        });
        // Non-victim frames never hang and never advance the counter.
        for _ in 0..10 {
            assert_eq!(c.wire_fault(0, 1, 64), WireFault::Deliver);
        }
        // The victim's 4th outbound frame (index 3), across *different*
        // destinations, is the one that hangs.
        assert_eq!(c.wire_fault(1, 0, 64), WireFault::Deliver);
        assert_eq!(c.wire_fault(1, 2, 64), WireFault::Deliver);
        assert_eq!(c.wire_fault(1, 0, 64), WireFault::Deliver);
        assert_eq!(c.wire_fault(1, 2, 64), WireFault::Hang);
        assert!(c.hang_fired());
        for _ in 0..20 {
            assert_eq!(c.wire_fault(1, 0, 64), WireFault::Deliver);
        }
    }

    #[test]
    fn connect_plan_refuses_then_delays_then_allows() {
        let c = NetChaos::new(NetChaosConfig {
            seed: 9,
            torn_prob: 0.0,
            max_stall_us: 1,
        })
        .with_connect(ConnectPlan {
            dst: 0,
            refuse_first: 2,
            delay_us: 300,
        });
        assert_eq!(c.connect_fault(3, 1, 0), ConnectFault::Allow);
        assert_eq!(c.connect_fault(3, 0, 0), ConnectFault::Refuse);
        assert_eq!(c.connect_fault(3, 0, 1), ConnectFault::Refuse);
        assert_eq!(
            c.connect_fault(3, 0, 2),
            ConnectFault::Delay(Duration::from_micros(300))
        );
        assert_eq!(c.connect_fault(3, 0, 3), ConnectFault::Allow);
    }

    #[test]
    fn seed_derived_plans_replay_avoid_root_and_stay_in_range() {
        for seed in 0..200 {
            let p = 2 + (seed as usize) % 7;
            let a = NetChaos::from_seed(seed, p);
            let b = NetChaos::from_seed(seed, p);
            assert_eq!(a.mode(), b.mode());
            assert_eq!(a.reset_plan(), b.reset_plan());
            assert_eq!(a.hang_plan(), b.hang_plan());
            assert_eq!(a.connect_plan(), b.connect_plan());
            if let Some(r) = a.reset_plan() {
                assert!(r.src >= 1 && r.src < p);
                assert!(r.dst < p && r.dst != r.src);
                assert!(r.on_frame < 6);
            }
            if let Some(h) = a.hang_plan() {
                assert!(h.victim >= 1 && h.victim < p);
                assert!(h.after_frames < 6);
            }
            if let Some(cp) = a.connect_plan() {
                assert!(cp.dst < p - 1, "planned listener must actually be dialed");
                assert!((1..=3).contains(&cp.refuse_first));
                assert!(cp.delay_us < 500);
            }
        }
    }

    #[test]
    fn seed_matrix_covers_every_mode() {
        let mut seen = [false; 4];
        for seed in 0..64 {
            match NetChaos::from_seed(seed, 4).mode() {
                ChaosMode::Torn => seen[0] = true,
                ChaosMode::Reset => seen[1] = true,
                ChaosMode::Hang => seen[2] = true,
                ChaosMode::Connect => seen[3] = true,
            }
        }
        assert_eq!(seen, [true; 4], "64 seeds must cover all four modes");
    }
}
