//! Seeded, stateless decision hashing (SplitMix64).
//!
//! The perturbator must make every injection decision as a *pure function*
//! of the seed and the decision's identity — never of wall-clock time or
//! thread interleaving — so a failing seed replays the exact same fault
//! pattern. The identity of a decision is a short tuple of integers (a
//! domain tag, channel coordinates, a per-channel sequence number); this
//! module folds such tuples through the SplitMix64 finalizer, whose output
//! passes BigCrush and is the standard seeding permutation for
//! xoshiro-family generators (Steele, Lea & Flood, OOPSLA'14).

/// The SplitMix64 output permutation: a bijective avalanche mix on `u64`.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hash a decision identity: fold each part through the permutation,
/// mixing in the running state. Order-sensitive (swapping parts changes
/// the hash) and collision-resistant enough for fault-injection sampling.
pub fn hash(parts: &[u64]) -> u64 {
    let mut state = 0x243f_6a88_85a3_08d3; // pi digits, nothing up the sleeve
    for &p in parts {
        state = splitmix64(state ^ p).rotate_left(17);
    }
    splitmix64(state)
}

/// Map a hash to a uniform float in `[0, 1)` (top 53 bits).
#[inline]
pub fn unit_f64(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_order_sensitive() {
        assert_eq!(hash(&[1, 2, 3]), hash(&[1, 2, 3]));
        assert_ne!(hash(&[1, 2, 3]), hash(&[3, 2, 1]));
        assert_ne!(hash(&[0]), hash(&[0, 0]));
    }

    #[test]
    fn unit_interval_is_well_formed() {
        for i in 0..1000u64 {
            let u = unit_f64(hash(&[42, i]));
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn unit_values_look_uniform() {
        // Crude equidistribution check: mean of 10k samples near 1/2.
        let n = 10_000u64;
        let sum: f64 = (0..n).map(|i| unit_f64(hash(&[7, i]))).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
