//! The seeded schedule perturbator: an [`xmpi::SchedHooks`] implementation
//! whose every decision is a pure function of `(seed, decision identity)`.
//!
//! # Determinism model
//!
//! A decision's identity is its *channel coordinates plus a per-channel
//! sequence number*. Sends on a channel `(src, dst, ctx, tag)` are issued by
//! the `src` rank's thread in program order, so the k-th send on a channel
//! is the same logical message in every run — its fate (deliver / delay /
//! drop-and-retransmit) therefore replays exactly under a fixed seed,
//! regardless of how the OS schedules the other threads. The same holds for
//! blocking-receive stalls (keyed by the receiver's per-channel receive
//! sequence).
//!
//! Wait-point and phase stalls are keyed by per-rank counters that include
//! `test()` polls, whose count can depend on timing; they are *timing noise
//! only* — no observable result (factor bits, per-rank byte counts, event
//! causality) can depend on them, because message payloads and their
//! per-channel order are already fixed. The conformance suite's bitwise
//! checks rest on the deterministic part; the noise part just widens the
//! explored interleaving space.

use crate::rng::{hash, unit_f64};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::Duration;
use xmpi::{CrashFate, SchedHooks, SendFate};

/// Decision-domain tags, hashed into every decision so the same sequence
/// number in different domains draws independent randomness. Crash and
/// corruption plans live in domains of their own, so arming them leaves
/// every existing seeded decision stream (fates, delays, stalls) bitwise
/// unchanged.
mod domain {
    pub const SEND_FATE: u64 = 1;
    pub const SEND_DELAY: u64 = 2;
    pub const RECV: u64 = 3;
    pub const WAIT: u64 = 4;
    pub const PHASE: u64 = 5;
    pub const CRASH: u64 = 6;
    pub const CORRUPT: u64 = 7;
}

/// Injection rates and magnitudes for a [`Perturbator`].
///
/// Probabilities are per decision point; delays are drawn uniformly in
/// `1..=max_*_us` microseconds. The defaults ([`PerturbConfig::new`]) are
/// the `light` preset; [`PerturbConfig::aggressive`] is what the stress
/// suite runs.
#[derive(Debug, Clone, PartialEq)]
pub struct PerturbConfig {
    /// Seed every decision derives from.
    pub seed: u64,
    /// Probability a message's visibility is delayed in flight.
    pub delay_prob: f64,
    /// Maximum in-flight delay (µs).
    pub max_delay_us: u64,
    /// Probability a message's first transmission is dropped (the simulated
    /// retransmission surfaces it after [`PerturbConfig::retransmit_us`]).
    pub drop_prob: f64,
    /// Simulated retransmission timeout (µs) for dropped messages.
    pub retransmit_us: u64,
    /// Probability of a stall after a blocking receive matches.
    pub recv_delay_prob: f64,
    /// Probability of a stall at a request-completion point.
    pub wait_delay_prob: f64,
    /// Maximum receive/wait stall (µs).
    pub max_stall_us: u64,
    /// Probability a rank is held back as it enters a phase.
    pub phase_stall_prob: f64,
    /// Maximum phase-boundary stall (µs).
    pub max_phase_stall_us: u64,
}

impl PerturbConfig {
    /// The `light` preset: sparse, small perturbations — enough to shake
    /// loose ordering assumptions without slowing a test run noticeably.
    pub fn new(seed: u64) -> Self {
        PerturbConfig {
            seed,
            delay_prob: 0.05,
            max_delay_us: 50,
            drop_prob: 0.01,
            retransmit_us: 100,
            recv_delay_prob: 0.02,
            wait_delay_prob: 0.02,
            max_stall_us: 20,
            phase_stall_prob: 0.05,
            max_phase_stall_us: 50,
        }
    }

    /// The `aggressive` preset: every fifth message delayed, one in twenty
    /// dropped, frequent completion stalls and phase skews. Used by the
    /// stress bin and the CI soak job.
    pub fn aggressive(seed: u64) -> Self {
        PerturbConfig {
            seed,
            delay_prob: 0.20,
            max_delay_us: 200,
            drop_prob: 0.05,
            retransmit_us: 400,
            recv_delay_prob: 0.10,
            wait_delay_prob: 0.10,
            max_stall_us: 100,
            phase_stall_prob: 0.25,
            max_phase_stall_us: 300,
        }
    }

    /// A copy of this config under a different seed (sweeps share rates).
    pub fn with_seed(&self, seed: u64) -> Self {
        PerturbConfig {
            seed,
            ..self.clone()
        }
    }
}

/// A deterministic one-shot rank kill: `victim` dies at its
/// `after_sends`-th send attempt (program order on the victim's thread, so
/// the same logical instant in every run of the same program).
///
/// The plan fires **once per perturbator instance**: a fault-tolerant driver
/// reuses the instance across the crashed world and its restart, and the
/// restarted world must run fault-free to completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// World rank to kill.
    pub victim: usize,
    /// Zero-based index of the victim's send attempt at which it dies.
    pub after_sends: u64,
}

impl CrashPlan {
    /// Seed-derived plan: a non-root victim (rank 0 usually owns staging and
    /// assembly, so killing it tests the driver, not the recovery protocol)
    /// killed at a send drawn from `0..max_after_sends`.
    pub fn from_seed(seed: u64, p: usize, max_after_sends: u64) -> CrashPlan {
        assert!(p > 1, "crash plan needs a non-root rank to kill");
        CrashPlan {
            victim: 1 + (hash(&[seed, domain::CRASH, 0]) as usize) % (p - 1),
            after_sends: hash(&[seed, domain::CRASH, 1]) % max_after_sends.max(1),
        }
    }
}

/// A deterministic one-shot in-flight corruption: the `on_send`-th *element*
/// payload of at least `min_len` elements sent by `victim` has one element
/// (seed-drawn index) perturbed by `delta`. `min_len` is how a test targets
/// only the big checksum-protected panel/tile messages and leaves small
/// control traffic alone.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptPlan {
    /// World rank whose outgoing payload is corrupted.
    pub victim: usize,
    /// Zero-based index among the victim's qualifying sends.
    pub on_send: u64,
    /// Only payloads of at least this many elements qualify.
    pub min_len: usize,
    /// Value added to the chosen element.
    pub delta: f64,
}

impl CorruptPlan {
    /// Seed-derived plan against payloads of at least `min_len` elements.
    pub fn from_seed(seed: u64, p: usize, min_len: usize, max_on_send: u64) -> CorruptPlan {
        assert!(p > 1, "corrupt plan needs a sending peer");
        CorruptPlan {
            victim: 1 + (hash(&[seed, domain::CORRUPT, 0]) as usize) % (p - 1),
            on_send: hash(&[seed, domain::CORRUPT, 1]) % max_on_send.max(1),
            min_len,
            delta: 1.0 + unit_f64(hash(&[seed, domain::CORRUPT, 2])),
        }
    }
}

/// Per-channel monotone sequence counters (the deterministic part of a
/// decision's identity).
#[derive(Default)]
struct SeqTable<K: std::hash::Hash + Eq + Copy> {
    map: Mutex<HashMap<K, u64>>,
}

impl<K: std::hash::Hash + Eq + Copy> SeqTable<K> {
    /// Next sequence number for `key` (0, 1, 2, … per key).
    fn next(&self, key: K) -> u64 {
        let mut map = self.map.lock().expect("seq table poisoned");
        let ctr = map.entry(key).or_insert(0);
        let seq = *ctr;
        *ctr += 1;
        seq
    }
}

/// The seeded perturbator. Install with [`crate::run_perturbed`] (ambient)
/// or [`xmpi::run_hooked`] (explicit); one instance per world — its
/// sequence counters are part of the replay identity, so reusing an
/// instance across worlds shifts every later decision.
pub struct Perturbator {
    cfg: PerturbConfig,
    send_seq: SeqTable<(usize, usize, u64, u64)>,
    recv_seq: SeqTable<(usize, usize, u64, u64)>,
    wait_seq: SeqTable<usize>,
    phase_seq: SeqTable<usize>,
    /// Armed crash plan plus its fired latch (one shot per instance).
    crash: Option<(CrashPlan, AtomicBool)>,
    /// Victim's program-ordered send-attempt counter for the crash plan.
    crash_seq: SeqTable<usize>,
    /// Armed corruption plan plus its fired latch.
    corrupt: Option<(CorruptPlan, AtomicBool)>,
    /// Victim's counter of qualifying element sends for the corruption plan.
    corrupt_seq: SeqTable<usize>,
}

impl Perturbator {
    /// A perturbator drawing every decision from `cfg`.
    pub fn new(cfg: PerturbConfig) -> Self {
        Perturbator {
            cfg,
            send_seq: SeqTable::default(),
            recv_seq: SeqTable::default(),
            wait_seq: SeqTable::default(),
            phase_seq: SeqTable::default(),
            crash: None,
            crash_seq: SeqTable::default(),
            corrupt: None,
            corrupt_seq: SeqTable::default(),
        }
    }

    /// Arm a one-shot [`CrashPlan`]. Crash decisions draw from their own
    /// domain, so arming one leaves the seeded delay/drop/stall streams
    /// untouched — a crash run differs from its fault-free twin *only* by
    /// the kill.
    pub fn with_crash(mut self, plan: CrashPlan) -> Self {
        self.crash = Some((plan, AtomicBool::new(false)));
        self
    }

    /// Arm a one-shot [`CorruptPlan`] (same isolation as
    /// [`Perturbator::with_crash`]).
    pub fn with_corrupt(mut self, plan: CorruptPlan) -> Self {
        self.corrupt = Some((plan, AtomicBool::new(false)));
        self
    }

    /// Has the armed crash plan fired yet?
    pub fn crash_fired(&self) -> bool {
        self.crash
            .as_ref()
            .is_some_and(|(_, fired)| fired.load(Ordering::SeqCst))
    }

    /// Has the armed corruption plan fired yet?
    pub fn corrupt_fired(&self) -> bool {
        self.corrupt
            .as_ref()
            .is_some_and(|(_, fired)| fired.load(Ordering::SeqCst))
    }

    /// The config this perturbator draws from.
    pub fn config(&self) -> &PerturbConfig {
        &self.cfg
    }

    /// Uniform draw in `[0,1)` for a decision identity.
    fn roll(&self, parts: &[u64]) -> f64 {
        let mut key = Vec::with_capacity(parts.len() + 1);
        key.push(self.cfg.seed);
        key.extend_from_slice(parts);
        unit_f64(hash(&key))
    }

    /// Uniform delay in `1..=max_us` microseconds for a decision identity.
    fn draw_us(&self, parts: &[u64], max_us: u64) -> Duration {
        let mut key = Vec::with_capacity(parts.len() + 1);
        key.push(self.cfg.seed);
        key.extend_from_slice(parts);
        Duration::from_micros(1 + hash(&key) % max_us.max(1))
    }
}

impl SchedHooks for Perturbator {
    fn send_fate(&self, src: usize, dst: usize, ctx: u64, tag: u64, _bytes: u64) -> SendFate {
        let seq = self.send_seq.next((src, dst, ctx, tag));
        let id = [src as u64, dst as u64, ctx, tag, seq];
        let mut fate = [domain::SEND_FATE].to_vec();
        fate.extend_from_slice(&id);
        let u = self.roll(&fate);
        if u < self.cfg.drop_prob {
            return SendFate::Drop {
                retransmit_after: Duration::from_micros(self.cfg.retransmit_us.max(1)),
            };
        }
        if u < self.cfg.drop_prob + self.cfg.delay_prob {
            let mut delay = [domain::SEND_DELAY].to_vec();
            delay.extend_from_slice(&id);
            return SendFate::Delay(self.draw_us(&delay, self.cfg.max_delay_us));
        }
        SendFate::Deliver
    }

    fn recv_delay(&self, rank: usize, src: usize, ctx: u64, tag: u64) -> Option<Duration> {
        let seq = self.recv_seq.next((rank, src, ctx, tag));
        let id = [domain::RECV, rank as u64, src as u64, ctx, tag, seq];
        (self.roll(&id) < self.cfg.recv_delay_prob)
            .then(|| self.draw_us(&id, self.cfg.max_stall_us))
    }

    fn wait_delay(&self, rank: usize) -> Option<Duration> {
        let seq = self.wait_seq.next(rank);
        let id = [domain::WAIT, rank as u64, seq];
        (self.roll(&id) < self.cfg.wait_delay_prob)
            .then(|| self.draw_us(&id, self.cfg.max_stall_us))
    }

    fn phase_stall(&self, rank: usize, name: &str) -> Option<Duration> {
        let seq = self.phase_seq.next(rank);
        let name_h = name
            .bytes()
            .fold(0u64, |h, b| h.wrapping_mul(131).wrapping_add(u64::from(b)));
        let id = [domain::PHASE, rank as u64, name_h, seq];
        (self.roll(&id) < self.cfg.phase_stall_prob)
            .then(|| self.draw_us(&id, self.cfg.max_phase_stall_us))
    }

    fn crash_fate(&self, src: usize, _dst: usize, _ctx: u64, _tag: u64) -> CrashFate {
        let Some((plan, fired)) = self.crash.as_ref() else {
            return CrashFate::Survive;
        };
        if src != plan.victim {
            return CrashFate::Survive;
        }
        // The counter keeps advancing after the kill so a restarted world's
        // send indices stay well-defined; the latch makes the plan one-shot.
        let seq = self.crash_seq.next(src);
        if seq == plan.after_sends && !fired.swap(true, Ordering::SeqCst) {
            return CrashFate::Crash;
        }
        CrashFate::Survive
    }

    fn corrupt_send(
        &self,
        src: usize,
        dst: usize,
        ctx: u64,
        tag: u64,
        len: usize,
    ) -> Option<(usize, f64)> {
        let (plan, fired) = self.corrupt.as_ref()?;
        if src != plan.victim || len < plan.min_len {
            return None;
        }
        let seq = self.corrupt_seq.next(src);
        if seq != plan.on_send || fired.swap(true, Ordering::SeqCst) {
            return None;
        }
        let idx = hash(&[
            self.cfg.seed,
            domain::CORRUPT,
            src as u64,
            dst as u64,
            ctx,
            tag,
        ]) as usize
            % len;
        Some((idx, plan.delta))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Replay the same scripted call sequence twice: identical fates.
    #[test]
    fn fates_replay_exactly_under_a_seed() {
        let script = |p: &Perturbator| -> Vec<SendFate> {
            let mut out = Vec::new();
            for msg in 0..200 {
                out.push(p.send_fate(msg % 4, (msg + 1) % 4, 1, msg as u64 % 3, 64));
            }
            out
        };
        let a = script(&Perturbator::new(PerturbConfig::aggressive(7)));
        let b = script(&Perturbator::new(PerturbConfig::aggressive(7)));
        assert_eq!(a, b);
    }

    /// Distinct seeds must explore distinct fault patterns.
    #[test]
    fn seeds_differentiate_fault_patterns() {
        let fates = |seed: u64| -> Vec<SendFate> {
            let p = Perturbator::new(PerturbConfig::aggressive(seed));
            (0..200).map(|i| p.send_fate(0, 1, 1, 0, i)).collect()
        };
        assert_ne!(fates(1), fates(2));
    }

    /// Per-channel sequences are independent: interleaving channels does
    /// not change either channel's decision stream.
    #[test]
    fn channels_draw_independent_streams() {
        let p = Perturbator::new(PerturbConfig::aggressive(11));
        let mut chan_a = Vec::new();
        let mut chan_b = Vec::new();
        for _ in 0..50 {
            chan_a.push(p.send_fate(0, 1, 1, 0, 8));
            chan_b.push(p.send_fate(2, 3, 1, 0, 8));
        }
        // Same stream when channel B never runs.
        let q = Perturbator::new(PerturbConfig::aggressive(11));
        let solo_a: Vec<_> = (0..50).map(|_| q.send_fate(0, 1, 1, 0, 8)).collect();
        assert_eq!(chan_a, solo_a);
        assert_ne!(chan_a, chan_b);
    }

    /// Rates actually bite: the aggressive preset must produce all three
    /// fates over a few hundred messages.
    #[test]
    fn aggressive_preset_produces_all_fates() {
        let p = Perturbator::new(PerturbConfig::aggressive(3));
        let fates: Vec<_> = (0..500).map(|i| p.send_fate(0, 1, 1, i, 8)).collect();
        assert!(fates.iter().any(|f| matches!(f, SendFate::Deliver)));
        assert!(fates.iter().any(|f| matches!(f, SendFate::Delay(_))));
        assert!(fates.iter().any(|f| matches!(f, SendFate::Drop { .. })));
    }

    #[test]
    fn crash_plan_fires_exactly_once_at_the_planned_send() {
        let p = Perturbator::new(PerturbConfig::new(9)).with_crash(CrashPlan {
            victim: 2,
            after_sends: 3,
        });
        assert!(!p.crash_fired());
        // Other ranks never crash and never advance the victim's counter.
        for i in 0..10 {
            assert_eq!(p.crash_fate(0, 1, 0, i), CrashFate::Survive);
        }
        for expect_crash in [false, false, false, true, false, false] {
            let fate = p.crash_fate(2, 0, 0, 0);
            assert_eq!(fate == CrashFate::Crash, expect_crash);
        }
        assert!(p.crash_fired());
        // A "restarted world" reusing the instance sees only survivals.
        for _ in 0..20 {
            assert_eq!(p.crash_fate(2, 0, 0, 0), CrashFate::Survive);
        }
    }

    #[test]
    fn corrupt_plan_targets_one_qualifying_send() {
        let p = Perturbator::new(PerturbConfig::new(4)).with_corrupt(CorruptPlan {
            victim: 1,
            on_send: 1,
            min_len: 100,
            delta: 2.5,
        });
        // Small payloads never qualify and never advance the counter.
        assert!(p.corrupt_send(1, 0, 0, 0, 8).is_none());
        assert!(p.corrupt_send(1, 0, 0, 0, 99).is_none());
        // Qualifying send 0: not yet.
        assert!(p.corrupt_send(1, 0, 0, 0, 100).is_none());
        // Qualifying send 1: fires, with an in-range index and the delta.
        let (idx, delta) = p.corrupt_send(1, 0, 0, 0, 128).expect("plan fires");
        assert!(idx < 128);
        assert_eq!(delta, 2.5);
        assert!(p.corrupt_fired());
        // One-shot thereafter.
        for _ in 0..10 {
            assert!(p.corrupt_send(1, 0, 0, 0, 128).is_none());
        }
    }

    #[test]
    fn seed_derived_plans_replay_and_avoid_root() {
        for seed in 0..50 {
            let a = CrashPlan::from_seed(seed, 8, 200);
            let b = CrashPlan::from_seed(seed, 8, 200);
            assert_eq!(a, b);
            assert!(a.victim >= 1 && a.victim < 8);
            assert!(a.after_sends < 200);
            let c = CorruptPlan::from_seed(seed, 8, 64, 40);
            assert!(c.victim >= 1 && c.victim < 8);
            assert!(c.delta >= 1.0 && c.delta < 2.0);
        }
    }

    #[test]
    fn arming_plans_leaves_seeded_streams_unchanged() {
        // The golden-volume suite depends on this: a crash-armed perturbator
        // must draw identical send fates to a plain one under the same seed.
        let plain = Perturbator::new(PerturbConfig::aggressive(13));
        let armed = Perturbator::new(PerturbConfig::aggressive(13)).with_crash(CrashPlan {
            victim: 3,
            after_sends: 1_000_000, // never actually fires
        });
        for i in 0..300 {
            assert_eq!(
                plain.send_fate(3, 1, 1, i % 5, 64),
                armed.send_fate(3, 1, 1, i % 5, 64)
            );
        }
    }

    #[test]
    fn zero_rate_config_is_transparent() {
        let mut cfg = PerturbConfig::new(5);
        cfg.delay_prob = 0.0;
        cfg.drop_prob = 0.0;
        cfg.recv_delay_prob = 0.0;
        cfg.wait_delay_prob = 0.0;
        cfg.phase_stall_prob = 0.0;
        let p = Perturbator::new(cfg);
        for i in 0..100 {
            assert_eq!(p.send_fate(0, 1, 1, i, 8), SendFate::Deliver);
            assert!(p.recv_delay(1, 0, 1, i).is_none());
            assert!(p.wait_delay(0).is_none());
            assert!(p.phase_stall(0, "x").is_none());
        }
    }
}
