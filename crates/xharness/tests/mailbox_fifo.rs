//! Transport-ordering properties under adversarial schedule perturbation.
//!
//! The sharded mailbox hashes every `(src, ctx, tag)` channel to a shard
//! and matches only at queue heads, so per-channel FIFO is a *structural*
//! claim — these properties hammer it with aggressively perturbed
//! schedules (injected delays, drop-and-retransmit, completion stalls,
//! phase skews) across arbitrary world sizes, channel counts, and message
//! interleavings. A second family pins the cross-seed equality invariant
//! for the tree collectives: perturbation may change *when* bytes move,
//! never *how many* or *where* — the assumption the golden-volume suite
//! and the paper's measured-volume methodology stand on.

use proptest::prelude::*;
use xharness::{run_perturbed, seeds, PerturbConfig};
use xmpi::{run, WorldStats};
use xtrace::invariants::check_stats_equal;

/// One message's payload: who sent it, on which channel, and its sequence
/// number — everything the receiver needs to verify per-channel FIFO.
fn encode(src: usize, tag: u64, seq: usize) -> u64 {
    (src as u64) * 1_000_000 + tag * 1_000 + seq as u64
}

/// Deterministic per-rank channel shuffle: each rank drains its incoming
/// channels in a different order, so while one channel is being matched
/// the others hold pending traffic in their shards.
fn drain_order(me: usize, p: usize, ntags: u64, salt: u64) -> Vec<(usize, u64)> {
    let mut chans: Vec<(usize, u64)> = (0..p)
        .filter(|&s| s != me)
        .flat_map(|s| (0..ntags).map(move |t| (s, t)))
        .collect();
    // Fisher-Yates with a splitmix-style keyed hash — no RNG dependency.
    let mut state = salt ^ (me as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for i in (1..chans.len()).rev() {
        state = state
            .wrapping_add(0x9e37_79b9_7f4a_7c15)
            .wrapping_mul(0xbf58_476d_1ce4_e5b9);
        chans.swap(i, (state >> 33) as usize % (i + 1));
    }
    chans
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// All-to-all traffic over many channels: every rank sends numbered
    /// sequences to every peer on every tag, interleaved channel-by-channel;
    /// every rank drains its channels in its own shuffled order. Under an
    /// aggressive perturbation seed, each `(src, tag)` channel must still
    /// deliver sequence numbers in send order.
    #[test]
    fn per_channel_fifo_survives_aggressive_perturbation(
        p in 2usize..6,
        ntags in 1u64..4,
        nmsgs in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let cfg = PerturbConfig::aggressive(seed);
        let out = run_perturbed(&cfg, || {
            run(p, |c| {
                let me = c.rank();
                // Interleave channels on the send side: message m of every
                // channel goes out before message m+1 of any channel.
                for m in 0..nmsgs {
                    for t in 0..ntags {
                        for dst in 0..p {
                            if dst != me {
                                c.send_u64(dst, t, &[encode(me, t, m)]);
                            }
                        }
                    }
                }
                // Drain channel-by-channel in a rank-specific order; within
                // one channel, sequence numbers must arrive monotonically.
                for (src, t) in drain_order(me, p, ntags, seed) {
                    for m in 0..nmsgs {
                        let got = c.recv_u64(src, t);
                        assert_eq!(
                            got,
                            vec![encode(src, t, m)],
                            "rank {me}: channel (src={src}, tag={t}) out of order at seq {m}"
                        );
                    }
                }
            })
        });
        // Conservation: every byte sent inside the world was received.
        prop_assert_eq!(
            out.stats.total_bytes_sent(),
            out.stats.total_bytes_recv()
        );
        let expect_msgs = (p * (p - 1)) as u64 * ntags * nmsgs as u64;
        prop_assert_eq!(out.stats.total_msgs(), expect_msgs);
    }

    /// The same property with nonblocking receives posted *before* the
    /// sends go out: pre-posted irecvs on one channel must not steal or
    /// reorder traffic racing in on sibling channels of the same shard.
    #[test]
    fn preposted_irecvs_keep_channel_order(
        p in 2usize..5,
        nmsgs in 1usize..5,
        seed in 0u64..1_000,
    ) {
        let cfg = PerturbConfig::aggressive(seed);
        run_perturbed(&cfg, || {
            run(p, |c| {
                let me = c.rank();
                let src = (me + p - 1) % p;
                let dst = (me + 1) % p;
                // Pre-post every receive for tag 0 before sending anything.
                let reqs: Vec<_> = (0..nmsgs).map(|_| c.irecv(src, 0)).collect();
                for m in 0..nmsgs {
                    c.send_u64(dst, 0, &[encode(me, 0, m)]);
                    c.send_u64(dst, 1, &[encode(me, 1, m)]);
                }
                for (m, req) in reqs.into_iter().enumerate() {
                    assert_eq!(
                        req.wait_u64(),
                        vec![encode(src, 0, m)],
                        "rank {me}: pre-posted channel (src={src}, tag=0) broke at seq {m}"
                    );
                }
                for m in 0..nmsgs {
                    assert_eq!(c.recv_u64(src, 1), vec![encode(src, 1, m)]);
                }
            })
        });
    }
}

/// One collective-heavy phase program: tree broadcast, recursive-doubling
/// allreduce, and allgather, each under its own phase label.
fn collective_phases(p: usize) -> WorldStats {
    let out = run(p, |c| {
        c.set_phase_with_flops("bcast", 0);
        let data = if c.rank() == 0 {
            (0..96).map(|i| i as f64).collect()
        } else {
            Vec::new()
        };
        let panel = c.bcast_buf_f64(0, data);
        c.set_phase_with_flops("allreduce", 0);
        let mut acc = vec![panel[c.rank() % panel.len()]; 8];
        c.allreduce_sum(&mut acc);
        c.set_phase_with_flops("allgather", 0);
        let mine = vec![c.rank() as f64; 4];
        let all = c.allgather_f64(&mine);
        c.set_phase_with_flops("_end", 0);
        (acc[0], all.len())
    });
    out.stats
}

/// Cross-seed equality for the tree collectives over the `XHARNESS_SEEDS`
/// matrix: every perturbed run must be communication-identical to the
/// unperturbed baseline — same per-rank totals, same per-phase byte
/// counts, at every world size including non-powers-of-two (where
/// allgather falls back to the ring schedule).
#[test]
fn tree_collective_volumes_are_seed_invariant() {
    for p in [2, 3, 4, 7, 8] {
        let baseline = collective_phases(p);
        assert!(baseline.total_bytes_sent() > 0 || p == 1);
        for seed in seeds(4) {
            let cfg = PerturbConfig::aggressive(seed);
            let perturbed = run_perturbed(&cfg, || collective_phases(p));
            let violations = check_stats_equal(&baseline, &perturbed);
            assert!(
                violations.is_empty(),
                "p={p} seed={seed}: perturbed collectives changed traffic: {violations:?}"
            );
            assert_eq!(
                baseline.phase_totals(),
                perturbed.phase_totals(),
                "p={p} seed={seed}: per-phase byte counts diverged"
            );
        }
    }
}
