//! Cross-feature runtime semantics: sub-communicators, collectives, RMA
//! windows and statistics interacting on one world — the integration
//! surface the factorization schedules lean on.

use conflux_rs::xmpi::{run, Grid3};

#[test]
fn grid_subcomms_route_independent_traffic() {
    // A full 2.5D communicator kit on one world: every fibre runs its own
    // collective concurrently, with the correct members.
    let g = Grid3::new(2, 3, 2);
    let out = run(g.size(), move |c| {
        let (pi, pj, pk) = g.coords(c.rank());
        let zfib = c.subcomm(1, &g.z_members(pi, pj));
        let yrow = c.subcomm(2, &g.y_members(pi, pk));
        let xcol = c.subcomm(3, &g.x_members(pj, pk));
        // z: sum of layer indices for this (pi, pj).
        let mut zb = vec![pk as f64];
        zfib.reduce_sum_f64(0, &mut zb);
        // y: sum of pj over the row.
        let mut yb = vec![pj as f64];
        yrow.allreduce_sum(&mut yb);
        // x: gather pi values.
        let xs = xcol.allgather_f64(&[pi as f64]);
        (
            zb[0],
            yb[0],
            xs.iter().map(|v| v[0] as usize).collect::<Vec<_>>(),
        )
    });
    for rank in 0..g.size() {
        let (_, pj, pk) = g.coords(rank);
        let (zsum, ysum, xs) = &out.results[rank];
        if pk == 0 {
            assert_eq!(*zsum, (0..g.pz).sum::<usize>() as f64, "z-reduce at root");
        }
        assert_eq!(*ysum, (0..g.py).sum::<usize>() as f64);
        assert_eq!(xs, &(0..g.px).collect::<Vec<_>>());
        let _ = pj;
    }
}

#[test]
fn rma_and_messages_share_accounting() {
    let out = run(2, |c| {
        // 100 words by message, 50 by one-sided put.
        if c.rank() == 0 {
            c.send_f64(1, 0, &vec![1.0; 100]);
        } else {
            c.recv_f64(0, 0);
        }
        let win = c.window(1, 64);
        if c.rank() == 0 {
            win.put(1, 0, &vec![2.0; 50]);
        }
        win.fence();
    });
    // Rank 0 sent 150 words = 1200 bytes of payload (barrier/fence messages
    // are zero-length).
    assert_eq!(out.stats.ranks[0].bytes_sent, 1200);
    assert_eq!(out.stats.ranks[1].bytes_recv, 1200);
}

#[test]
fn phase_attribution_splits_traffic() {
    let out = run(2, |c| {
        c.set_phase("alpha");
        if c.rank() == 0 {
            c.send_f64(1, 0, &[0.0; 10]);
        } else {
            c.recv_f64(0, 0);
        }
        c.set_phase("beta");
        if c.rank() == 0 {
            c.send_f64(1, 1, &[0.0; 30]);
        } else {
            c.recv_f64(0, 1);
        }
    });
    let phases = out.stats.phase_totals();
    assert_eq!(phases["alpha"].0, 80);
    assert_eq!(phases["beta"].0, 240);
}

#[test]
fn concurrent_windows_and_collectives_do_not_interfere() {
    let out = run(4, |c| {
        let win = c.window(7, 4);
        win.local_write(0, &[c.rank() as f64; 4]);
        win.fence();
        // Interleave a collective with one-sided reads.
        let mut buf = vec![c.rank() as f64];
        c.allreduce_sum(&mut buf);
        let remote = win.get((c.rank() + 1) % 4, 0, 1)[0];
        (buf[0], remote)
    });
    for (rank, &(sum, remote)) in out.results.iter().enumerate() {
        assert_eq!(sum, 6.0);
        assert_eq!(remote, ((rank + 1) % 4) as f64);
    }
}

#[test]
fn deep_subcomm_nesting_keeps_contexts_apart() {
    // Build three levels of nesting and run the same tags at every level.
    let out = run(8, |c| {
        let half = if c.rank() < 4 {
            vec![0, 1, 2, 3]
        } else {
            vec![4, 5, 6, 7]
        };
        let l1 = c.subcomm(1, &half);
        let pair = if l1.rank() < 2 {
            vec![0, 1]
        } else {
            vec![2, 3]
        };
        let l2 = l1.subcomm(1, &pair);
        // Same user tag on all three communicators simultaneously.
        let me = c.rank() as f64;
        c.send_f64(c.rank() ^ 1, 42, &[me]);
        l1.send_f64(l1.rank() ^ 1, 42, &[me + 100.0]);
        l2.send_f64(l2.rank() ^ 1, 42, &[me + 200.0]);
        let w = c.recv_f64(c.rank() ^ 1, 42)[0];
        let a = l1.recv_f64(l1.rank() ^ 1, 42)[0];
        let b = l2.recv_f64(l2.rank() ^ 1, 42)[0];
        (w, a, b)
    });
    for (rank, &(w, a, b)) in out.results.iter().enumerate() {
        let partner = (rank ^ 1) as f64;
        assert_eq!(w, partner);
        assert_eq!(a, partner + 100.0);
        assert_eq!(b, partner + 200.0);
    }
}

#[test]
fn world_stats_conservation_across_features() {
    // Sent must equal received globally no matter which transport was used.
    let out = run(3, |c| {
        let win = c.window(9, 8);
        win.put((c.rank() + 1) % 3, 0, &[1.0, 2.0]);
        win.fence();
        let pieces = c.allgather_f64(&vec![0.0; c.rank() + 1]);
        assert_eq!(pieces.len(), 3);
        c.barrier();
    });
    assert_eq!(out.stats.total_bytes_sent(), out.stats.total_bytes_recv());
}
