//! The theory ↔ systems contract, measured: the paper's lower bounds must
//! hold for the *measured* traffic of every schedule, COnfLUX must sit near
//! its `N³/(P√M)` model, and the qualitative orderings of the evaluation
//! section (masking < swapping, 2.5D < 2D at scale) must be reproduced.

use conflux_rs::dense::gen::{random_matrix, random_spd};
use conflux_rs::factor::confchox::ConfchoxConfig;
use conflux_rs::factor::conflux::ConfluxConfig;
use conflux_rs::factor::lu25d_swap::{lu25d_swap, SwapLuConfig};
use conflux_rs::factor::models::{conflux_model, MachineParams};
use conflux_rs::factor::twod::TwodConfig;
use conflux_rs::factor::{confchox_cholesky, conflux_lu, twod_lu};
use conflux_rs::pebbles::bounds::{cholesky_io_lower_bound, lu_io_lower_bound};
use conflux_rs::xmpi::{Grid2, Grid3};

/// Average words (8-byte elements) transferred per rank: (sent+recv)/2/8.
fn words_per_rank(stats: &conflux_rs::xmpi::WorldStats) -> f64 {
    stats.avg_rank_bytes() / 16.0
}

#[test]
fn measured_lu_volume_respects_the_lower_bound() {
    // Q_LU ≥ 2N³/(3P√M) + N²/(2P) with M = c·N²/P must hold for every
    // executable LU schedule (the bound is for the optimal schedule, so any
    // real one is above it).
    let n = 128;
    let a = random_matrix(n, n, 1);
    for (label, measured, c) in [
        (
            "conflux",
            conflux_lu(
                &ConfluxConfig::new(n, 8, Grid3::new(2, 2, 2)).volume_only(),
                &a,
            )
            .unwrap()
            .stats,
            2usize,
        ),
        (
            "swap",
            lu25d_swap(
                &SwapLuConfig::new(n, 8, Grid3::new(2, 2, 2)).volume_only(),
                &a,
            )
            .unwrap()
            .stats,
            2,
        ),
        (
            "twod",
            twod_lu(&TwodConfig::new(n, 16, Grid2::new(2, 4)).volume_only(), &a)
                .unwrap()
                .stats,
            1,
        ),
    ] {
        let p = 8;
        let m = (c * n * n) as f64 / p as f64;
        let bound = lu_io_lower_bound(n, p, m);
        let w = words_per_rank(&measured);
        assert!(
            w >= bound,
            "{label}: measured {w:.0} words/rank below the lower bound {bound:.0}"
        );
    }
}

#[test]
fn measured_cholesky_volume_respects_the_lower_bound() {
    let n = 128;
    let p = 8;
    let a = random_spd(n, 2);
    let st = confchox_cholesky(
        &ConfchoxConfig::new(n, 8, Grid3::new(2, 2, 2)).volume_only(),
        &a,
    )
    .unwrap()
    .stats;
    let m = (2 * n * n) as f64 / p as f64;
    let bound = cholesky_io_lower_bound(n, p, m);
    let w = words_per_rank(&st);
    assert!(w >= bound, "measured {w:.0} below bound {bound:.0}");
}

#[test]
fn conflux_tracks_its_cost_model() {
    // Lemma 10's model with the second-order terms must predict the
    // measured volume within a small factor at simulation scale.
    for (n, grid, v) in [
        (256usize, Grid3::new(2, 2, 2), 8usize),
        (256, Grid3::new(4, 4, 1), 8),
        (512, Grid3::new(4, 4, 4), 8),
    ] {
        let a = random_matrix(n, n, 3);
        let stats = conflux_lu(&ConfluxConfig::new(n, v, grid).volume_only(), &a)
            .unwrap()
            .stats;
        let p = grid.size();
        let m = (grid.pz * n * n) as f64 / p as f64;
        let model = conflux_model(MachineParams::with_memory(n, p, m));
        let measured = words_per_rank(&stats);
        let ratio = measured / model;
        assert!(
            (0.3..3.0).contains(&ratio),
            "n={n} grid={grid:?}: measured/model = {ratio:.2}"
        );
    }
}

#[test]
fn masking_beats_swapping_and_swap_traffic_scales_with_replication() {
    // §7.3's argument, measured two ways: (1) the swap variant always moves
    // more data than masking COnfLUX at the same grid; (2) the row-swap
    // traffic itself grows with the replication depth, because every
    // layer's accumulator rows must travel (swap volume per exchanged row
    // ∝ (1 + c): one original copy + c accumulators).
    let n = 96;
    let a = random_matrix(n, n, 4);
    let run_at = |pz: usize| {
        let grid = Grid3::new(2, 2, pz);
        let mask = conflux_lu(&ConfluxConfig::new(n, 8, grid).volume_only(), &a)
            .unwrap()
            .stats;
        let swap = lu25d_swap(&SwapLuConfig::new(n, 8, grid).volume_only(), &a)
            .unwrap()
            .stats;
        (mask, swap)
    };
    let (mask1, swap1) = run_at(1);
    let (mask4, swap4) = run_at(4);
    assert!(
        swap1.total_bytes_sent() > mask1.total_bytes_sent(),
        "c=1: swap must cost more"
    );
    assert!(
        swap4.total_bytes_sent() > mask4.total_bytes_sent(),
        "c=4: swap must cost more"
    );
    let swaps_at = |stats: &conflux_rs::xmpi::WorldStats| -> f64 {
        stats
            .phase_totals()
            .get("row_swaps")
            .map_or(0.0, |&(s, _)| s as f64)
    };
    let s1 = swaps_at(&swap1);
    let s4 = swaps_at(&swap4);
    assert!(s1 > 0.0, "swap phase must move data");
    assert!(
        s4 > 1.8 * s1,
        "swap traffic must scale with c: c=1 {s1:.0} B vs c=4 {s4:.0} B (expect ≈(1+c)/2 growth)"
    );
}

#[test]
fn conflux_beats_2d_at_the_largest_tested_scale() {
    // Fig. 8's qualitative claim at our largest affordable configuration.
    let n = 512;
    let p = 64;
    let a = random_matrix(n, n, 5);
    let cf = conflux_lu(
        &ConfluxConfig::new(n, 8, Grid3::new(4, 4, 4)).volume_only(),
        &a,
    )
    .unwrap()
    .stats
    .avg_rank_bytes();
    let td = twod_lu(
        &TwodConfig::new(n, 16, Grid2::near_square(p)).volume_only(),
        &a,
    )
    .unwrap()
    .stats
    .avg_rank_bytes();
    assert!(
        cf < td,
        "COnfLUX ({cf:.0} B/rank) must beat 2D ({td:.0} B/rank) at P={p}"
    );
}
