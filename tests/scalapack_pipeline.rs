//! The ScaLAPACK-compatibility pipeline end-to-end: a matrix handed over in
//! an arbitrary user block-cyclic layout is redistributed with the
//! COSTA-style transform on the simulated machine, factored with COnfLUX,
//! and validated — including round-trips through several unfriendly
//! layouts.

use conflux_rs::dense::gen::random_matrix;
use conflux_rs::dense::norms::lu_residual_perm;
use conflux_rs::factor::conflux::ConfluxConfig;
use conflux_rs::factor::conflux_lu;
use conflux_rs::layout::dist::assemble;
use conflux_rs::layout::{redistribute, BlockCyclic, DistMatrix};
use conflux_rs::xmpi::{run, Grid2, Grid3};

fn stage_and_factor(n: usize, user: BlockCyclic, cfg: &ConfluxConfig, seed: u64) {
    let a = random_matrix(n, n, seed);
    let target = BlockCyclic::new(n, n, cfg.v, cfg.v, Grid2::new(cfg.grid.px, cfg.grid.py));
    assert_eq!(user.nprocs(), target.nprocs(), "test layouts must share P");
    let aref = &a;
    let world = run(user.nprocs(), move |comm| {
        let mine = DistMatrix::from_global(user, user.grid.coords(comm.rank()), aref);
        redistribute(comm, &mine, target)
    });
    let staged = assemble(&target, &world.results);
    assert_eq!(staged, a, "redistribution must be lossless");
    // Staging volume is O(N²) total — the payload plus per-run headers
    // (three u64 per run; degenerate 1-wide blocks pay the 4x worst case).
    let payload = (n * n * 8) as u64;
    assert!(
        world.stats.total_bytes_sent() <= 4 * payload + 4096,
        "staging moved {} bytes for an {payload}-byte matrix",
        world.stats.total_bytes_sent()
    );
    let out = conflux_lu(cfg, &staged).unwrap();
    let res = lu_residual_perm(&a, out.packed.as_ref().unwrap(), &out.perm);
    assert!(res < 1e-10, "residual {res}");
}

#[test]
fn skinny_blocks_to_conflux_tiles() {
    let n = 96;
    let cfg = ConfluxConfig::new(n, 8, Grid3::new(2, 2, 1));
    stage_and_factor(n, BlockCyclic::new(n, n, 3, 7, Grid2::new(4, 1)), &cfg, 1);
}

#[test]
fn transposed_grid_shape() {
    let n = 96;
    let cfg = ConfluxConfig::new(n, 8, Grid3::new(2, 3, 1));
    stage_and_factor(n, BlockCyclic::new(n, n, 16, 16, Grid2::new(3, 2)), &cfg, 2);
}

#[test]
fn single_element_blocks_worst_case() {
    let n = 48;
    let cfg = ConfluxConfig::new(n, 8, Grid3::new(2, 2, 1));
    stage_and_factor(n, BlockCyclic::new(n, n, 1, 1, Grid2::new(2, 2)), &cfg, 3);
}

#[test]
fn scalapack_desc_array_round_trip_drives_the_same_pipeline() {
    // Build the layout from the 9-integer DESC interface, as a ScaLAPACK
    // wrapper would receive it.
    let n = 64;
    let grid = Grid2::new(2, 2);
    let desc_ints = BlockCyclic::new(n, n, 10, 6, grid).to_scalapack();
    let user = desc_ints.to_block_cyclic(grid);
    let cfg = ConfluxConfig::new(n, 8, Grid3::new(2, 2, 1));
    stage_and_factor(n, user, &cfg, 4);
}
