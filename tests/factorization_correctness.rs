//! Cross-crate integration: every distributed schedule must reproduce the
//! sequential `dense` reference factorization across grids, block sizes and
//! matrix classes — at sizes above the per-crate unit tests.

use conflux_rs::dense::gen::{needs_pivoting, random_matrix, random_spd, well_conditioned};
use conflux_rs::dense::norms::{lu_residual, lu_residual_perm, po_residual};
use conflux_rs::dense::{getrf, potrf};
use conflux_rs::factor::confchox::ConfchoxConfig;
use conflux_rs::factor::conflux::ConfluxConfig;
use conflux_rs::factor::lu25d_swap::{lu25d_swap, SwapLuConfig};
use conflux_rs::factor::twod::TwodConfig;
use conflux_rs::factor::{confchox_cholesky, conflux_lu, twod_cholesky, twod_lu};
use conflux_rs::xmpi::{Grid2, Grid3};

#[test]
fn conflux_matches_reference_across_grid_zoo() {
    let n = 96;
    let a = random_matrix(n, n, 1);
    for (grid, v) in [
        (Grid3::new(1, 1, 1), 12),
        (Grid3::new(3, 1, 1), 8),
        (Grid3::new(1, 3, 1), 8),
        (Grid3::new(2, 2, 2), 8),
        (Grid3::new(4, 4, 2), 8),
        (Grid3::new(2, 3, 2), 6),
        (Grid3::new(3, 3, 3), 12),
        (Grid3::new(4, 2, 4), 8),
    ] {
        let out = conflux_lu(&ConfluxConfig::new(n, v, grid), &a).unwrap();
        let res = lu_residual_perm(&a, out.packed.as_ref().unwrap(), &out.perm);
        assert!(res < 1e-10, "grid {grid:?} v={v}: residual {res}");
    }
}

#[test]
fn confchox_matches_reference_across_grid_zoo() {
    let n = 96;
    let a = random_spd(n, 2);
    for (grid, v) in [
        (Grid3::new(1, 1, 1), 12),
        (Grid3::new(2, 2, 2), 8),
        (Grid3::new(3, 2, 1), 8),
        (Grid3::new(2, 3, 2), 6),
        (Grid3::new(4, 4, 4), 8),
    ] {
        let out = confchox_cholesky(&ConfchoxConfig::new(n, v, grid), &a).unwrap();
        let res = po_residual(&a, out.l.as_ref().unwrap());
        assert!(res < 1e-10, "grid {grid:?} v={v}: residual {res}");
    }
}

#[test]
fn all_lu_schedules_agree_on_the_solution_space() {
    // Different pivot orders are fine; the factorizations must all
    // reconstruct A.
    let n = 64;
    for seed in [3u64, 4, 5] {
        let a = random_matrix(n, n, seed);
        let c = conflux_lu(&ConfluxConfig::new(n, 8, Grid3::new(2, 2, 2)), &a).unwrap();
        assert!(lu_residual_perm(&a, c.packed.as_ref().unwrap(), &c.perm) < 1e-10);
        let s = lu25d_swap(&SwapLuConfig::new(n, 8, Grid3::new(2, 2, 2)), &a).unwrap();
        assert!(lu_residual_perm(&a, s.packed.as_ref().unwrap(), &s.perm) < 1e-10);
        let t = twod_lu(&TwodConfig::new(n, 8, Grid2::new(2, 2)), &a).unwrap();
        assert!(lu_residual(&a, t.packed.as_ref().unwrap(), &t.ipiv) < 1e-10);
    }
}

#[test]
fn conflux_and_swap_variant_agree_on_the_first_pivot_set() {
    // Both run tournament pivoting over identical candidates at step 0
    // (before any masking/swapping divergence); afterwards the candidate
    // *grouping* differs — swapped rows change process-row membership — and
    // tournament pivoting, like any CALU-style heuristic, may then select
    // different (equally stable) pivot sets.
    let n = 48;
    let a = random_matrix(n, n, 6);
    let grid = Grid3::new(2, 2, 1);
    let c = conflux_lu(&ConfluxConfig::new(n, 8, grid), &a).unwrap();
    let s = lu25d_swap(&SwapLuConfig::new(n, 8, grid), &a).unwrap();
    let mut cp: Vec<usize> = c.perm[..8].to_vec();
    let mut sp: Vec<usize> = s.perm[..8].to_vec();
    cp.sort_unstable();
    sp.sort_unstable();
    assert_eq!(cp, sp, "step 0 pivot sets must coincide");
}

#[test]
fn tournament_handles_adversarial_pivot_distributions() {
    // Every pivot lives on the same process row: the tournament and the
    // pivot-row reduction paths get maximally imbalanced.
    let n = 48;
    let v = 8;
    let grid = Grid3::new(2, 2, 2);
    let mut a = well_conditioned(n, 7);
    // Make rows in tiles owned by process row 0 dominant for every column.
    for t in 0..n / v {
        for j in 0..n {
            let dominant_row = (2 * t) % (n / v) * v + j % v;
            a[(dominant_row, j)] += 50.0;
        }
    }
    let out = conflux_lu(&ConfluxConfig::new(n, v, grid), &a).unwrap();
    let res = lu_residual_perm(&a, out.packed.as_ref().unwrap(), &out.perm);
    assert!(res < 1e-9, "residual {res}");
}

#[test]
fn hard_pivoting_matrices_stay_stable_everywhere() {
    let n = 64;
    let a = needs_pivoting(n, 8);
    let c = conflux_lu(&ConfluxConfig::new(n, 8, Grid3::new(2, 2, 2)), &a).unwrap();
    assert!(lu_residual_perm(&a, c.packed.as_ref().unwrap(), &c.perm) < 1e-8);
    let t = twod_lu(&TwodConfig::new(n, 8, Grid2::new(2, 2)), &a).unwrap();
    assert!(lu_residual(&a, t.packed.as_ref().unwrap(), &t.ipiv) < 1e-8);
}

#[test]
fn distributed_results_match_sequential_dense_kernels_exactly_on_1_rank() {
    // On a single rank with the same block size, 2D LU follows the exact
    // same pivot path as the blocked sequential getrf.
    let n = 40;
    let a = random_matrix(n, n, 9);
    let t = twod_lu(&TwodConfig::new(n, 8, Grid2::new(1, 1)), &a).unwrap();
    let mut seq = a.clone();
    let ipiv = getrf(&mut seq, 8).unwrap();
    assert_eq!(t.ipiv, ipiv);
    let packed = t.packed.unwrap();
    for i in 0..n {
        for j in 0..n {
            assert!((packed[(i, j)] - seq[(i, j)]).abs() < 1e-10);
        }
    }
    // Cholesky likewise.
    let spd = random_spd(n, 10);
    let tc = twod_cholesky(&TwodConfig::new(n, 8, Grid2::new(1, 1)), &spd).unwrap();
    let mut seqc = spd.clone();
    potrf(&mut seqc, 8).unwrap();
    let l = tc.l.unwrap();
    for i in 0..n {
        for j in 0..=i {
            assert!((l[(i, j)] - seqc[(i, j)]).abs() < 1e-10);
        }
    }
}
