//! End-to-end theory pipeline: DAAP program → automatic cDAG translation →
//! X-partition → schedule → pebble-game verification → lower-bound
//! derivation → exact optimum — every layer of `pebbles` chained on the
//! same kernels, so a regression anywhere in the chain breaks here.

use conflux_rs::pebbles::bounds::{cholesky_io_lower_bound, lu_io_lower_bound};
use conflux_rs::pebbles::cdag::{cholesky_cdag, lu_cdag, Cdag};
use conflux_rs::pebbles::daap::{cholesky_program, lu_program};
use conflux_rs::pebbles::derive::{cholesky_counts, derive_program_bound, lu_counts};
use conflux_rs::pebbles::game::{greedy_schedule, verify};
use conflux_rs::pebbles::interpret::{build_cdag_interleaved, Bound, LoopNest};
use conflux_rs::pebbles::opt_game::optimal_q;
use conflux_rs::pebbles::schedule::{required_memory, schedule_from_partition};
use conflux_rs::pebbles::xpart::check_x_partition;

/// Build the LU cDAG through the *generic* interpreter.
fn lu_generic(n: usize) -> Cdag {
    let s1 = LoopNest::new(vec![(Bound::VarPlus(0, 1), Bound::Const(n as i64))]);
    let s2 = LoopNest::new(vec![
        (Bound::VarPlus(0, 1), Bound::Const(n as i64)),
        (Bound::VarPlus(0, 1), Bound::Const(n as i64)),
    ]);
    build_cdag_interleaved(&lu_program(), n, &[s1, s2])
}

#[test]
fn full_chain_on_lu() {
    let n = 6;
    let m = 12;
    // 1. Generic translation agrees with the hand builder on vertex counts.
    let g = lu_generic(n);
    let hand = lu_cdag(n);
    assert_eq!(g.len(), hand.len());
    assert_eq!(g.inputs().len(), hand.inputs().len());

    // 2. A topological chunking is a valid X-partition.
    let parts: Vec<Vec<_>> = g.topo_order().chunks(10).map(|c| c.to_vec()).collect();
    assert!(check_x_partition(&g, &parts, g.len()).is_ok());

    // 3. The partition's schedule verifies and its cost sandwiches between
    //    the derived bound and … itself (it is an upper bound).
    let moves = schedule_from_partition(&g, &parts);
    let mem = required_memory(&g, &parts);
    let q_part = verify(&g, &moves, mem)
        .expect("partition schedule must be legal")
        .q;

    // 4. Greedy at the same memory also verifies.
    let q_greedy = verify(&g, &greedy_schedule(&g, mem), mem)
        .expect("greedy legal")
        .q;

    // 5. The program-level derived bound lower-bounds both.
    let derived = derive_program_bound(&lu_program(), &lu_counts(n), m as f64, 1);
    assert!(
        derived.q_parallel <= q_part as f64,
        "{} vs {q_part}",
        derived.q_parallel
    );
    assert!(derived.q_parallel <= q_greedy as f64);

    // 6. And the derived bound matches the closed form.
    let closed = lu_io_lower_bound(n, 1, m as f64);
    let rel = (derived.q_parallel - closed).abs() / closed;
    assert!(
        rel < 0.25,
        "derived {} vs closed {closed}",
        derived.q_parallel
    );
}

#[test]
fn full_chain_on_cholesky_with_exact_optimum() {
    let n = 3;
    let g = cholesky_cdag(n);
    for m in [4usize, 6] {
        let opt = optimal_q(&g, m, 1 << 23).expect("tiny graph");
        let lb = cholesky_io_lower_bound(n, 1, m as f64);
        let greedy = verify(&g, &greedy_schedule(&g, m), m).unwrap().q;
        assert!(
            lb <= opt as f64 && opt <= greedy,
            "M={m}: {lb} ≤ {opt} ≤ {greedy} violated"
        );
        // The derived program bound agrees with the closed form here too.
        let derived = derive_program_bound(&cholesky_program(), &cholesky_counts(n), m as f64, 1);
        assert!(derived.q_parallel <= opt as f64 + 1e-9);
    }
}

#[test]
fn partition_granularity_interpolates_between_extremes() {
    // One part = compulsory traffic; singleton parts = maximal traffic; the
    // sequence in between is bracketed by those extremes.
    let g = lu_cdag(6);
    let q_at = |k: usize| {
        let parts: Vec<Vec<_>> = g.topo_order().chunks(k).map(|c| c.to_vec()).collect();
        let mem = required_memory(&g, &parts);
        verify(&g, &schedule_from_partition(&g, &parts), mem)
            .unwrap()
            .q
    };
    let coarse = q_at(g.len());
    let mid = q_at(8);
    let fine = q_at(1);
    assert!(
        coarse <= mid && mid <= fine,
        "{coarse} ≤ {mid} ≤ {fine} violated"
    );
}

#[test]
fn derived_statement_classification_is_stable_across_sizes() {
    // Whatever the problem size, LU's S1 must take the Lemma 6 path and S2
    // the KKT path, with ρ growing like √M.
    use conflux_rs::pebbles::derive::{analyze_statement, RhoBound};
    let prog = lu_program();
    for m in [64.0, 256.0] {
        let s1 = analyze_statement(&prog.statements[0], 1.0, m);
        assert!(matches!(s1.rho, RhoBound::SingleUse { u: 1 }));
        let s2 = analyze_statement(&prog.statements[1], 1.0, m);
        match s2.rho {
            RhoBound::Kkt { rho, .. } => {
                let expect = m.sqrt() / 2.0;
                assert!((rho - expect).abs() / expect < 0.1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
