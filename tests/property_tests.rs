//! Property-based tests over the cross-crate pipelines: random problem
//! shapes, random grids, random layouts — the invariants must hold for all
//! of them, not just the hand-picked unit-test configurations.

use conflux_rs::dense::gen::random_matrix;
use conflux_rs::dense::norms::{lu_residual_perm, po_residual};
use conflux_rs::dense::{gemm, Matrix, Trans};
use conflux_rs::factor::confchox::ConfchoxConfig;
use conflux_rs::factor::conflux::ConfluxConfig;
use conflux_rs::factor::{confchox_cholesky, conflux_lu};
use conflux_rs::layout::dist::assemble;
use conflux_rs::layout::{redistribute, BlockCyclic, DistMatrix};
use conflux_rs::xmpi::{run, Grid2, Grid3};
use proptest::prelude::*;

/// Strategy: a small but non-trivial 2.5D configuration `(nt, v, grid)`
/// with all divisibility constraints satisfied by construction.
fn grid_strategy() -> impl Strategy<Value = (usize, usize, Grid3)> {
    (1usize..=4, 1usize..=3, 1usize..=3, 1usize..=2, 2usize..=6).prop_map(
        |(pxm, py, pz, vmul, nt)| {
            // px chosen ≥ … anything ≥1; v must be a multiple of pz.
            let px = pxm;
            let v = vmul * pz * 2; // even multiples keep sizes moderate
            (nt, v, Grid3::new(px, py, pz))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn conflux_factors_any_valid_configuration((nt, v, grid) in grid_strategy(), seed in 0u64..1000) {
        let n = nt * v;
        let a = random_matrix(n, n, seed);
        let out = conflux_lu(&ConfluxConfig::new(n, v, grid), &a).unwrap();
        // perm is a permutation.
        let mut sorted = out.perm.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
        let res = lu_residual_perm(&a, out.packed.as_ref().unwrap(), &out.perm);
        prop_assert!(res < 1e-8, "residual {} for n={} v={} grid={:?}", res, n, v, grid);
    }

    #[test]
    fn confchox_factors_any_valid_configuration((nt, v, grid) in grid_strategy(), seed in 0u64..1000) {
        let n = nt * v;
        // SPD with margin: BBᵀ + n·I.
        let b = random_matrix(n, n, seed);
        let mut a = Matrix::zeros(n, n);
        gemm(Trans::N, Trans::T, 1.0, b.as_ref(), b.as_ref(), 0.0, a.as_mut());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let out = confchox_cholesky(&ConfchoxConfig::new(n, v, grid), &a).unwrap();
        let res = po_residual(&a, out.l.as_ref().unwrap());
        prop_assert!(res < 1e-8, "residual {} for n={} v={} grid={:?}", res, n, v, grid);
    }

    #[test]
    fn redistribution_is_lossless_between_random_layouts(
        m in 1usize..40,
        nn in 1usize..40,
        rb1 in 1usize..8, cb1 in 1usize..8,
        rb2 in 1usize..8, cb2 in 1usize..8,
        grid_pick in 0usize..4,
        seed in 0u64..1000,
    ) {
        let grids = [Grid2::new(1, 4), Grid2::new(2, 2), Grid2::new(4, 1), Grid2::new(1, 1)];
        let g1 = grids[grid_pick];
        let g2 = grids[(grid_pick + 1) % 4];
        // Both layouts must span the same communicator size.
        let p = g1.size().max(g2.size());
        let g1 = if g1.size() == p { g1 } else { Grid2::new(1, p) };
        let g2 = if g2.size() == p { g2 } else { Grid2::new(p, 1) };
        let src = BlockCyclic::new(m, nn, rb1, cb1, g1);
        let dst = BlockCyclic::new(m, nn, rb2, cb2, g2);
        let a = random_matrix(m, nn, seed);
        let aref = &a;
        let world = run(p, move |comm| {
            let mine = DistMatrix::from_global(src, src.grid.coords(comm.rank()), aref);
            redistribute(comm, &mine, dst)
        });
        let back = assemble(&dst, &world.results);
        prop_assert_eq!(back, a);
    }

    #[test]
    fn measured_volume_is_deterministic(seed in 0u64..200) {
        // Same configuration, same matrix → byte-identical traffic. The
        // schedules are deterministic, so volume measurements are exactly
        // reproducible (this is what makes the experiment suite meaningful).
        let n = 32;
        let a = random_matrix(n, n, seed);
        let cfg = ConfluxConfig::new(n, 4, Grid3::new(2, 2, 2)).volume_only();
        let v1 = conflux_lu(&cfg, &a).unwrap().stats.total_bytes_sent();
        let v2 = conflux_lu(&cfg, &a).unwrap().stats.total_bytes_sent();
        prop_assert_eq!(v1, v2);
    }
}
