//! HPL-style dense solve: factor `A` with COnfLUX, then solve `Ax = b` by
//! forward/backward substitution with the collected factors, and compare
//! the communication volume against the 2D ScaLAPACK-style baseline — the
//! workload the paper's introduction motivates with the TOP500 benchmark.
//!
//! ```text
//! cargo run --release --example linpack_style
//! ```

use conflux_rs::dense::gemm::Trans;
use conflux_rs::dense::gen::random_matrix;
use conflux_rs::dense::trsm::{trsm, Diag, Side, Uplo};
use conflux_rs::dense::Matrix;
use conflux_rs::factor::conflux::ConfluxConfig;
use conflux_rs::factor::conflux_lu;
use conflux_rs::factor::twod::TwodConfig;
use conflux_rs::factor::twod_lu;

fn main() {
    let n = 384;
    let p = 16;
    let a = random_matrix(n, n, 1);
    // Right-hand side with a known solution x* = (1, 1, …, 1).
    let xstar = Matrix::from_fn(n, 1, |_, _| 1.0);
    let mut b = Matrix::zeros(n, 1);
    conflux_rs::dense::gemm::gemm(
        Trans::N,
        Trans::N,
        1.0,
        a.as_ref(),
        xstar.as_ref(),
        0.0,
        b.as_mut(),
    );

    // ---- Factor with COnfLUX ------------------------------------------------
    let cfg = ConfluxConfig::auto(n, p);
    let out = conflux_lu(&cfg, &a).expect("factorization failed");
    let f = out.packed.as_ref().unwrap();

    // ---- Solve: L·y = P·b, then U·x = y --------------------------------------
    let mut y = Matrix::from_fn(n, 1, |i, _| b[(out.perm[i], 0)]);
    trsm(
        Side::Left,
        Uplo::Lower,
        Trans::N,
        Diag::Unit,
        1.0,
        f.as_ref(),
        y.as_mut(),
    );
    trsm(
        Side::Left,
        Uplo::Upper,
        Trans::N,
        Diag::NonUnit,
        1.0,
        f.as_ref(),
        y.as_mut(),
    );

    let err = (0..n)
        .map(|i| (y[(i, 0)] - 1.0).abs())
        .fold(0.0_f64, f64::max);
    println!("HPL-style solve: N={n}, P={p}");
    println!("  max |x_i − 1|        = {err:.3e}");

    // ---- Communication comparison vs the 2D baseline -------------------------
    let v25 = out.stats.max_rank_bytes();
    let base = twod_lu(&TwodConfig::auto(n, p).volume_only(), &a).expect("2D failed");
    let v2d = base.stats.max_rank_bytes();
    println!("  COnfLUX max bytes/rank   = {v25}");
    println!("  2D (MKL/SLATE) max bytes = {v2d}");
    println!(
        "  ratio 2D / COnfLUX       = {:.2}x",
        v2d as f64 / v25 as f64
    );
    assert!(err < 1e-8, "solution drifted");
}
