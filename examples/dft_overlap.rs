//! Density-functional-theory style workload: Cholesky-factor the overlap
//! matrix of a synthetic Gaussian basis set — the paper's motivating
//! application class (CP2K / RPA simulations factorize matrices of atom
//! interactions with N from 1,024 to 131,072).
//!
//! The overlap matrix `S_ij = exp(−‖r_i − r_j‖²/2σ²)` of randomly placed
//! atoms is symmetric positive definite; its Cholesky factor orthogonalizes
//! the basis. We factor it with COnfCHOX and with the 2D baseline, check
//! both, and report the communication saving.
//!
//! ```text
//! cargo run --release --example dft_overlap
//! ```

use conflux_rs::dense::norms::po_residual;
use conflux_rs::dense::Matrix;
use conflux_rs::factor::confchox::ConfchoxConfig;
use conflux_rs::factor::confchox_cholesky;
use conflux_rs::factor::twod::TwodConfig;
use conflux_rs::factor::twod_cholesky;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Synthetic Gaussian-overlap matrix of `n` "atoms" in a 3D box.
fn overlap_matrix(n: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let box_side = (n as f64).cbrt() * 2.0;
    let pos: Vec<[f64; 3]> = (0..n)
        .map(|_| {
            [
                rng.gen_range(0.0..box_side),
                rng.gen_range(0.0..box_side),
                rng.gen_range(0.0..box_side),
            ]
        })
        .collect();
    let sigma2 = 2.0 * 0.8_f64 * 0.8;
    let mut s = Matrix::from_fn(n, n, |i, j| {
        let d2: f64 = (0..3).map(|k| (pos[i][k] - pos[j][k]).powi(2)).sum();
        (-d2 / sigma2).exp()
    });
    // Small diagonal regularization keeps the synthetic basis numerically
    // well-posed (near-coincident random atoms can make S near-singular).
    for i in 0..n {
        s[(i, i)] += 0.1;
    }
    s
}

fn main() {
    let n = 320;
    let p = 16;
    println!("DFT overlap factorization: {n} basis functions, {p} ranks");
    let s = overlap_matrix(n, 11);

    let cfg = ConfchoxConfig::auto(n, p);
    println!(
        "  COnfCHOX grid [{},{},{}], block v={}",
        cfg.grid.px, cfg.grid.py, cfg.grid.pz, cfg.v
    );
    let ours = confchox_cholesky(&cfg, &s).expect("overlap matrix must be SPD");
    let res = po_residual(&s, ours.l.as_ref().unwrap());
    println!("  ‖S − LLᵀ‖/‖S‖ (COnfCHOX) = {res:.3e}");

    let base = twod_cholesky(&TwodConfig::auto(n, p), &s).expect("2D cholesky failed");
    let res2d = po_residual(&s, base.l.as_ref().unwrap());
    println!("  ‖S − LLᵀ‖/‖S‖ (2D)       = {res2d:.3e}");

    let ours_b = ours.stats.max_rank_bytes();
    let base_b = base.stats.max_rank_bytes();
    println!("  max bytes/rank: COnfCHOX = {ours_b}, 2D = {base_b}");
    println!(
        "  communication ratio 2D / COnfCHOX = {:.2}x",
        base_b as f64 / ours_b as f64
    );
    assert!(res < 1e-9 && res2d < 1e-9);
}
