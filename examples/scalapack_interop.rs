//! ScaLAPACK layout interoperability: start from a matrix distributed in a
//! user's arbitrary block-cyclic layout (as a ScaLAPACK caller would hand
//! it over, described by a `DESC` array), redistribute it on the simulated
//! machine with the COSTA-style transform, factor, and validate — the
//! "fully ScaLAPACK-compatible" path the paper ships.
//!
//! ```text
//! cargo run --release --example scalapack_interop
//! ```

use conflux_rs::dense::gen::random_matrix;
use conflux_rs::dense::norms::lu_residual_perm;
use conflux_rs::factor::conflux::ConfluxConfig;
use conflux_rs::factor::conflux_lu;
use conflux_rs::layout::dist::assemble;
use conflux_rs::layout::{redistribute, BlockCyclic, DistMatrix};
use conflux_rs::xmpi::{run, Grid2};

fn main() {
    let n = 192;
    let p = 4;

    // The user's layout: 2×4 grid, skinny 6×10 blocks (nothing like ours),
    // described by its ScaLAPACK DESC array.
    let user_desc = BlockCyclic::new(n, n, 6, 10, Grid2::new(4, 1));
    let sd = user_desc.to_scalapack();
    println!(
        "user DESC: M={} N={} MB={} NB={} LLD={}",
        sd.m, sd.n, sd.mb, sd.nb, sd.lld
    );

    // The layout COnfLUX wants: square v×v blocks on its layer-0 grid.
    let cfg = ConfluxConfig::auto(n, p);
    let ours = BlockCyclic::new(n, n, cfg.v, cfg.v, Grid2::new(cfg.grid.px, cfg.grid.py));

    let a = random_matrix(n, n, 5);

    // Redistribute on the simulated machine (measured traffic), gather, and
    // factor. A production integration would keep the shards in place; here
    // we validate the transform end-to-end.
    let a_for_world = a.clone();
    let world = run(user_desc.nprocs(), |comm| {
        let mine =
            DistMatrix::from_global(user_desc, user_desc.grid.coords(comm.rank()), &a_for_world);
        redistribute(comm, &mine, ours)
    });
    println!(
        "redistribution moved {} bytes ({} per rank avg) — O(N²/P) staging, as the paper assumes",
        world.stats.total_bytes_sent(),
        world.stats.avg_rank_bytes() as u64
    );
    let staged = assemble(&ours, &world.results);
    assert_eq!(staged, a, "layout transform must be lossless");

    let out = conflux_lu(&cfg, &staged).expect("factorization failed");
    let res = lu_residual_perm(&a, out.packed.as_ref().unwrap(), &out.perm);
    println!("factored after redistribution: ‖PA − LU‖/‖A‖ = {res:.3e}");
    assert!(res < 1e-10);
}
