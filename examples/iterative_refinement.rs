//! Iterative refinement on top of a COnfLUX factorization — the pattern the
//! paper's related work highlights (Haidar et al.: factor fast/rough, then
//! refine the linear solve back to full accuracy).
//!
//! We factor with COnfLUX, deliberately damage the factor (standing in for
//! a low-precision factorization), and let refinement against the original
//! matrix recover the solution.
//!
//! ```text
//! cargo run --release --example iterative_refinement
//! ```

use conflux_rs::dense::gemm::{gemm, Trans};
use conflux_rs::dense::gen::random_matrix;
use conflux_rs::dense::refine::lu_refine;
use conflux_rs::dense::Matrix;
use conflux_rs::factor::conflux::ConfluxConfig;
use conflux_rs::factor::conflux_lu;

fn main() {
    let n = 256;
    let p = 8;
    let a = random_matrix(n, n, 3);
    let xstar = Matrix::from_fn(n, 1, |i, _| ((i % 7) as f64) - 3.0);
    let mut b = Matrix::zeros(n, 1);
    gemm(
        Trans::N,
        Trans::N,
        1.0,
        a.as_ref(),
        xstar.as_ref(),
        0.0,
        b.as_mut(),
    );

    let out = conflux_lu(&ConfluxConfig::auto(n, p), &a).expect("factorization failed");
    let mut packed = out.packed.unwrap();

    // Stand-in for a low-precision factor: perturb it at the 1e-6 level.
    for i in 0..n {
        for j in 0..n {
            packed[(i, j)] *= 1.0 + 1e-6 * (((i * 31 + j * 17) % 13) as f64 - 6.0);
        }
    }

    let refined = lu_refine(&a, &packed, &out.perm, &b, 20, 1e-12);
    println!("iterative refinement over a damaged COnfLUX factor (N={n}, P={p}):");
    for (it, r) in refined.residuals.iter().enumerate() {
        println!("  sweep {it}: ‖b − A·x‖_max = {r:.3e}");
    }
    let err = (0..n)
        .map(|i| (refined.x[(i, 0)] - xstar[(i, 0)]).abs())
        .fold(0.0_f64, f64::max);
    println!(
        "  final max |x − x*| = {err:.3e} after {} sweeps",
        refined.iterations
    );
    assert!(err < 1e-8, "refinement should recover the solution");
}
