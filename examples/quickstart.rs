//! Quickstart: factor one matrix with COnfLUX and one with COnfCHOX on a
//! simulated 8-rank machine, validate the factors, and inspect the measured
//! communication.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use conflux_rs::dense::gen::{random_matrix, random_spd};
use conflux_rs::dense::norms::{lu_residual_perm, po_residual};
use conflux_rs::factor::confchox::ConfchoxConfig;
use conflux_rs::factor::conflux::ConfluxConfig;
use conflux_rs::factor::{confchox_cholesky, conflux_lu};

fn main() {
    let n = 256;
    let p = 8;

    // ---- LU with COnfLUX -------------------------------------------------
    let a = random_matrix(n, n, 42);
    let cfg = ConfluxConfig::auto(n, p);
    println!(
        "COnfLUX: N={n}, P={p}, grid=[{},{},{}], block v={}",
        cfg.grid.px, cfg.grid.py, cfg.grid.pz, cfg.v
    );
    let lu = conflux_lu(&cfg, &a).expect("factorization failed");
    let res = lu_residual_perm(&a, lu.packed.as_ref().unwrap(), &lu.perm);
    println!("  ‖PA − LU‖/‖A‖          = {res:.3e}");
    println!("  first five pivot rows  = {:?}", &lu.perm[..5]);
    println!(
        "  communication          = {} bytes total, {} bytes max/rank, {} messages",
        lu.stats.total_bytes_sent(),
        lu.stats.max_rank_bytes(),
        lu.stats.total_msgs()
    );
    let mut phases: Vec<_> = lu.stats.phase_totals().into_iter().collect();
    phases.sort_by_key(|(_, (s, _))| std::cmp::Reverse(*s));
    println!("  volume by phase (sent):");
    for (name, (sent, _)) in phases.iter().take(4) {
        println!("    {name:16} {sent:>10} bytes");
    }

    // ---- Cholesky with COnfCHOX -------------------------------------------
    let spd = random_spd(n, 7);
    let ccfg = ConfchoxConfig::auto(n, p);
    let ch = confchox_cholesky(&ccfg, &spd).expect("cholesky failed");
    let chres = po_residual(&spd, ch.l.as_ref().unwrap());
    println!("\nCOnfCHOX: N={n}, P={p}");
    println!("  ‖A − LLᵀ‖/‖A‖          = {chres:.3e}");
    println!(
        "  communication          = {} bytes total ({}x the flops of LU, same volume class)",
        ch.stats.total_bytes_sent(),
        0.5
    );
}
