//! Framework generality: the 2.5D matrix multiplication that X-partitioning
//! was introduced on, run at several replication depths against its lower
//! bound — the `C = A·B` analogue of the factorization experiments.
//!
//! ```text
//! cargo run --release --example matmul_25d
//! ```

use conflux_rs::dense::gemm::{gemm, Trans};
use conflux_rs::dense::gen::random_matrix;
use conflux_rs::dense::norms::max_abs_diff;
use conflux_rs::dense::Matrix;
use conflux_rs::factor::mmm25d::{mmm25d, Mmm25dConfig};
use conflux_rs::pebbles::bounds::mmm_io_lower_bound;
use conflux_rs::xmpi::Grid3;

fn main() {
    let n = 192;
    let a = random_matrix(n, n, 1);
    let b = random_matrix(n, n, 2);
    let mut expect = Matrix::zeros(n, n);
    gemm(
        Trans::N,
        Trans::N,
        1.0,
        a.as_ref(),
        b.as_ref(),
        0.0,
        expect.as_mut(),
    );

    println!("2.5D matrix multiplication, N={n}:");
    println!("  grid        bytes/rank   vs SUMMA   bound (w/rank)");
    let mut summa_bytes = 0.0;
    for grid in [
        Grid3::new(4, 4, 1),
        Grid3::new(2, 4, 2),
        Grid3::new(2, 2, 4),
    ] {
        let p = grid.size();
        let out = mmm25d(&Mmm25dConfig::new(n, 8, grid), &a, &b);
        let diff = max_abs_diff(out.c.as_ref().unwrap(), &expect);
        assert!(diff < 1e-10, "wrong product: {diff}");
        let bytes = out.stats.avg_rank_bytes();
        if grid.pz == 1 {
            summa_bytes = bytes;
        }
        // Working set ≈ A,B,C shares + broadcast buffers ≈ 3cN²/P words.
        let m = 3.0 * (grid.pz * n * n) as f64 / p as f64;
        let bound = mmm_io_lower_bound(n, p, m);
        println!(
            "  [{},{},{}]   {:>10.0}     {:>5.2}x   {:>8.0}",
            grid.px,
            grid.py,
            grid.pz,
            bytes,
            summa_bytes / bytes,
            bound
        );
    }
    println!("\n(product verified against the sequential kernel at every grid)");
}
