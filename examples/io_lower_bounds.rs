//! The theory side, end to end: build the LU / Cholesky / matrix-multiply
//! cDAGs, derive their I/O lower bounds through the generic X-partitioning
//! pipeline, produce *valid* pebbling schedules with the greedy scheduler,
//! and print the sandwich `lower bound ≤ optimal ≤ greedy` — then show the
//! parallel bounds at paper scale.
//!
//! ```text
//! cargo run --release --example io_lower_bounds
//! ```

use conflux_rs::pebbles::bounds::{
    cholesky_io_lower_bound, lu_io_lower_bound, mmm_io_lower_bound, schur_statement_rho,
};
use conflux_rs::pebbles::cdag::{cholesky_cdag, lu_cdag, mmm_cdag};
use conflux_rs::pebbles::game::{greedy_schedule, verify};

fn main() {
    println!("== generic pipeline: the Schur statement's intensity bound ==");
    for m in [256.0, 1024.0, 4096.0] {
        let (x0, rho) = schur_statement_rho(m);
        println!(
            "  M = {m:6}: X₀ = {x0:9.1} (≈3M), ρ = {rho:8.2} (≈√M/2 = {:.2})",
            m.sqrt() / 2.0
        );
    }

    println!("\n== sandwich on small cDAGs: bound ≤ Q_opt ≤ greedy ==");
    println!("  kernel      n    M    lower-bound   greedy-Q   ratio");
    for (name, n, g) in [
        ("LU", 10, lu_cdag(10)),
        ("Cholesky", 10, cholesky_cdag(10)),
        ("MMM", 6, mmm_cdag(6)),
    ] {
        for m in [8usize, 16, 32] {
            let lb = match name {
                "LU" => lu_io_lower_bound(n, 1, m as f64),
                "Cholesky" => cholesky_io_lower_bound(n, 1, m as f64),
                _ => mmm_io_lower_bound(n, 1, m as f64),
            };
            let moves = greedy_schedule(&g, m);
            let q = verify(&g, &moves, m)
                .expect("greedy schedule must be valid")
                .q;
            println!(
                "  {name:9} {n:4} {m:4} {lb:13.1} {q:10} {:7.2}x",
                q as f64 / lb
            );
        }
    }

    println!("\n== parallel bounds at paper scale (words per rank) ==");
    println!("  N=16384, M = c·N²/P with c = P^(1/3):");
    for p in [64usize, 512, 4096] {
        let n = 16384;
        let c = (p as f64).powf(1.0 / 3.0);
        let m = c * (n as f64) * (n as f64) / p as f64;
        println!(
            "  P = {p:5}: LU ≥ {:12.3e}   Cholesky ≥ {:12.3e}",
            lu_io_lower_bound(n, p, m),
            cholesky_io_lower_bound(n, p, m)
        );
    }
}
